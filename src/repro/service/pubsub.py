"""Topic-based pub/sub facade over the live overlay.

The overlay gives us a broadcast primitive (every message reaches every
node); topics and clients are *multiplexed on top* of it.  One
:class:`PubSubNode` per overlay process serves many lightweight
:class:`PubSubClient` handles — this is how the reproduction serves "many
users" without a socket per user: a client is a name, a token bucket and a
set of bounded subscription queues, nothing more.

The wire envelope is ``{"@topic": t, "@data": payload}`` carried as an
ordinary broadcast payload, so every protocol stack the registry can build
(flood, plumtree, reliable gossip) transports topics unchanged.

Protection, per the bulkhead/limits playbook:

* publishes spend a per-client :class:`~repro.service.limits.TokenBucket`
  token (over budget → :class:`~repro.common.errors.RateLimitedError`);
* every subscription queue is bounded and sheds its *oldest* entry on
  overflow (a slow reader lags, it does not grow the process);
* a :class:`~repro.service.limits.PeerGuard` is installed on the node's
  transport, so sends to repeatedly-failing peers trip a circuit breaker
  and fail fast until half-open probes see the peer healthy again.

Deliveries reach the facade through the node's delivery callback; the
records themselves land in the shared
:class:`~repro.runtime.delivery.DeliveryLog` as for any broadcast, which is
what the chaos latency histograms read.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Optional

from ..common.errors import ConfigurationError, RateLimitedError, ServiceError
from ..common.ids import MessageId
from ..runtime.cluster import LocalCluster
from ..runtime.node import RuntimeNode
from .limits import BreakerConfig, PeerGuard, TokenBucket, TopicBuckets

_TOPIC_KEY = "@topic"
_DATA_KEY = "@data"


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Tuning for one :class:`PubSubNode`."""

    #: Per-client publish budget: sustained rate (tokens/second) ...
    publish_rate: float = 200.0
    #: ... and burst capacity.
    publish_burst: float = 50.0
    #: Bound of each subscription's delivery queue (oldest shed first).
    subscriber_queue: int = 128
    #: Per-*topic* publish budget (tokens/second), enforced across every
    #: client and operator publish on that topic; ``None`` disables it.
    topic_rate: Optional[float] = None
    #: Burst capacity of each topic bucket (used when ``topic_rate`` is set).
    topic_burst: float = 50.0
    #: Per-peer circuit-breaker tuning (see :class:`BreakerConfig`).
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.subscriber_queue < 1:
            raise ConfigurationError(
                f"subscriber queue must hold >= 1 message: {self.subscriber_queue}"
            )


@dataclass(frozen=True, slots=True)
class TopicMessage:
    """What a subscriber receives: the topic, the payload, provenance."""

    topic: str
    payload: Any
    message_id: MessageId


class Subscription:
    """One client's bounded queue of messages on one topic."""

    __slots__ = ("topic", "client", "_node", "_queue", "_closed", "dropped")

    _SENTINEL = object()

    def __init__(self, node: "PubSubNode", topic: str, client: str, maxsize: int) -> None:
        self.topic = topic
        self.client = client
        self._node = node
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._closed = False
        #: Messages shed because this subscriber was too slow to drain.
        self.dropped = 0

    def _feed(self, message: TopicMessage) -> None:
        if self._closed:
            return
        while self._queue.full():
            # Shed the oldest entry: a lagging reader loses history, the
            # process does not grow.
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race guard
                break
            self.dropped += 1
            self._node.messages_dropped += 1
        self._queue.put_nowait(message)

    def qsize(self) -> int:
        return self._queue.qsize()

    async def get(self, timeout: Optional[float] = None) -> Optional[TopicMessage]:
        """Next message; ``None`` on close or timeout."""
        if self._closed and self._queue.empty():
            return None
        try:
            if timeout is None:
                item = await self._queue.get()
            else:
                item = await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
        if item is Subscription._SENTINEL:
            return None
        return item

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._node._drop_subscription(self)
        try:
            self._queue.put_nowait(Subscription._SENTINEL)
        except asyncio.QueueFull:
            pass  # a full queue already wakes the reader; _closed ends it

    def __aiter__(self) -> AsyncIterator[TopicMessage]:
        return self

    async def __anext__(self) -> TopicMessage:
        message = await self.get()
        if message is None:
            raise StopAsyncIteration
        return message


class PubSubClient:
    """A lightweight client handle: a name plus a publish budget.

    Hundreds of these multiplex over one :class:`PubSubNode`; creating one
    costs a dict entry and a token bucket.
    """

    __slots__ = ("name", "_node", "_bucket", "published", "rate_limited")

    def __init__(self, node: "PubSubNode", name: str, bucket: TokenBucket) -> None:
        self.name = name
        self._node = node
        self._bucket = bucket
        self.published = 0
        self.rate_limited = 0

    def publish(self, topic: str, payload: Any = None) -> MessageId:
        """Broadcast ``payload`` on ``topic``; raises
        :class:`RateLimitedError` when this client is over budget."""
        if not self._bucket.allow(self._node._now()):
            self.rate_limited += 1
            raise RateLimitedError(
                f"client {self.name!r} exceeded its publish rate "
                f"({self._bucket.rate}/s, burst {self._bucket.burst})"
            )
        message_id = self._node._publish(topic, payload)
        self.published += 1
        return message_id

    def subscribe(self, topic: str) -> Subscription:
        return self._node.subscribe(topic, client=self.name)


class PubSubNode:
    """The service facade over one started :class:`RuntimeNode`."""

    def __init__(
        self,
        node: RuntimeNode,
        *,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        if not node.started:
            raise ConfigurationError("PubSubNode needs a started RuntimeNode")
        self.node = node
        self.config = config if config is not None else ServiceConfig()
        self.guard = PeerGuard(node.transport, config=self.config.breaker)
        # Per-topic budgets sit under the per-client buckets: a topic's
        # budget is shared by every publisher, operator traffic included.
        self._topic_buckets = (
            TopicBuckets(self.config.topic_rate, self.config.topic_burst)
            if self.config.topic_rate is not None
            else None
        )
        self._subscriptions: dict[str, list[Subscription]] = {}
        self.clients: dict[str, PubSubClient] = {}
        self._attached = True
        self.messages_published = 0
        self.messages_delivered = 0
        #: Publishes refused because their *topic's* budget ran dry.
        self.topic_rate_limited = 0
        #: Subscriber-queue overflow sheds across all subscriptions.
        self.messages_dropped = 0
        #: Deliveries that carried no topic envelope (plain broadcasts).
        self.messages_ignored = 0
        node.set_deliver_callback(self._on_deliver)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def client(self, name: str) -> PubSubClient:
        """Get or create the client handle named ``name``."""
        existing = self.clients.get(name)
        if existing is not None:
            return existing
        client = PubSubClient(
            self,
            name,
            TokenBucket(self.config.publish_rate, self.config.publish_burst),
        )
        self.clients[name] = client
        return client

    def subscribe(self, topic: str, *, client: str = "") -> Subscription:
        """A new bounded subscription to ``topic``."""
        self._require_attached()
        subscription = Subscription(self, topic, client, self.config.subscriber_queue)
        self._subscriptions.setdefault(topic, []).append(subscription)
        return subscription

    def publish(self, topic: str, payload: Any = None) -> MessageId:
        """Publish without a client budget (operator/bench traffic)."""
        self._require_attached()
        return self._publish(topic, payload)

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        if topic is not None:
            return len(self._subscriptions.get(topic, ()))
        return sum(len(subs) for subs in self._subscriptions.values())

    def detach(self) -> None:
        """Close every subscription and release the node's hooks."""
        if not self._attached:
            return
        self._attached = False
        for subscriptions in list(self._subscriptions.values()):
            for subscription in list(subscriptions):
                subscription.close()
        self._subscriptions.clear()
        self.guard.detach()
        self.node.set_deliver_callback(None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _publish(self, topic: str, payload: Any) -> MessageId:
        if not isinstance(topic, str) or not topic:
            raise ServiceError(f"topic must be a non-empty string: {topic!r}")
        if not self.node.started:
            raise ServiceError(f"overlay node {self.node.node_id} is not running")
        if self._topic_buckets is not None and not self._topic_buckets.allow(
            topic, self._now()
        ):
            self.topic_rate_limited += 1
            raise RateLimitedError(
                f"topic {topic!r} exceeded its publish budget "
                f"({self._topic_buckets.rate}/s, burst {self._topic_buckets.burst})"
            )
        message_id = self.node.broadcast({_TOPIC_KEY: topic, _DATA_KEY: payload})
        self.messages_published += 1
        return message_id

    def _on_deliver(self, message_id: MessageId, payload: Any) -> None:
        if not isinstance(payload, dict) or _TOPIC_KEY not in payload:
            self.messages_ignored += 1
            return
        topic = payload[_TOPIC_KEY]
        subscriptions = self._subscriptions.get(topic)
        if not subscriptions:
            return
        message = TopicMessage(topic, payload.get(_DATA_KEY), message_id)
        for subscription in list(subscriptions):
            subscription._feed(message)
            self.messages_delivered += 1

    def _drop_subscription(self, subscription: Subscription) -> None:
        subscriptions = self._subscriptions.get(subscription.topic)
        if subscriptions and subscription in subscriptions:
            subscriptions.remove(subscription)
            if not subscriptions:
                del self._subscriptions[subscription.topic]

    def _now(self) -> float:
        return self.node.transport._loop.time()

    def _require_attached(self) -> None:
        if not self._attached:
            raise ServiceError("facade is detached from its node")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<PubSubNode {self.node.node_id} clients={len(self.clients)} "
            f"subs={self.subscriber_count()}>"
        )


class PubSubCluster:
    """Per-node facades over a :class:`LocalCluster`, restart-aware.

    When the cluster restarts a node (chaos, operator action), the old
    facade's subscriptions die with the old process; a fresh facade is
    attached to the replacement automatically and shows up at the same
    index.  ``reattached`` counts these swaps.
    """

    def __init__(
        self,
        cluster: LocalCluster,
        *,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config if config is not None else ServiceConfig()
        self.facades = [PubSubNode(node, config=self.config) for node in cluster.nodes]
        self.reattached = 0
        self._metrics = None
        cluster.restart_listeners.append(self._on_restart)

    def facade(self, index: int) -> PubSubNode:
        return self.facades[index]

    def metrics_registry(self):
        """The cluster's unified metrics registry (built lazily, cached).

        Covers every facade's service counters, circuit-breaker state,
        token-bucket denials and transport epoch/staleness audits.  The
        collector reads the facade list at scrape time, so facades swapped
        in by a node restart are picked up automatically.  Costs nothing
        until the first snapshot/scrape.
        """
        if self._metrics is None:
            from ..obs.collectors import bind_pubsub_cluster
            from ..obs.metrics import MetricsRegistry

            self._metrics = MetricsRegistry()
            bind_pubsub_cluster(self._metrics, self)
        return self._metrics

    def subscribe(self, index: int, topic: str, *, client: str = "") -> Subscription:
        return self.facades[index].subscribe(topic, client=client)

    def publish(self, index: int, topic: str, payload: Any = None) -> MessageId:
        return self.facades[index].publish(topic, payload)

    def total_dropped(self) -> int:
        return sum(facade.messages_dropped for facade in self.facades)

    def total_breaker_trips(self) -> int:
        return sum(facade.guard.trips() for facade in self.facades)

    def detach(self) -> None:
        if self._on_restart in self.cluster.restart_listeners:
            self.cluster.restart_listeners.remove(self._on_restart)
        for facade in self.facades:
            facade.detach()

    def _on_restart(self, index: int, node: RuntimeNode) -> None:
        self.facades[index].detach()
        self.facades[index] = PubSubNode(node, config=self.config)
        self.reattached += 1


__all__ = [
    "PubSubClient",
    "PubSubCluster",
    "PubSubNode",
    "ServiceConfig",
    "Subscription",
    "TopicMessage",
]
