"""Client-facing service layer: topic pub/sub over the live overlay.

See :mod:`repro.service.pubsub` for the facade and
:mod:`repro.service.limits` for the protection primitives (token buckets,
circuit breakers, the per-peer guard).
"""

from .limits import BreakerConfig, CircuitBreaker, PeerGuard, TokenBucket, TopicBuckets
from .pubsub import (
    PubSubClient,
    PubSubCluster,
    PubSubNode,
    ServiceConfig,
    Subscription,
    TopicMessage,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "PeerGuard",
    "PubSubClient",
    "PubSubCluster",
    "PubSubNode",
    "ServiceConfig",
    "Subscription",
    "TopicMessage",
    "TokenBucket",
    "TopicBuckets",
]
