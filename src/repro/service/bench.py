"""Sustained-throughput benchmark for the live pub/sub service.

The acceptance demo of the service layer, runnable locally and nightly in
CI: a small loopback-TCP cluster, ≥100 multiplexed clients spread over a
few topics, a sustained publish stream, and (by default) a mid-run
crash + same-port restart of one node.  The run reports

* per-phase publish→deliver latency (p50/p99) from the
  :class:`~repro.faults.chaos.ChaosController` latency report —
  ``steady`` / ``faulted`` / ``recovered`` windows;
* sustained throughput in delivered messages per second per node;
* the protection counters: circuit-breaker trips and reopens, rate-limited
  publishes, subscriber-queue sheds, outbox overflows;
* the epoch-handshake counters — ``stale_handshakes``/``frames_stale``
  must stay at the transport level, with **zero** stale-incarnation
  deliveries reaching clients.

Artifacts: ``BENCH_service_live.json`` (``repro-service-live/1``, the full
report) and ``TIMINGS_service_live.json`` (``repro-timings/1`` with
``totals.events_per_second`` = delivered msgs/s, feeding the existing
``perf_trend.py --record-history`` nightly path).  Wall-clock latency on
shared CI runners is noisy; the artifact is BENCH-grade in *shape*, the
history line tracks the throughput median over runs.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
from typing import Optional

from ..common.errors import ConfigurationError, RateLimitedError, ServiceError
from ..core.config import HyParViewConfig
from ..faults.chaos import ChaosController
from ..faults.plan import CrashEvent, FaultPlan, PartitionEvent, Phase, RestartEvent
from ..runtime.cluster import LocalCluster
from .limits import BreakerConfig
from .pubsub import PubSubCluster, ServiceConfig

#: Live benchmark overlay tuning: small views, fast repair — the cluster
#: is 3 nodes on loopback, not 10k on a WAN.
BENCH_CONFIG = HyParViewConfig(
    active_view_capacity=3,
    passive_view_capacity=8,
    arwl=3,
    prwl=2,
    neighbor_request_timeout=1.0,
    promotion_retry_delay=0.1,
    promotion_max_passes=10,
)

BENCH_SCHEMA = "repro-service-live/1"


async def run_service_bench(
    *,
    nodes: int = 3,
    clients: int = 100,
    topics: int = 2,
    duration: float = 6.0,
    rate: float = 60.0,
    seed: int = 7,
    chaos: bool = True,
    metrics_port: int = 0,
) -> dict:
    """Run the benchmark; returns the ``repro-service-live/1`` report."""
    if nodes < 2:
        raise ConfigurationError(f"service bench needs >= 2 nodes: {nodes}")
    if clients < topics or topics < 1:
        raise ConfigurationError(
            f"need at least one client per topic: {clients} clients, {topics} topics"
        )
    if duration <= 0 or rate <= 0:
        raise ConfigurationError(
            f"duration and rate must be positive: {duration}, {rate}"
        )

    cluster = LocalCluster(nodes, config=BENCH_CONFIG, base_seed=seed)
    await cluster.start()
    service = PubSubCluster(
        cluster,
        config=ServiceConfig(
            # Per-client budget: generous burst, sustained rate well above
            # the per-client share of the aggregate stream, so the limiter
            # only fires on misbehaving clients (counted, not expected).
            publish_rate=max(10.0, 4.0 * rate / clients),
            publish_burst=20.0,
            subscriber_queue=256,
            # Hair-trigger breaker: on loopback the overlay's own failure
            # detector removes a crashed peer after its *first* failed
            # send, so a higher threshold would never accumulate — one
            # failure trips, the half-open probe recloses after restart.
            breaker=BreakerConfig(
                failure_threshold=1,
                recovery_timeout=0.5,
                half_open_successes=1,
            ),
        ),
    )

    # --- the fault timeline and its measurement phases ------------------
    crash_at = duration / 3.0
    restart_at = 2.0 * duration / 3.0
    if chaos:
        # Two fault flavours in one window: a crash of one node, restarted
        # later on the SAME port to exercise the epoch handshake, plus a
        # partition of the *survivors* (crash first, so the split samples
        # only live nodes and the cut is guaranteed to cross live traffic).
        # The partition is what trips circuit breakers — sends across the
        # cut fail *repeatedly*, whereas a clean crash is caught by the
        # TCP watch before a second send can fail.  The partition heals as
        # the node returns; breakers reclose through half-open probes.
        plan = FaultPlan(
            events=(
                CrashEvent(at=crash_at, count=1),
                PartitionEvent(
                    at=crash_at, weights=(0.5, 0.5), heal_at=restart_at, rejoin=2
                ),
                RestartEvent(at=restart_at, count=1),
            ),
            label="service-bench",
        )
        phases = (
            Phase("steady", 0.0, crash_at),
            Phase("faulted", crash_at, restart_at),
            Phase("recovered", restart_at, duration + 1.0),
        )
    else:
        plan = FaultPlan.empty()
        phases = (Phase("steady", 0.0, duration + 1.0),)
    controller = ChaosController(
        cluster, plan, seed=seed, phases=phases, restart_reuse_port=True
    )

    # --- many lightweight clients, multiplexed over few nodes -----------
    topic_names = [f"topic-{index}" for index in range(topics)]
    subscriptions = []
    publishers = []  # (facade index, client name, topic)
    for index in range(clients):
        node_index = index % nodes
        topic = topic_names[index % topics]
        client = service.facade(node_index).client(f"client-{index}")
        subscriptions.append(client.subscribe(topic))
        publishers.append((node_index, client.name, topic))

    received = 0

    async def drain(subscription) -> None:
        nonlocal received
        async for _message in subscription:
            received += 1

    drains = [asyncio.create_task(drain(subscription)) for subscription in subscriptions]

    # --- sustained publish load over the fault timeline -----------------
    loop = asyncio.get_running_loop()
    chaos_task = asyncio.create_task(controller.run())
    await asyncio.sleep(0)  # let the controller stamp its start time
    start = loop.time()
    interval = 1.0 / rate
    published = 0
    rate_limited = 0
    publish_errors = 0
    tick = 0
    while True:
        now = loop.time() - start
        if now >= duration:
            break
        node_index, client_name, topic = publishers[tick % len(publishers)]
        tick += 1
        facade = service.facade(node_index)
        if not facade.node.started:
            continue  # this node is mid-crash; its clients ride it out
        try:
            message_id = facade.client(client_name).publish(
                topic, {"seq": published, "client": client_name}
            )
        except RateLimitedError:
            rate_limited += 1
        except ServiceError:
            publish_errors += 1
        else:
            published += 1
            controller.mark_publish(message_id)
        await asyncio.sleep(max(0.0, start + tick * interval - loop.time()))
    await chaos_task
    await asyncio.sleep(1.0)  # let in-flight deliveries land

    latency = controller.latency_report()

    # --- stale-incarnation audit ---------------------------------------
    # Every delivery record carries (node, incarnation); a predecessor
    # incarnation delivering *after* its successor started would be a
    # stale delivery.  With the epoch handshake this must be zero — the
    # stale frames die in the transport, visible in its counters instead.
    successors = {
        node.node_id: (node.incarnation, node.started_at)
        for node in cluster.nodes
        if node.node_id is not None and node.incarnation > 0
    }
    stale_deliveries = 0
    for record in cluster.delivery_log.records:
        successor = successors.get(record.node)
        if successor is None:
            continue
        incarnation, started_at = successor
        if record.incarnation < incarnation and record.at > started_at:
            stale_deliveries += 1
    transport_counters = {
        "frames_stale": 0,
        "stale_handshakes": 0,
        "frames_overflow": 0,
        "frames_rejected": 0,
    }
    for node in cluster.nodes:
        if node.transport is None:
            continue
        for key in transport_counters:
            transport_counters[key] += getattr(node.transport, key)

    delivered = latency["samples"]
    report = {
        "schema": BENCH_SCHEMA,
        "scenario": "service_live",
        "config": {
            "nodes": nodes,
            "clients": clients,
            "topics": topics,
            "duration": duration,
            "rate": rate,
            "seed": seed,
            "chaos": chaos,
        },
        "published": published,
        "delivered": delivered,
        "received_by_clients": received,
        "throughput_msgs_per_s_per_node": delivered / duration / nodes,
        "latency": latency,
        "protection": {
            "rate_limited": rate_limited,
            "publish_errors": publish_errors,
            "breaker_trips": service.total_breaker_trips(),
            "breakers_open": sum(
                len(facade.guard.open_peers()) for facade in service.facades
            ),
            "subscriber_sheds": service.total_dropped(),
            "facades_reattached": service.reattached,
        },
        "staleness": {
            "stale_deliveries": stale_deliveries,
            **transport_counters,
        },
        "chaos_applied": [
            f"t={at:g} {description}" for at, description in controller.applied
        ],
    }

    # --- unified metrics plane: serve one scrape of the run -------------
    # The registry's collectors read the live facades/transports, so the
    # scrape happens before detach/stop.  The exposition covers breaker
    # state, epoch/staleness audits and topic rate-limit counters — the
    # same families an external Prometheus would collect from a long-lived
    # deployment.
    from ..obs.http import MetricsServer, scrape

    registry = service.metrics_registry()
    metrics_server = await MetricsServer(registry, port=metrics_port).start()
    try:
        exposition = await scrape(metrics_server.host, metrics_server.port)
        endpoint = f"http://{metrics_server.host}:{metrics_server.port}/metrics"
    finally:
        await metrics_server.close()
    families = sorted(
        {
            line.split("{", 1)[0].split(" ", 1)[0]
            for line in exposition.splitlines()
            if line and not line.startswith("#")
        }
    )
    report["metrics"] = {
        "endpoint": endpoint,
        "exposition_bytes": len(exposition),
        "families": families,
        "snapshot": registry.snapshot(),
    }

    for task in drains:
        task.cancel()
    await asyncio.gather(*drains, return_exceptions=True)
    service.detach()
    await cluster.stop()
    return report


def write_artifacts(report: dict, out_dir: pathlib.Path) -> list[pathlib.Path]:
    """Write ``BENCH_service_live.json`` + ``TIMINGS_service_live.json``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    bench_path = out_dir / "BENCH_service_live.json"
    bench_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    timings = {
        "schema": "repro-timings/1",
        "scenario": "service_live",
        "totals": {
            "events_per_second": max(
                report["delivered"] / report["config"]["duration"], 1e-9
            ),
        },
    }
    timings_path = out_dir / "TIMINGS_service_live.json"
    timings_path.write_text(json.dumps(timings, indent=2, sort_keys=True) + "\n")
    return [bench_path, timings_path]


def format_report(report: dict) -> str:
    """Human-readable summary of one benchmark run."""
    lines = [
        f"service bench — {report['config']['nodes']} nodes, "
        f"{report['config']['clients']} clients, "
        f"{report['config']['topics']} topics, "
        f"{report['config']['duration']:g}s @ {report['config']['rate']:g} msg/s",
        f"  published {report['published']}  delivered {report['delivered']}  "
        f"to clients {report['received_by_clients']}",
        f"  throughput {report['throughput_msgs_per_s_per_node']:.1f} msg/s/node",
    ]
    for row in report["latency"]["phases"]:
        p50 = row["p50_ms"]
        p99 = row["p99_ms"]
        lines.append(
            f"  phase {row['phase']:<10} publishes={row['publishes']:<5} "
            f"p50={'-' if p50 is None else f'{p50:.1f}ms'} "
            f"p99={'-' if p99 is None else f'{p99:.1f}ms'}"
        )
    protection = report["protection"]
    staleness = report["staleness"]
    lines.append(
        f"  breaker trips={protection['breaker_trips']} "
        f"open={protection['breakers_open']} "
        f"rate-limited={protection['rate_limited']} "
        f"sheds={protection['subscriber_sheds']}"
    )
    lines.append(
        f"  stale deliveries={staleness['stale_deliveries']} "
        f"stale handshakes={staleness['stale_handshakes']} "
        f"stale frames={staleness['frames_stale']}"
    )
    metrics = report.get("metrics")
    if metrics:
        lines.append(
            f"  metrics: scraped {len(metrics['families'])} families "
            f"({metrics['exposition_bytes']} bytes) from {metrics['endpoint']}"
        )
    return "\n".join(lines)


__all__ = ["BENCH_CONFIG", "BENCH_SCHEMA", "format_report", "run_service_bench", "write_artifacts"]
