"""Per-client and per-peer protection primitives for the service layer.

Three classic patterns, each deliberately clock-agnostic (callers pass
``now`` in, so the same classes work under the event loop's clock in
production and a hand-cranked float in tests):

* :class:`TokenBucket` — per-client publish rate limiting.  A client gets
  ``burst`` tokens up front and refills at ``rate`` tokens/second; each
  publish spends one.  This is the SBRB-style per-subscriber cost
  discipline: no client can spend more than its budget no matter how hot
  its loop is.
* :class:`CircuitBreaker` — per-peer fail-fast.  After
  ``failure_threshold`` consecutive send failures the breaker *opens* and
  every send to that peer is rejected locally (no socket work, no timeout
  waits).  After ``recovery_timeout`` seconds it goes *half-open* and lets
  a limited number of probe sends through; ``half_open_successes``
  consecutive successes close it again, any failure re-opens it.
* :class:`PeerGuard` — wires one breaker per destination into an
  :class:`~repro.runtime.transport.AsyncioTransport` via its
  ``send_guard`` / ``send_observer`` hooks, so *every* frame the overlay
  sends (membership, gossip, service traffic alike) gets the fail-fast
  treatment without any protocol knowing the breaker exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..common.errors import ConfigurationError
from ..common.ids import NodeId

#: Breaker states (exposed as strings for cheap introspection/reporting).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "_tokens", "_updated", "denied")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"token rate must be positive: {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1 token: {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._updated: Optional[float] = None
        self.denied = 0

    def allow(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if the bucket holds them; ``False`` otherwise."""
        if self._updated is None:
            self._updated = now
        elif now > self._updated:
            self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        self.denied += 1
        return False

    def tokens(self, now: float) -> float:
        """Tokens available at ``now`` (without spending any)."""
        if self._updated is None or now <= self._updated:
            return self._tokens
        return min(self.burst, self._tokens + (now - self._updated) * self.rate)


class TopicBuckets:
    """One lazily-created :class:`TokenBucket` per key, shared tuning.

    The per-*topic* counterpart of the per-client buckets: a hot topic
    exhausts its own budget without starving the others, and a key that
    never publishes never allocates a bucket.
    """

    __slots__ = ("rate", "burst", "_buckets")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"token rate must be positive: {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1 token: {burst}")
        self.rate = rate
        self.burst = burst
        self._buckets: dict[str, TokenBucket] = {}

    def bucket(self, key: str) -> TokenBucket:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst)
            self._buckets[key] = bucket
        return bucket

    def allow(self, key: str, now: float, tokens: float = 1.0) -> bool:
        return self.bucket(key).allow(now, tokens)

    def denied(self) -> int:
        """Total denials across all keys."""
        return sum(bucket.denied for bucket in self._buckets.values())


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Tuning for one :class:`CircuitBreaker`."""

    #: Consecutive send failures that trip the breaker open.
    failure_threshold: int = 5
    #: Seconds the breaker stays open before probing (half-open).
    recovery_timeout: float = 1.0
    #: Consecutive half-open successes required to close again.
    half_open_successes: int = 2
    #: Probe sends allowed through while half-open and undecided.
    half_open_max_probes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure threshold must be >= 1: {self.failure_threshold}"
            )
        if self.recovery_timeout <= 0:
            raise ConfigurationError(
                f"recovery timeout must be positive: {self.recovery_timeout}"
            )
        if self.half_open_successes < 1:
            raise ConfigurationError(
                f"half-open successes must be >= 1: {self.half_open_successes}"
            )
        if self.half_open_max_probes < 1:
            raise ConfigurationError(
                f"half-open probes must be >= 1: {self.half_open_max_probes}"
            )


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN → (CLOSED | OPEN) per-peer state machine."""

    __slots__ = (
        "config",
        "state",
        "trips",
        "_failures",
        "_successes",
        "_opened_at",
        "_probes_in_flight",
    )

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.state = CLOSED
        self.trips = 0
        self._failures = 0
        self._successes = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    def allow(self, now: float) -> bool:
        """May a send proceed right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self.config.recovery_timeout:
                return False
            # Time served: move to half-open and admit the first probe.
            self.state = HALF_OPEN
            self._successes = 0
            self._probes_in_flight = 1
            return True
        # HALF_OPEN: admit a bounded number of undecided probes.
        if self._probes_in_flight >= self.config.half_open_max_probes:
            return False
        self._probes_in_flight += 1
        return True

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._successes += 1
            if self._successes >= self.config.half_open_successes:
                self.state = CLOSED
                self._failures = 0
                self._successes = 0
                self._probes_in_flight = 0
        elif self.state == CLOSED:
            self._failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: the peer is still bad, go straight back.
            self._trip(now)
        elif self.state == CLOSED:
            self._failures += 1
            if self._failures >= self.config.failure_threshold:
                self._trip(now)
        # OPEN: stray failure reports (in-flight sends racing the trip)
        # don't extend the sentence.

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.trips += 1
        self._opened_at = now
        self._failures = 0
        self._successes = 0
        self._probes_in_flight = 0


class PeerGuard:
    """One :class:`CircuitBreaker` per destination, wired into a transport.

    Installing the guard sets the transport's ``send_guard`` (breaker gate)
    and ``send_observer`` (breaker feed).  ``time_fn`` defaults to the
    event loop clock via the transport's loop; pass a callable in tests.
    """

    def __init__(
        self,
        transport,
        *,
        config: Optional[BreakerConfig] = None,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self._transport = transport
        self._config = config if config is not None else BreakerConfig()
        self._time_fn = time_fn if time_fn is not None else transport._loop.time
        self.breakers: dict[NodeId, CircuitBreaker] = {}
        self.rejected = 0
        # Pin the bound methods: every `self._allow` attribute access
        # creates a fresh bound-method object, so detach()'s identity
        # check needs the exact objects that were installed.
        self._allow_hook = self._allow
        self._observe_hook = self._observe
        transport.send_guard = self._allow_hook
        transport.send_observer = self._observe_hook

    def breaker(self, peer: NodeId) -> CircuitBreaker:
        breaker = self.breakers.get(peer)
        if breaker is None:
            breaker = CircuitBreaker(self._config)
            self.breakers[peer] = breaker
        return breaker

    def trips(self) -> int:
        """Total breaker trips across all peers."""
        return sum(breaker.trips for breaker in self.breakers.values())

    def open_peers(self) -> list[NodeId]:
        return [peer for peer, b in self.breakers.items() if b.state != CLOSED]

    def detach(self) -> None:
        """Remove the hooks (the transport reverts to unguarded sends)."""
        if self._transport.send_guard is self._allow_hook:
            self._transport.send_guard = None
        if self._transport.send_observer is self._observe_hook:
            self._transport.send_observer = None

    # -- transport hooks ------------------------------------------------
    def _allow(self, dst: NodeId) -> bool:
        allowed = self.breaker(dst).allow(self._time_fn())
        if not allowed:
            self.rejected += 1
        return allowed

    def _observe(self, dst: NodeId, ok: bool) -> None:
        breaker = self.breaker(dst)
        if ok:
            breaker.record_success(self._time_fn())
        else:
            breaker.record_failure(self._time_fn())


__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "PeerGuard",
    "TokenBucket",
    "TopicBuckets",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]
