"""The ``byz_*`` scenario family: Byzantine senders vs quorum broadcast.

:func:`measure_byzantine_plan` extends the fault-plan measurement loop
with *value* judgment: the tracker only sees message ids, so a mutated
payload that still flows end-to-end looks like a delivery.  Byzantine
runs attach a payload recorder (:meth:`Scenario.set_delivery_recorder`)
and score every message twice —

* ``series``            — raw id-level reliability (the tracker's view);
* ``validated_series``  — the fraction of the end population that
  delivered the *sent* value (the paper's "correct nodes deliver the
  correct message");

plus per-message agreement (did any two nodes deliver different values?)
and the count of wrong-value deliveries.  Origins are always drawn from
honest nodes — the experiments measure dissemination *through* an
adversarial relay population, not an adversarial source.

Three registered scenarios compare the BRB stacks
(:mod:`repro.gossip.byzantine`) against the ack/retransmit baseline:

* ``byz_adversary_fraction`` — validated delivery and latency as the
  mutating fraction sweeps 0–40%; Bracha quorums hold to the ``n > 3f``
  cliff while the baseline degrades smoothly;
* ``byz_churn``              — sampled-mode (SBRB) quorums under
  mutation plus crash/restart bursts;
* ``byz_equivocation``       — equivocating senders; BRB's echo-once
  discipline keeps agreement exact while the baseline delivers
  conflicting values.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional, Sequence

from ..common.errors import ConfigurationError
from ..experiments.params import ExperimentParams
from ..experiments.registry import (
    CellKey,
    RunContext,
    ScenarioSpec,
    TierConfig,
    _cell_hooks,
    _tiers,
    register,
)
from ..experiments.reporting import json_safe, sparkline
from ..gossip.byzantine import BRBConfig
from .plan import (
    DEFAULT_MUTATION_TYPES,
    CrashEvent,
    FaultPlan,
    MutationEvent,
    Phase,
    RestartEvent,
    validate_phases,
)
from .sim import SimFaultDriver

#: The Byzantine scenarios' default comparison: quorum broadcast vs the
#: ack/retransmit stack that trusts whatever bytes arrive.
BYZ_PROTOCOLS = ("hyparview-brb", "hyparview-reliable")


class _DeliveryRecorder:
    """Collects delivered payloads per (message, node) for value judgment."""

    __slots__ = ("deliveries",)

    def __init__(self) -> None:
        self.deliveries: dict = {}

    def note(self, node_id, message_id, payload) -> None:
        self.deliveries.setdefault(message_id, {})[node_id] = payload


def measure_byzantine_plan(
    scenario,
    plan: FaultPlan,
    *,
    messages: int,
    interval: Optional[float] = None,
    settle: Optional[float] = None,
    phases: Sequence[Phase] = (),
) -> dict:
    """Run ``messages`` paced broadcasts under ``plan``, judging values.

    Mirrors :func:`~repro.faults.measure.measure_fault_plan` (the
    scenario is consumed; interval/settle default from the plan horizon)
    but every broadcast carries a distinct payload, origins skip
    currently-Byzantine nodes, and the result reports validated
    (correct-value) reliability, agreement and delivery latency next to
    the tracker's raw series.
    """
    if messages < 1:
        raise ConfigurationError(f"messages must be >= 1: {messages}")
    latency = scenario.params.latency_seconds
    if interval is None:
        if plan.horizon > 0.0 and messages > 1:
            interval = plan.horizon / (messages - 1)
        else:
            interval = 5 * latency
    if settle is None:
        settle = 10 * latency
    ordered_phases = validate_phases(phases)

    recorder = _DeliveryRecorder()
    scenario.set_delivery_recorder(recorder)
    driver = SimFaultDriver(scenario, plan)
    driver.install()
    engine = scenario.engine
    rng = scenario._rng  # the harness stream, exactly like paced broadcasts
    start = engine.now
    sends: list[tuple[float, object, object]] = []
    for index in range(messages):
        engine.run_until(start + index * interval)
        corrupted = scenario.network.byzantine_ids()
        honest = [node for node in scenario.alive_ids() if node not in corrupted]
        origin = rng.choice(honest)
        payload = ("m", index)
        message_id = scenario.broadcast_layer(origin).broadcast(payload)
        sends.append((index * interval, message_id, payload))
    tail = max((messages - 1) * interval, plan.horizon) + settle
    engine.run_until(start + tail)
    scenario.drain()

    population = frozenset(scenario.alive_ids())
    series: list[float] = []
    validated_series: list[float] = []
    latencies: list[float] = []
    send_times: list[float] = []
    wrong_deliveries = 0
    disagreements = 0
    validated_records: list[tuple[float, float]] = []
    for sent_at, message_id, payload in sends:
        summary = scenario.tracker.finalize(message_id, population)
        recorded = recorder.deliveries.get(message_id, {})
        correct = sum(
            1
            for node, value in recorded.items()
            if node in population and value == payload
        )
        wrong_deliveries += sum(1 for value in recorded.values() if value != payload)
        if len({repr(value) for value in recorded.values()}) > 1:
            disagreements += 1
        validated = correct / len(population) if population else 0.0
        series.append(summary.reliability)
        validated_series.append(validated)
        latencies.append(summary.last_delivery_at - summary.sent_at)
        send_times.append(sent_at)
        validated_records.append((sent_at, validated))
    scenario.set_delivery_recorder(None)

    phase_rows = []
    for phase in ordered_phases:
        window = [value for sent_at, value in validated_records
                  if phase.contains(sent_at)]
        phase_rows.append(
            {
                "phase": phase.name,
                "start": phase.start,
                "end": phase.end,
                "messages": len(window),
                "average": sum(window) / len(window) if window else None,
                "min": min(window, default=None),
                "atomic": (
                    sum(1 for value in window if value == 1.0) / len(window)
                    if window
                    else None
                ),
            }
        )

    stats = scenario.network.stats
    snapshot = scenario.snapshot()
    reliable_totals: Optional[dict] = None
    brb_totals: Optional[dict] = None
    for node_id in population:
        layer = scenario.broadcast_layer(node_id)
        layer_stats = getattr(layer, "reliability_stats", None)
        if layer_stats is None:
            reliable_totals = None
            break
        if reliable_totals is None:
            reliable_totals = {}
        for key, value in layer_stats().items():
            reliable_totals[key] = reliable_totals.get(key, 0) + value
        quorum_stats = getattr(layer, "brb_stats", None)
        if quorum_stats is not None:
            if brb_totals is None:
                brb_totals = {}
            for key, value in quorum_stats().items():
                brb_totals[key] = brb_totals.get(key, 0) + value
    result = {
        "protocol": scenario.protocol,
        "n": scenario.params.n,
        "messages": messages,
        "interval": interval,
        "plan": plan.describe(),
        "series": series,
        "validated_series": validated_series,
        "latencies": latencies,
        "send_times": send_times,
        "average": sum(series) / len(series),
        "validated_average": sum(validated_series) / len(validated_series),
        "wrong_deliveries": wrong_deliveries,
        "agreement": 1.0 - disagreements / messages,
        "phases": phase_rows,
        "fault_stats": {
            "dropped_fault": stats.dropped_fault,
            "duplicated_fault": stats.duplicated_fault,
            "dropped_adversary": stats.dropped_adversary,
            "dropped_collusion": stats.dropped_collusion,
            "mutated_byz": stats.mutated_byz,
            "equivocated_byz": stats.equivocated_byz,
            "send_failures": stats.send_failures,
            "dropped_dead": stats.dropped_dead,
        },
        "final": {
            "alive": len(population),
            "largest_component": snapshot.largest_component_fraction(),
            "symmetry": snapshot.symmetry_fraction(),
        },
        "applied": [description for _at, description in driver.applied],
    }
    if reliable_totals is not None:
        result["reliable"] = reliable_totals
    if brb_totals is not None:
        result["brb"] = brb_totals
    return result


# ----------------------------------------------------------------------
# Registration plumbing
# ----------------------------------------------------------------------
def _byz_params(ctx: RunContext, protocol: str) -> ExperimentParams:
    """Tier params, with the BRB quorum config resolved per tier options.

    Non-BRB protocols keep the default params object so their snapshot
    bases are shared with every other scenario at the same tier.
    """
    params = ctx.params()
    if not protocol.endswith("-brb"):
        return params
    return replace(
        params,
        brb=BRBConfig(
            mode=str(ctx.option("brb_mode", "bracha")),
            fault_fraction=float(ctx.option("brb_fault_fraction", 0.25)),  # type: ignore[arg-type]
        ),
    )


def _run_byz_cell(ctx: RunContext, protocol: str, plan: FaultPlan,
                  phases: tuple[Phase, ...], end: float) -> dict:
    scenario = ctx.stabilized(protocol, _byz_params(ctx, protocol))
    interval = end / (ctx.config.messages - 1) if ctx.config.messages > 1 else None
    result = measure_byzantine_plan(
        scenario, plan,
        messages=ctx.config.messages, interval=interval, phases=phases,
    )
    return json_safe(result)  # type: ignore[return-value]


def _sanity(cell: dict) -> None:
    assert len(cell["series"]) == cell["messages"]
    assert len(cell["validated_series"]) == cell["messages"]
    for raw, validated in zip(cell["series"], cell["validated_series"]):
        # A validated delivery is a tracker delivery with the right value.
        assert 0.0 <= validated <= raw <= 1.0
    assert 0.0 <= cell["agreement"] <= 1.0
    assert 0.0 <= cell["final"]["largest_component"] <= 1.0


def _phase(cell: dict, name: str) -> dict:
    return next(row for row in cell["phases"] if row["phase"] == name)


def _cell_line(label: str, cell: dict) -> str:
    return (
        f"{label:24s} validated={cell['validated_average']:.3f} "
        f"raw={cell['average']:.3f} wrong={cell['wrong_deliveries']} "
        f"agreement={cell['agreement']:.2f}  "
        f"{sparkline(cell['validated_series'])}"
    )


# ----------------------------------------------------------------------
# Adversary-fraction sweep
# ----------------------------------------------------------------------
BYZ_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4)


def _fraction_plan(ctx: RunContext, fraction: float) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    corrupt_at = float(ctx.option("corrupt_at", 0.1))    # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))                  # type: ignore[arg-type]
    if fraction <= 0.0:
        plan = FaultPlan.empty()
    else:
        plan = FaultPlan(
            events=(
                MutationEvent(at=corrupt_at, fraction=fraction, rate=1.0),
            ),
            label=f"byz-fraction-{fraction:g}",
        )
    phases = (
        Phase("honest", 0.0, corrupt_at),
        Phase("corrupted", corrupt_at, end + 1e-6),
    )
    return plan, phases, end


def _fraction_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    protocols = tuple(ctx.option("protocols", BYZ_PROTOCOLS))  # type: ignore[arg-type]
    fractions = tuple(ctx.option("fractions", BYZ_FRACTIONS))  # type: ignore[arg-type]
    return tuple(
        (protocol, f"{float(fraction):g}")
        for protocol in protocols
        for fraction in fractions
    )


def _fraction_run(ctx: RunContext, key: CellKey) -> dict:
    protocol, fraction = str(key[0]), float(key[1])
    plan, phases, end = _fraction_plan(ctx, fraction)
    cell = _run_byz_cell(ctx, protocol, plan, phases, end)
    cell["fraction"] = fraction
    return cell


def _fraction_merge(ctx: RunContext, cell_results: Mapping[CellKey, dict]) -> dict:
    merged: dict = {}
    for (protocol, fraction), cell in cell_results.items():
        merged.setdefault(str(protocol), {})[str(fraction)] = cell
    return merged


def _render_fraction(result: dict, n: int) -> str:
    blocks = [f"Byzantine broadcast — adversary-fraction sweep (n={n})"]
    for protocol, cells in result.items():
        blocks.append("")
        blocks.append(f"{protocol}:")
        for fraction in sorted(cells, key=float):
            cell = cells[fraction]
            mean_latency = sum(cell["latencies"]) / len(cell["latencies"])
            blocks.append(
                "  " + _cell_line(f"{float(fraction):.0%} adversaries", cell)
                + f" latency={mean_latency * 1e3:.1f}ms"
            )
    return "\n".join(blocks)


def _check_fraction(result: dict, n: int) -> None:
    for cells in result.values():
        for cell in cells.values():
            _sanity(cell)
    brb = result.get("hyparview-brb")
    baseline = result.get("hyparview-reliable")
    if brb is None or n > 256:
        # The small-n smoke tier runs Bracha quorums, where the cliff is
        # exact; larger tiers may run sampled (SBRB) quorums, whose
        # guarantees are probabilistic — sanity only.
        return
    # Below the n > 3f cliff (f = 25% of the roster) every correct node
    # delivers the correct value; past it, echo quorums become
    # unreachable and the corrupted window stalls entirely.
    for fraction in ("0.1", "0.2", "0.3"):
        assert brb[fraction]["validated_average"] >= 0.99, fraction
        assert brb[fraction]["wrong_deliveries"] == 0
    collapsed = _phase(brb["0.4"], "corrupted")
    assert collapsed["average"] is not None and collapsed["average"] < 0.1
    if baseline is not None:
        # The ack/retransmit stack trusts arriving bytes: mutated relays
        # poison a visible share of first-copy deliveries.
        degraded = _phase(baseline["0.3"], "corrupted")
        assert degraded["average"] is not None and degraded["average"] < 0.95
        assert baseline["0.3"]["wrong_deliveries"] > 0
        assert (
            brb["0.3"]["validated_average"]
            > baseline["0.3"]["validated_average"]
        )


register(
    ScenarioSpec(
        id="byz_adversary_fraction",
        group="byzantine",
        title="Byzantine broadcast — adversary-fraction sweep",
        description="Validated (correct-value) delivery and latency as the "
        "mutating-relay fraction sweeps 0–40%: Bracha quorums hold to the "
        "n > 3f cliff while the ack/retransmit baseline degrades.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
            paper=TierConfig(n=10_000, messages=100, paper_params=True,
                             extra={"brb_mode": "sampled"}),
        ),
        render=_render_fraction,
        check=_check_fraction,
        **_cell_hooks(_fraction_cells, _fraction_run, _fraction_merge),
    )
)


# ----------------------------------------------------------------------
# Sampled quorums under churn
# ----------------------------------------------------------------------
def _protocol_cells(default: tuple[str, ...]):
    def cells(ctx: RunContext) -> tuple[CellKey, ...]:
        return tuple(
            (protocol,)
            for protocol in tuple(ctx.option("protocols", default))  # type: ignore[arg-type]
        )

    return cells


def _protocol_merge(default: tuple[str, ...]):
    def merge(ctx: RunContext, cell_results: Mapping[CellKey, dict]) -> dict:
        return {
            protocol: cell_results[(protocol,)]
            for protocol in tuple(ctx.option("protocols", default))  # type: ignore[arg-type]
        }

    return merge


def _churn_plan(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    corrupt_at = float(ctx.option("corrupt_at", 0.1))    # type: ignore[arg-type]
    honest_at = float(ctx.option("honest_at", 0.6))      # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))                  # type: ignore[arg-type]
    burst = int(ctx.option("burst_size", 3))             # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            MutationEvent(
                at=corrupt_at,
                fraction=float(ctx.option("byz_fraction", 0.15)),  # type: ignore[arg-type]
                until=honest_at,
            ),
            # Churn forces stack rebuilds (fresh rosters, fresh samples)
            # exactly while quorum votes are being corrupted.
            CrashEvent(at=0.25, count=burst),
            RestartEvent(at=0.4, fraction=1.0),
        ),
        label="byz-churn",
    )
    phases = (
        Phase("honest", 0.0, corrupt_at),
        Phase("byzantine", corrupt_at, honest_at),
        Phase("recovered", honest_at, end + 1e-6),
    )
    return plan, phases, end


BYZ_CHURN_PROTOCOLS = ("hyparview-brb", "cyclon-brb")


def _churn_run(ctx: RunContext, key: CellKey) -> dict:
    plan, phases, end = _churn_plan(ctx)
    return _run_byz_cell(ctx, str(key[0]), plan, phases, end)


def _render_churn(result: dict, n: int) -> str:
    blocks = [f"Byzantine broadcast — sampled quorums under churn (n={n})"]
    for protocol, cell in result.items():
        brb = cell["brb"]
        blocks.append(_cell_line(protocol, cell))
        blocks.append(
            f"  brb: echoes={brb['echoes_sent']} readies={brb['readies_sent']} "
            f"quorum-deliveries={brb['quorum_deliveries']}  "
            f"mutated={cell['fault_stats']['mutated_byz']}  "
            f"final alive={cell['final']['alive']}"
        )
    return "\n".join(blocks)


def _check_churn(result: dict, n: int) -> None:
    for cell in result.values():
        _sanity(cell)
        # The quorum machinery actually ran, the mutation actually bit,
        # and every crashed node restarted.
        assert cell["brb"]["quorum_deliveries"] > 0
        # Fault times are absolute seconds: the paced stream only samples
        # the [0.1s, 0.6s) corruption window when it is dense enough
        # (tiny sanity runs with 2-3 sends straddle it entirely).
        if cell["messages"] >= 4:
            assert cell["fault_stats"]["mutated_byz"] > 0
        assert cell["final"]["alive"] == cell["n"]
        # Quorum delivery never hands over a corrupted value, even while
        # rosters churn mid-stream.
        assert cell["wrong_deliveries"] == 0
        assert cell["agreement"] == 1.0


register(
    ScenarioSpec(
        id="byz_churn",
        group="byzantine",
        title="Byzantine broadcast — sampled quorums under churn",
        description="O(log n)-sample (SBRB) quorums carry the stream "
        "through a mutation window overlapping crash/restart bursts; "
        "validated delivery with rosters rebuilt mid-stream.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=12, stabilization_cycles=15,
                             extra={"brb_mode": "sampled"}),
            paper=TierConfig(n=10_000, messages=100, paper_params=True,
                             extra={"brb_mode": "sampled", "burst_size": 150}),
        ),
        render=_render_churn,
        check=_check_churn,
        **_cell_hooks(
            _protocol_cells(BYZ_CHURN_PROTOCOLS),
            _churn_run,
            _protocol_merge(BYZ_CHURN_PROTOCOLS),
        ),
    )
)


# ----------------------------------------------------------------------
# Equivocation
# ----------------------------------------------------------------------
def _equivocation_plan(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    corrupt_at = float(ctx.option("corrupt_at", 0.1))    # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))                  # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            MutationEvent(
                at=corrupt_at,
                fraction=float(ctx.option("byz_fraction", 0.25)),  # type: ignore[arg-type]
                target_types=DEFAULT_MUTATION_TYPES,
                equivocate=True,
            ),
        ),
        label="byz-equivocation",
    )
    phases = (
        Phase("honest", 0.0, corrupt_at),
        Phase("equivocating", corrupt_at, end + 1e-6),
    )
    return plan, phases, end


def _equivocation_run(ctx: RunContext, key: CellKey) -> dict:
    plan, phases, end = _equivocation_plan(ctx)
    return _run_byz_cell(ctx, str(key[0]), plan, phases, end)


def _render_equivocation(result: dict, n: int) -> str:
    blocks = [f"Byzantine broadcast — equivocating relays (n={n})"]
    for protocol, cell in result.items():
        blocks.append(_cell_line(protocol, cell))
        blocks.append(
            f"  equivocated-frames={cell['fault_stats']['equivocated_byz']}"
        )
    return "\n".join(blocks)


def _check_equivocation(result: dict, n: int) -> None:
    for cell in result.values():
        _sanity(cell)
        assert cell["fault_stats"]["equivocated_byz"] > 0
    brb = result.get("hyparview-brb")
    if brb is not None:
        # Echo-once plus payload-bound quorums: no wrong value is ever
        # delivered and no two nodes ever disagree, at any tier.
        assert brb["wrong_deliveries"] == 0
        assert brb["agreement"] == 1.0
    baseline = result.get("hyparview-reliable")
    if baseline is not None:
        # First-copy-wins delivery swallows per-destination forgeries:
        # conflicting values are delivered for the same message id.
        assert baseline["wrong_deliveries"] > 0
        assert baseline["agreement"] < 1.0


register(
    ScenarioSpec(
        id="byz_equivocation",
        group="byzantine",
        title="Byzantine broadcast — equivocating relays",
        description="A quarter of the relays send a fresh forged value to "
        "every destination; BRB keeps exact agreement while the baseline "
        "delivers conflicting values for the same message id.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
            paper=TierConfig(n=10_000, messages=100, paper_params=True,
                             extra={"brb_mode": "sampled"}),
        ),
        render=_render_equivocation,
        check=_check_equivocation,
        **_cell_hooks(
            _protocol_cells(BYZ_PROTOCOLS),
            _equivocation_run,
            _protocol_merge(BYZ_PROTOCOLS),
        ),
    )
)


__all__ = [
    "BYZ_FRACTIONS",
    "BYZ_CHURN_PROTOCOLS",
    "BYZ_PROTOCOLS",
    "measure_byzantine_plan",
]
