"""Compile a :class:`~repro.faults.plan.FaultPlan` onto the simulator.

The driver schedules one engine timer per event at ``install()`` time;
each timer's callback mutates the :class:`~repro.sim.network.Network` /
:class:`~repro.experiments.scenario.Scenario` (partitions, link rules,
crashes, restarts, adversaries) while the measurement loop keeps the
engine running.  Callbacks run *inside* the engine drain, so they never
drain themselves — restarts queue their join traffic for the outer run.

Determinism: every random choice (victim selection, group assignment,
contacts) draws from a dedicated stream derived as
``scenario.seeds.stream(plan.label)``; the harness and protocol streams
are untouched, and an **empty plan installs nothing and draws nothing** —
the run is byte-identical to one that never saw a driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..common.errors import ConfigurationError
from ..common.ids import NodeId
from ..sim.network import ByzantineBehavior, LinkFaultRule
from .plan import (
    AdversaryEvent,
    CollusionEvent,
    CrashEvent,
    DegradeEvent,
    FaultEvent,
    FaultPlan,
    MutationEvent,
    PartitionEvent,
    RestartEvent,
    pick_count,
    split_weighted,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.scenario import Scenario


class SimFaultDriver:
    """Applies one fault plan to one scenario's simulated deployment."""

    def __init__(self, scenario: "Scenario", plan: FaultPlan) -> None:
        self.scenario = scenario
        self.plan = plan
        self.start = scenario.engine.now
        #: (absolute sim time, description) per applied effect, in order.
        self.applied: list[tuple[float, str]] = []
        self._installed = False
        # The dedicated fault stream; never created for an empty plan so
        # the no-op path has zero observable footprint.
        self._rng = scenario.seeds.stream(plan.label) if plan else None

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every event relative to the current engine time."""
        if self._installed:
            raise ConfigurationError("fault plan already installed")
        self._installed = True
        engine = self.scenario.engine
        for event in self.plan.events:
            engine.schedule_at(self.start + event.at, self._apply, event)

    # ------------------------------------------------------------------
    # Event application (engine callbacks — must never drain)
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        if isinstance(event, PartitionEvent):
            self._apply_partition(event)
        elif isinstance(event, DegradeEvent):
            self._apply_degrade(event)
        elif isinstance(event, CrashEvent):
            self._apply_crash(event)
        elif isinstance(event, RestartEvent):
            self._apply_restart(event)
        elif isinstance(event, AdversaryEvent):
            self._apply_adversary(event)
        elif isinstance(event, MutationEvent):
            self._apply_mutation(event)
        elif isinstance(event, CollusionEvent):
            self._apply_collusion(event)
        else:  # pragma: no cover - vocabulary guard
            raise ConfigurationError(f"unknown fault event: {event!r}")

    def _note(self, description: str) -> None:
        self.applied.append((self.scenario.engine.now, description))

    def _pick(self, population: list[NodeId], fraction: Optional[float],
              count: Optional[int]) -> list[NodeId]:
        chosen = pick_count(fraction, count, len(population))
        return self._rng.sample(population, chosen) if chosen else []

    def _apply_partition(self, event: PartitionEvent) -> None:
        scenario = self.scenario
        members = scenario.alive_ids()
        self._rng.shuffle(members)
        groups = split_weighted(members, event.weights)
        scenario.network.set_partitions(groups)
        self._note(event.describe())
        if event.heal_at is not None:
            scenario.engine.schedule_at(
                self.start + event.heal_at, self._heal_partition, event
            )

    def _heal_partition(self, event: PartitionEvent) -> None:
        scenario = self.scenario
        scenario.network.clear_partitions()
        self._note(f"heal@{event.heal_at:g}")
        if event.rejoin:
            # Operator-assisted remerge: a handful of nodes re-join through
            # uniformly random contacts; with balanced groups roughly half
            # of the joins cross the former cut and stitch the components.
            alive = scenario.alive_ids()
            movers = self._pick(alive, None, event.rejoin)
            for node_id in movers:
                contact = self._rng.choice([n for n in alive if n != node_id])
                scenario.membership(node_id).join(contact)
            self._note(f"rejoin {len(movers)}@{event.heal_at:g}")

    def _apply_degrade(self, event: DegradeEvent) -> None:
        self.scenario.network.add_link_rule(
            LinkFaultRule(
                until=self.start + event.until,
                loss_rate=event.loss_rate,
                extra_latency=event.jitter,
                duplicate_rate=event.duplicate_rate,
                retransmit_delay=event.retransmit_delay,
                link_fraction=event.link_fraction,
                selector_seed=self.scenario.seeds.derive_seed(
                    f"{self.plan.label}/links/{event.at:g}"
                ),
            )
        )
        self._note(event.describe())

    def _apply_crash(self, event: CrashEvent) -> None:
        scenario = self.scenario
        victims = self._pick(scenario.alive_ids(), event.fraction, event.count)
        if len(victims) >= len(scenario.alive_ids()):
            victims = victims[:-1]  # never kill the last survivor
        if victims:
            scenario.fail_nodes(victims)
        self._note(f"{event.describe()} -> {len(victims)} crashed")

    def _apply_restart(self, event: RestartEvent) -> None:
        scenario = self.scenario
        alive = set(scenario.alive_ids())
        dead = [node for node in scenario.node_ids if node not in alive]
        victims = self._pick(dead, event.fraction, event.count)
        live = [node for node in scenario.node_ids if node in alive]
        for node_id in victims:
            # Concurrent rejoins: no draining between joins (flash crowd);
            # contacts come from the pre-restart live set so every joiner
            # dials an established member, like a bootstrap list would.
            contact = self._rng.choice(live)
            scenario.revive_node(node_id, contact, drain=False)
        self._note(f"{event.describe()} -> {len(victims)} restarted")

    def _apply_adversary(self, event: AdversaryEvent) -> None:
        scenario = self.scenario
        victims = self._pick(scenario.alive_ids(), event.fraction, event.count)
        for node_id in victims:
            scenario.network.set_adversary(node_id, event.drop_types)
        self._note(f"{event.describe()} -> {len(victims)} adversarial")
        if event.until is not None:
            scenario.engine.schedule_at(
                self.start + event.until, self._clear_adversary, tuple(victims)
            )

    def _clear_adversary(self, victims: tuple[NodeId, ...]) -> None:
        network = self.scenario.network
        for node_id in victims:
            network.set_adversary(node_id, ())
        self._note(f"adversary cleared ({len(victims)})")

    def _apply_mutation(self, event: MutationEvent) -> None:
        scenario = self.scenario
        victims = self._pick(scenario.alive_ids(), event.fraction, event.count)
        for node_id in victims:
            scenario.network.set_byzantine(
                node_id,
                ByzantineBehavior(
                    event.target_types, rate=event.rate, equivocate=event.equivocate
                ),
            )
        self._note(f"{event.describe()} -> {len(victims)} byzantine")
        if event.until is not None:
            scenario.engine.schedule_at(
                self.start + event.until, self._clear_byzantine, tuple(victims)
            )

    def _clear_byzantine(self, victims: tuple[NodeId, ...]) -> None:
        network = self.scenario.network
        for node_id in victims:
            network.set_byzantine(node_id, None)
        self._note(f"byzantine cleared ({len(victims)})")

    def _apply_collusion(self, event: CollusionEvent) -> None:
        scenario = self.scenario
        victims = self._pick(scenario.alive_ids(), event.fraction, event.count)
        if victims:
            scenario.network.set_collusion(
                victims,
                drop_types=event.drop_types,
                mutate_types=event.mutate_types,
                rate=event.rate,
            )
        self._note(f"{event.describe()} -> {len(victims)} colluding")
        if event.until is not None:
            scenario.engine.schedule_at(
                self.start + event.until, self._clear_collusion, tuple(victims)
            )

    def _clear_collusion(self, victims: tuple[NodeId, ...]) -> None:
        self.scenario.network.clear_collusion(victims)
        self._note(f"collusion cleared ({len(victims)})")


__all__ = ["SimFaultDriver"]
