"""The ``faults_*`` scenario family: chaos experiments from fault plans.

Every scenario here is one :class:`~repro.faults.plan.FaultPlan` factory
measured through :func:`~repro.faults.measure.measure_fault_plan` on a
stabilised overlay, registered in the tiered registry with per-protocol
cells (so the orchestrator shards them and serves bases from the snapshot
cache like any grid scenario):

* ``faults_partition_heal``   — split-brain with heal and assisted remerge;
* ``faults_cascade``          — correlated cascading crash waves;
* ``faults_wan_jitter``       — lossy/jittery/duplicating WAN links
  (runs the engine in quantised-tick mode: continuous jitter otherwise
  degenerates the bucket queue to one event per bucket);
* ``faults_churn_trace``      — replay of a crash/restart churn trace;
* ``faults_flash_crowd``      — mass concurrent rejoin after heavy loss;
* ``faults_adversary``        — misbehaving peers silently dropping repair
  traffic (FORWARDJOIN / NEIGHBOR / SHUFFLE) while churn forces repairs.

The ``reliable_*`` family runs the same machinery over the ack+retransmit
broadcast stacks (:mod:`repro.gossip.reliable`) — per-message per-peer
cancellable retransmit timers, the workload class the engine's timer
wheel exists for.  Their plans lean on *datagram* loss (which the acked
layers must repair themselves) rather than the TCP-masking the flood
enjoys:

* ``reliable_loss``  — a window of correlated per-link datagram loss and
  duplication; retransmissions carry the stream through it;
* ``reliable_churn`` — crash/restart bursts mid-stream; ack silence (not
  TCP resets) is the failure signal that triggers view repair;
* ``reliable_stress`` — loss window and a crash wave at once, the
  retry-budget worst case.

Timeline times are seconds of simulated time (network delay is 0.01 s at
every tier), so plans transfer unchanged to the live runtime via
:class:`~repro.faults.chaos.ChaosController`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Mapping, Optional

from ..experiments.params import ExperimentParams
from ..experiments.registry import (
    SHAPE_CHECK_MIN_N,
    CellKey,
    RunContext,
    ScenarioSpec,
    TierConfig,
    _cell_hooks,
    _tiers,
    register,
)
from ..experiments.reporting import format_phases, json_safe, sparkline
from .measure import measure_fault_plan
from .plan import (
    AdversaryEvent,
    CrashEvent,
    DegradeEvent,
    FaultPlan,
    PartitionEvent,
    Phase,
    RestartEvent,
)

#: A fault-plan factory: (plan, phases, stream end time) from the context.
PlanFactory = Callable[[RunContext], tuple[FaultPlan, tuple[Phase, ...], float]]

#: Protocols the fault scenarios compare by default: the paper's subject
#: and its strongest baseline.
FAULT_PROTOCOLS = ("hyparview", "cyclon-acked")


def _protocols(ctx: RunContext, default=FAULT_PROTOCOLS) -> tuple[str, ...]:
    return tuple(ctx.option("protocols", default))  # type: ignore[arg-type]


def _fault_params(ctx: RunContext) -> ExperimentParams:
    """Tier params plus the scenario's optional engine-tick override."""
    params = ctx.params()
    tick = ctx.option("engine_tick", None)
    if tick is not None:
        params = replace(params, engine_tick=float(tick))  # type: ignore[arg-type]
    return params


def _run_fault_cell(ctx: RunContext, key: CellKey, factory: PlanFactory) -> dict:
    protocol = str(key[0])
    scenario = ctx.stabilized(protocol, _fault_params(ctx))
    plan, phases, end = factory(ctx)
    interval = end / (ctx.config.messages - 1) if ctx.config.messages > 1 else None
    result = measure_fault_plan(
        scenario, plan,
        messages=ctx.config.messages, interval=interval, phases=phases,
    )
    return json_safe(result)  # type: ignore[return-value]


def _render_fault(result: dict, n: int, *, title: str) -> str:
    blocks = [f"{title} (n={n})"]
    for protocol, cell in result.items():
        stats = cell["fault_stats"]
        blocks.append("")
        blocks.append(
            format_phases(cell["phases"], title=f"{protocol} — plan: "
                          f"{'; '.join(cell['plan']) or '(none)'}")
        )
        blocks.append(
            f"{protocol:13s} avg={cell['average']:.3f}  "
            f"{sparkline(cell['series'])}"
        )
        blocks.append(
            f"  faults: rule-drops={stats['dropped_fault']} "
            f"dups={stats['duplicated_fault']} "
            f"adversary-drops={stats['dropped_adversary']} "
            f"send-failures={stats['send_failures']}  "
            f"final: alive={cell['final']['alive']} "
            f"component={cell['final']['largest_component']:.3f}"
        )
        reliable = cell.get("reliable")
        if reliable is not None:
            blocks.append(
                f"  ack layer: acks={reliable['acks_received']} "
                f"retransmissions={reliable['retransmissions']} "
                f"give-ups={reliable['give_ups']}"
            )
    return "\n".join(blocks)


def _sanity(result: dict) -> None:
    for cell in result.values():
        assert len(cell["series"]) == cell["messages"]
        for value in cell["series"]:
            assert 0.0 <= value <= 1.0
        assert 0.0 <= cell["final"]["largest_component"] <= 1.0


def _phase(cell: dict, name: str) -> dict:
    return next(row for row in cell["phases"] if row["phase"] == name)


def _register_fault_scenario(
    *,
    scenario_id: str,
    title: str,
    description: str,
    factory: PlanFactory,
    smoke: TierConfig,
    paper: TierConfig,
    check: Optional[Callable[[dict, int], None]] = None,
    default_protocols: tuple[str, ...] = FAULT_PROTOCOLS,
) -> None:
    def cells(ctx: RunContext) -> tuple[CellKey, ...]:
        return tuple((protocol,) for protocol in _protocols(ctx, default_protocols))

    def run_cell(ctx: RunContext, key: CellKey) -> dict:
        return _run_fault_cell(ctx, key, factory)

    def merge(ctx: RunContext, cell_results: Mapping[CellKey, dict]) -> dict:
        return {
            protocol: cell_results[(protocol,)]
            for protocol in _protocols(ctx, default_protocols)
        }

    register(
        ScenarioSpec(
            id=scenario_id,
            group="faults",
            title=title,
            description=description,
            tiers=_tiers(smoke=smoke, paper=paper),
            render=lambda result, n: _render_fault(result, n, title=title),
            check=check,
            **_cell_hooks(cells, run_cell, merge),
        )
    )


# ----------------------------------------------------------------------
# Partition and heal
# ----------------------------------------------------------------------
def _partition_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    split_at = float(ctx.option("split_at", 0.2))    # type: ignore[arg-type]
    heal_at = float(ctx.option("heal_at", 0.5))      # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))              # type: ignore[arg-type]
    rejoin = int(ctx.option("rejoin", 4))            # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            PartitionEvent(
                at=split_at, weights=(0.5, 0.5), heal_at=heal_at, rejoin=rejoin
            ),
        ),
        label="partition-heal",
    )
    phases = (
        Phase("before", 0.0, split_at),
        Phase("partitioned", split_at, heal_at),
        Phase("healed", heal_at, end + 1e-6),
    )
    return plan, phases, end


def _check_partition(result: dict, n: int) -> None:
    _sanity(result)
    for cell in result.values():
        # The cut is real: mid-partition broadcasts cannot be atomic.
        during = _phase(cell, "partitioned")
        if during["messages"]:
            assert during["min"] < 1.0
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview")
    if hv:
        before = _phase(hv, "before")
        healed = _phase(hv, "healed")
        # Stable-overlay flood is atomic before the cut, and the assisted
        # remerge restores most of the reach after healing.
        assert before["average"] is None or before["average"] > 0.99
        assert healed["average"] is not None and healed["average"] > 0.6


_register_fault_scenario(
    scenario_id="faults_partition_heal",
    title="Faults — partition and heal",
    description="Split-brain 50/50 partition with later heal and an "
    "operator-assisted remerge; reliability per fault phase.",
    factory=_partition_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True),
    check=_check_partition,
)


# ----------------------------------------------------------------------
# Correlated cascading failures
# ----------------------------------------------------------------------
def _cascade_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    wave = float(ctx.option("wave_fraction", 0.15))  # type: ignore[arg-type]
    waves = tuple(ctx.option("waves", (0.2, 0.35, 0.5)))  # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))              # type: ignore[arg-type]
    plan = FaultPlan(
        events=tuple(CrashEvent(at=float(at), fraction=wave) for at in waves),
        label="cascade",
    )
    phases = (
        Phase("stable", 0.0, waves[0]),
        Phase("cascading", waves[0], waves[-1] + 0.1),
        Phase("aftermath", waves[-1] + 0.1, end + 1e-6),
    )
    return plan, phases, end


def _check_cascade(result: dict, n: int) -> None:
    _sanity(result)
    for cell in result.values():
        # The waves actually happened: survivors < starting population.
        assert cell["final"]["alive"] < cell["n"]
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview")
    if hv:
        aftermath = _phase(hv, "aftermath")
        # HyParView's claim under correlated waves: the tail recovers.
        assert aftermath["average"] is not None and aftermath["average"] > 0.7


_register_fault_scenario(
    scenario_id="faults_cascade",
    title="Faults — correlated cascading failures",
    description="Three correlated crash waves mid-stream; per-wave-phase "
    "reliability and post-cascade recovery.",
    factory=_cascade_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True),
    check=_check_cascade,
)


# ----------------------------------------------------------------------
# WAN jitter / lossy links (quantised-tick engine)
# ----------------------------------------------------------------------
def _wan_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    degrade_at = float(ctx.option("degrade_at", 0.1))    # type: ignore[arg-type]
    recover_at = float(ctx.option("recover_at", 0.5))    # type: ignore[arg-type]
    end = float(ctx.option("end", 0.8))                  # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            DegradeEvent(
                at=degrade_at,
                until=recover_at,
                loss_rate=float(ctx.option("loss", 0.1)),       # type: ignore[arg-type]
                jitter=(0.0, float(ctx.option("jitter", 0.05))),  # type: ignore[arg-type]
                duplicate_rate=float(ctx.option("dup", 0.05)),  # type: ignore[arg-type]
                retransmit_delay=0.03,
                link_fraction=float(ctx.option("links", 0.5)),  # type: ignore[arg-type]
            ),
        ),
        label="wan-jitter",
    )
    phases = (
        Phase("clean", 0.0, degrade_at),
        Phase("degraded", degrade_at, recover_at),
        Phase("recovered", recover_at, end + 1e-6),
    )
    return plan, phases, end


def _check_wan(result: dict, n: int) -> None:
    _sanity(result)
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview")
    if hv:
        # TCP-modelled links mask loss as latency: the flood stays near
        # atomic straight through the degradation window.
        assert hv["average"] > 0.9


_register_fault_scenario(
    scenario_id="faults_wan_jitter",
    title="Faults — WAN jitter and lossy links",
    description="A window of per-link loss, jitter and duplication on half "
    "the links; TCP-modelled flood vs datagram gossip, on the quantised-"
    "tick engine.",
    factory=_wan_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15,
                     extra={"engine_tick": 0.002}),
    paper=TierConfig(n=10_000, messages=100, paper_params=True,
                     extra={"engine_tick": 0.002}),
    check=_check_wan,
    default_protocols=("hyparview", "cyclon"),
)


# ----------------------------------------------------------------------
# Churn-trace replay
# ----------------------------------------------------------------------
def _churn_trace_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    bursts = int(ctx.option("bursts", 4))            # type: ignore[arg-type]
    burst_size = int(ctx.option("burst_size", 3))    # type: ignore[arg-type]
    period = float(ctx.option("period", 0.15))       # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))              # type: ignore[arg-type]
    trace = []
    for burst in range(bursts):
        at = 0.1 + burst * period
        trace.append((at, "crash", burst_size))
        trace.append((at + period / 2, "restart", burst_size))
    plan = FaultPlan.churn_trace(trace)
    third = end / 3
    phases = (
        Phase("early", 0.0, third),
        Phase("mid", third, 2 * third),
        Phase("late", 2 * third, end + 1e-6),
    )
    return plan, phases, end


def _check_churn_trace(result: dict, n: int) -> None:
    _sanity(result)
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview")
    if hv:
        # Continuous churn at this rate barely dents HyParView.
        assert hv["average"] > 0.9
        assert hv["final"]["largest_component"] > 0.9


_register_fault_scenario(
    scenario_id="faults_churn_trace",
    title="Faults — churn-trace replay",
    description="Deterministic crash/restart burst trace replayed against "
    "the overlay while the broadcast stream runs.",
    factory=_churn_trace_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True,
                     extra={"burst_size": 150}),
    check=_check_churn_trace,
)


# ----------------------------------------------------------------------
# Flash-crowd join
# ----------------------------------------------------------------------
def _flash_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    crash_at = float(ctx.option("crash_at", 0.05))   # type: ignore[arg-type]
    flash_at = float(ctx.option("flash_at", 0.45))   # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))              # type: ignore[arg-type]
    fraction = float(ctx.option("crash_fraction", 0.4))  # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            CrashEvent(at=crash_at, fraction=fraction),
            RestartEvent(at=flash_at, fraction=1.0),
        ),
        label="flash-crowd",
    )
    phases = (
        Phase("depleted", 0.0, flash_at),
        Phase("flash", flash_at, end + 1e-6),
    )
    return plan, phases, end


def _check_flash(result: dict, n: int) -> None:
    _sanity(result)
    for cell in result.values():
        # Every crashed node restarted: the full population is back.
        assert cell["final"]["alive"] == cell["n"]
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview")
    if hv:
        # The join storm is absorbed: the overlay ends connected.
        assert hv["final"]["largest_component"] > 0.9


_register_fault_scenario(
    scenario_id="faults_flash_crowd",
    title="Faults — flash-crowd join",
    description="40% of the population crashes, then every dead node "
    "rejoins at the same instant — a join storm through few contacts.",
    factory=_flash_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True),
    check=_check_flash,
)


# ----------------------------------------------------------------------
# Misbehaving peers
# ----------------------------------------------------------------------
def _adversary_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    corrupt_at = float(ctx.option("corrupt_at", 0.1))    # type: ignore[arg-type]
    honest_at = float(ctx.option("honest_at", 0.6))      # type: ignore[arg-type]
    crash_at = float(ctx.option("crash_at", 0.25))       # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))                  # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            AdversaryEvent(
                at=corrupt_at,
                fraction=float(ctx.option("adversary_fraction", 0.25)),  # type: ignore[arg-type]
                # Each protocol family's repair/membership vocabulary; an
                # adversary only matches the types its overlay actually
                # speaks (the rest are inert).
                drop_types=(
                    "ForwardJoin", "Neighbor", "Shuffle", "ShuffleReply",
                    "CyclonJoinWalk", "CyclonShuffleRequest", "CyclonShuffleReply",
                ),
                until=honest_at,
            ),
            # Crashes force repair traffic exactly while adversaries are
            # silently eating it.
            CrashEvent(
                at=crash_at,
                fraction=float(ctx.option("crash_fraction", 0.25)),  # type: ignore[arg-type]
            ),
            RestartEvent(at=crash_at + 0.15, fraction=1.0),
        ),
        label="adversary",
    )
    phases = (
        Phase("honest", 0.0, corrupt_at),
        Phase("sabotaged", corrupt_at, honest_at),
        Phase("recovered", honest_at, end + 1e-6),
    )
    return plan, phases, end


def _check_adversary(result: dict, n: int) -> None:
    _sanity(result)
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview")
    if hv:
        # The sabotage was real: repair traffic was silently dropped
        # (crash repair guarantees NEIGHBOR/FORWARDJOIN flows through the
        # adversaries; baseline protocols only shuffle on cycles, which
        # the paced measurement never runs).
        assert hv["fault_stats"]["dropped_adversary"] > 0


_register_fault_scenario(
    scenario_id="faults_adversary",
    title="Faults — misbehaving peers",
    description="A quarter of the nodes silently drop FORWARDJOIN / "
    "NEIGHBOR / SHUFFLE traffic while crashes force repairs through them.",
    factory=_adversary_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True),
    check=_check_adversary,
)


# ----------------------------------------------------------------------
# Reliable-delivery workloads (ack + retransmit stacks; timer-wheel heavy)
# ----------------------------------------------------------------------
#: The ack/retransmit stacks the ``reliable_*`` scenarios compare:
#: HyParView's flood discipline and Cyclon's fanout gossip, both over
#: datagrams with per-copy acks.
RELIABLE_PROTOCOLS = ("hyparview-reliable", "cyclon-reliable")


def _reliable_loss_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    degrade_at = float(ctx.option("degrade_at", 0.1))    # type: ignore[arg-type]
    recover_at = float(ctx.option("recover_at", 0.5))    # type: ignore[arg-type]
    end = float(ctx.option("end", 0.8))                  # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            DegradeEvent(
                at=degrade_at,
                until=recover_at,
                loss_rate=float(ctx.option("loss", 0.25)),      # type: ignore[arg-type]
                # No jitter: continuous latencies would degenerate the
                # bucket queue, and the point here is the timer wheel —
                # loss and duplication stress acks, not timestamps.
                jitter=(0.0, 0.0),
                duplicate_rate=float(ctx.option("dup", 0.05)),  # type: ignore[arg-type]
                retransmit_delay=0.03,
                link_fraction=float(ctx.option("links", 0.5)),  # type: ignore[arg-type]
            ),
        ),
        label="reliable-loss",
    )
    phases = (
        Phase("clean", 0.0, degrade_at),
        Phase("lossy", degrade_at, recover_at),
        Phase("recovered", recover_at, end + 1e-6),
    )
    return plan, phases, end


def _check_reliable_loss(result: dict, n: int) -> None:
    _sanity(result)
    for cell in result.values():
        reliable = cell["reliable"]
        # The stream was acked at any scale; loss and retransmissions
        # require traffic *inside* the degradation window (thinned
        # message counts may put the whole stream outside it).
        assert reliable["acks_received"] > 0
        if _phase(cell, "lossy")["messages"]:
            assert cell["fault_stats"]["dropped_fault"] > 0
            assert reliable["retransmissions"] > 0
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview-reliable")
    if hv:
        # Retransmissions carry the flood through the loss window.
        lossy = _phase(hv, "lossy")
        assert lossy["average"] is not None and lossy["average"] > 0.9


_register_fault_scenario(
    scenario_id="reliable_loss",
    title="Reliable gossip — correlated datagram loss",
    description="A window of per-link datagram loss and duplication on "
    "half the links; per-copy acks and retransmit timers repair the "
    "stream the transport no longer does.",
    factory=_reliable_loss_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True),
    check=_check_reliable_loss,
    default_protocols=RELIABLE_PROTOCOLS,
)


def _reliable_churn_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    bursts = int(ctx.option("bursts", 3))            # type: ignore[arg-type]
    burst_size = int(ctx.option("burst_size", 4))    # type: ignore[arg-type]
    period = float(ctx.option("period", 0.2))        # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))              # type: ignore[arg-type]
    trace = []
    for burst in range(bursts):
        at = 0.1 + burst * period
        trace.append((at, "crash", burst_size))
        trace.append((at + period / 2, "restart", burst_size))
    plan = FaultPlan.churn_trace(trace, label="reliable-churn")
    third = end / 3
    phases = (
        Phase("early", 0.0, third),
        Phase("mid", third, 2 * third),
        Phase("late", 2 * third, end + 1e-6),
    )
    return plan, phases, end


def _check_reliable_churn(result: dict, n: int) -> None:
    _sanity(result)
    for cell in result.values():
        # Every crashed node restarted, and the ack machinery ran.
        assert cell["final"]["alive"] == cell["n"]
        assert cell["reliable"]["acks_received"] > 0
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview-reliable")
    if hv:
        # Ack silence (give-ups) is the failure detector here; modest
        # churn must not dent the stream much.
        assert hv["average"] > 0.85
        assert hv["final"]["largest_component"] > 0.9


_register_fault_scenario(
    scenario_id="reliable_churn",
    title="Reliable gossip — churn bursts",
    description="Crash/restart bursts mid-stream; retransmit give-ups "
    "(ack silence), not TCP resets, feed the membership repair.",
    factory=_reliable_churn_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True,
                     extra={"burst_size": 150}),
    check=_check_reliable_churn,
    default_protocols=RELIABLE_PROTOCOLS,
)


def _reliable_stress_factory(ctx: RunContext) -> tuple[FaultPlan, tuple[Phase, ...], float]:
    degrade_at = float(ctx.option("degrade_at", 0.1))    # type: ignore[arg-type]
    crash_at = float(ctx.option("crash_at", 0.3))        # type: ignore[arg-type]
    recover_at = float(ctx.option("recover_at", 0.6))    # type: ignore[arg-type]
    end = float(ctx.option("end", 0.9))                  # type: ignore[arg-type]
    plan = FaultPlan(
        events=(
            DegradeEvent(
                at=degrade_at,
                until=recover_at,
                loss_rate=float(ctx.option("loss", 0.35)),  # type: ignore[arg-type]
                jitter=(0.0, 0.0),
                duplicate_rate=0.05,
                retransmit_delay=0.03,
                link_fraction=float(ctx.option("links", 0.6)),  # type: ignore[arg-type]
            ),
            CrashEvent(
                at=crash_at,
                fraction=float(ctx.option("crash_fraction", 0.2)),  # type: ignore[arg-type]
            ),
        ),
        label="reliable-stress",
    )
    phases = (
        Phase("clean", 0.0, degrade_at),
        Phase("lossy", degrade_at, crash_at),
        Phase("lossy+dead", crash_at, recover_at),
        Phase("aftermath", recover_at, end + 1e-6),
    )
    return plan, phases, end


def _check_reliable_stress(result: dict, n: int) -> None:
    _sanity(result)
    for cell in result.values():
        reliable = cell["reliable"]
        if _phase(cell, "lossy")["messages"] or _phase(cell, "lossy+dead")["messages"]:
            assert reliable["retransmissions"] > 0
        # The crash wave happened while retries were burning budget.
        assert cell["final"]["alive"] < cell["n"]
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview-reliable")
    if hv:
        # Retries plus view repair pull the tail back up after the window.
        aftermath = _phase(hv, "aftermath")
        assert aftermath["average"] is not None and aftermath["average"] > 0.7


_register_fault_scenario(
    scenario_id="reliable_stress",
    title="Reliable gossip — loss window plus crash wave",
    description="Heavy correlated datagram loss with a crash wave in the "
    "middle of it: retransmit budgets, give-up failure reports and view "
    "repair all under fire at once.",
    factory=_reliable_stress_factory,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15),
    paper=TierConfig(n=10_000, messages=100, paper_params=True),
    check=_check_reliable_stress,
    default_protocols=RELIABLE_PROTOCOLS,
)


__all__ = ["FAULT_PROTOCOLS", "RELIABLE_PROTOCOLS"]
