"""Fault injection: declarative fault plans for sim and live runtime.

One vocabulary (:mod:`repro.faults.plan`), two substrates:

* :class:`~repro.faults.sim.SimFaultDriver` compiles a plan onto the
  discrete-event simulator;
* :class:`~repro.faults.chaos.ChaosController` (imported explicitly —
  it pulls in asyncio runtime machinery) replays the same plan against a
  loopback-TCP :class:`~repro.runtime.cluster.LocalCluster`.

The ``faults_*`` registry scenarios live in
:mod:`repro.faults.scenarios` and are registered when the experiment
registry is imported.
"""

from .measure import measure_fault_plan
from .plan import (
    DEFAULT_MUTATION_TYPES,
    AdversaryEvent,
    CollusionEvent,
    CrashEvent,
    DegradeEvent,
    FaultEvent,
    FaultPlan,
    MutationEvent,
    PartitionEvent,
    Phase,
    RestartEvent,
    plan_from_file,
    validate_phases,
)
from .sim import SimFaultDriver

__all__ = [
    "AdversaryEvent",
    "CollusionEvent",
    "CrashEvent",
    "DEFAULT_MUTATION_TYPES",
    "DegradeEvent",
    "FaultEvent",
    "FaultPlan",
    "MutationEvent",
    "PartitionEvent",
    "Phase",
    "RestartEvent",
    "SimFaultDriver",
    "measure_fault_plan",
    "plan_from_file",
    "validate_phases",
]
