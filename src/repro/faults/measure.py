"""Measure a broadcast stream while a fault plan unfolds.

The generic driver behind every ``faults_*`` registry scenario: install a
plan on a stabilised scenario, pace a broadcast stream across (at least)
the plan's horizon, then settle and report

* the per-message reliability series (timestamped by send time),
* per-:class:`~repro.faults.plan.Phase` aggregates (average / min /
  atomic fraction per named window of the timeline),
* the network's fault counters (rule drops, duplicates, adversary drops),
* the final overlay state (alive, largest component, symmetry).

Reliability is measured against the population alive at the *end* of the
run — the paper's "correct nodes", extended to ongoing churn: a node that
crashed mid-plan and never restarted is not expected to deliver.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.errors import ConfigurationError
from .plan import FaultPlan, Phase, validate_phases
from .sim import SimFaultDriver


def measure_fault_plan(
    scenario,
    plan: FaultPlan,
    *,
    messages: int,
    interval: Optional[float] = None,
    settle: Optional[float] = None,
    phases: Sequence[Phase] = (),
) -> dict:
    """Run ``messages`` paced broadcasts under ``plan``; returns a JSON-safe
    result dict.

    The scenario is consumed (mutated) — callers pass a snapshot-cache
    checkout.  ``interval`` defaults to spreading the stream across the
    plan horizon (or five network delays when the plan is empty);
    ``settle`` defaults to ten network delays after the later of the last
    send and the plan horizon, giving repair traffic time to finish.
    """
    if messages < 1:
        raise ConfigurationError(f"messages must be >= 1: {messages}")
    latency = scenario.params.latency_seconds
    if interval is None:
        if plan.horizon > 0.0 and messages > 1:
            interval = plan.horizon / (messages - 1)
        else:
            interval = 5 * latency
    if settle is None:
        settle = 10 * latency
    ordered_phases = validate_phases(phases)

    driver = SimFaultDriver(scenario, plan)
    driver.install()
    engine = scenario.engine
    rng = scenario._rng  # the harness stream, exactly like paced broadcasts
    start = engine.now
    sends: list[tuple[float, object]] = []
    for index in range(messages):
        engine.run_until(start + index * interval)
        origin = rng.choice(scenario.alive_ids())
        sends.append(
            (index * interval, scenario.broadcast_layer(origin).broadcast(None))
        )
    tail = max((messages - 1) * interval, plan.horizon) + settle
    engine.run_until(start + tail)
    scenario.drain()

    population = frozenset(scenario.alive_ids())
    records = []
    for sent_at, message_id in sends:
        summary = scenario.tracker.finalize(message_id, population)
        records.append((sent_at, summary))

    phase_rows = []
    for phase in ordered_phases:
        window = [summary for sent_at, summary in records if phase.contains(sent_at)]
        phase_rows.append(
            {
                "phase": phase.name,
                "start": phase.start,
                "end": phase.end,
                "messages": len(window),
                "average": (
                    sum(s.reliability for s in window) / len(window) if window else None
                ),
                "min": min((s.reliability for s in window), default=None),
                "atomic": (
                    sum(1 for s in window if s.reliability == 1.0) / len(window)
                    if window
                    else None
                ),
            }
        )

    series = [summary.reliability for _sent_at, summary in records]
    stats = scenario.network.stats
    snapshot = scenario.snapshot()
    # Ack/retransmit counters, summed over the live population — present
    # only for broadcast layers that expose them (the reliable stacks),
    # so every pre-existing scenario's artifact stays byte-identical.
    reliable_totals: Optional[dict] = None
    for node_id in population:
        layer_stats = getattr(scenario.broadcast_layer(node_id), "reliability_stats", None)
        if layer_stats is None:
            break
        if reliable_totals is None:
            reliable_totals = {}
        for key, value in layer_stats().items():
            reliable_totals[key] = reliable_totals.get(key, 0) + value
    result = {
        "protocol": scenario.protocol,
        "n": scenario.params.n,
        "messages": messages,
        "interval": interval,
        "plan": plan.describe(),
        "series": series,
        "send_times": [sent_at for sent_at, _summary in records],
        "average": sum(series) / len(series),
        "phases": phase_rows,
        "fault_stats": {
            "dropped_fault": stats.dropped_fault,
            "duplicated_fault": stats.duplicated_fault,
            "dropped_adversary": stats.dropped_adversary,
            "send_failures": stats.send_failures,
            "dropped_dead": stats.dropped_dead,
        },
        "final": {
            "alive": len(population),
            "largest_component": snapshot.largest_component_fraction(),
            "symmetry": snapshot.symmetry_fraction(),
        },
        "applied": [description for _at, description in driver.applied],
    }
    if reliable_totals is not None:
        result["reliable"] = reliable_totals
    return result


__all__ = ["measure_fault_plan"]
