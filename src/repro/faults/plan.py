"""Declarative fault plans: one timeline, two execution substrates.

A :class:`FaultPlan` is an ordered set of fault *events* on a relative
timeline (seconds from plan start).  The same plan runs against both
deployment substrates:

* the discrete-event simulator — :class:`~repro.faults.sim.SimFaultDriver`
  compiles events onto the :class:`~repro.sim.engine.Engine` /
  :class:`~repro.sim.network.Network`;
* the asyncio TCP runtime — :class:`~repro.faults.chaos.ChaosController`
  replays the same events against a
  :class:`~repro.runtime.cluster.LocalCluster` over loopback sockets.

Events name *populations* (fractions, counts, group weights), never
concrete node identities: victim selection happens at apply time from a
seeded RNG owned by the driver, so a plan is portable across system sizes
and substrates while staying fully deterministic for a given seed.

The vocabulary:

========================  ====================================================
:class:`PartitionEvent`   split the network into weighted groups, optionally
                          healing later and re-joining a few nodes across the
                          former cut (operator-assisted remerge)
:class:`DegradeEvent`     per-link degradation window: loss, extra latency
                          (WAN jitter), duplication, on a stable link subset
:class:`CrashEvent`       crash a fraction/count of the live population
:class:`RestartEvent`     restart a fraction/count of the dead population as
                          fresh processes that re-join (``fraction=1.0`` at a
                          single instant is a flash crowd)
:class:`AdversaryEvent`   turn a fraction of live nodes into misbehaving
                          peers that silently ignore selected message types
                          (e.g. SHUFFLE / FORWARDJOIN), optionally recovering
:class:`MutationEvent`    turn live nodes into Byzantine *senders* that
                          corrupt outgoing payloads of selected message
                          types; ``equivocate=True`` sends a *different*
                          corrupted payload to each destination (the JSON
                          kind ``"equivocation"`` is this with the flag on)
:class:`CollusionEvent`   recruit a coordinated adversary *set* whose
                          members drop and/or mutate selected traffic from
                          and to outsiders while sparing fellow colluders
========================  ====================================================

An **empty plan is a strict no-op**: drivers install nothing, draw no
randomness, and leave every artifact byte-identical to an unfaulted run —
asserted by the fault-injection test suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..common.errors import ConfigurationError


def _check_at(at: float) -> None:
    if at < 0:
        raise ConfigurationError(f"fault event time must be >= 0: {at}")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base class: one fault on the plan's relative timeline."""

    #: seconds from plan start at which the fault applies.
    at: float

    def __post_init__(self) -> None:
        _check_at(self.at)

    @property
    def end(self) -> float:
        """When the event's effect is over (equals ``at`` for instants)."""
        return self.at

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.at:g}"


@dataclass(frozen=True, slots=True)
class PartitionEvent(FaultEvent):
    """Split the network into groups proportional to ``weights``.

    ``heal_at`` (absolute plan time) removes the cut; ``rejoin`` nodes then
    re-issue JOINs through random live contacts — the operator-assisted
    remerge real deployments perform after a partition, without which two
    healed HyParView components never find each other again.
    """

    weights: tuple[float, ...] = (0.5, 0.5)
    heal_at: Optional[float] = None
    rejoin: int = 0

    def __post_init__(self) -> None:
        _check_at(self.at)
        if len(self.weights) < 2 or any(w <= 0 for w in self.weights):
            raise ConfigurationError(
                f"partition needs >= 2 positive group weights: {self.weights}"
            )
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ConfigurationError(
                f"heal_at must follow the partition: {self.heal_at} <= {self.at}"
            )
        if self.rejoin < 0:
            raise ConfigurationError(f"rejoin must be >= 0: {self.rejoin}")
        if self.rejoin and self.heal_at is None:
            raise ConfigurationError("rejoin requires heal_at")

    @property
    def end(self) -> float:
        return self.heal_at if self.heal_at is not None else self.at

    def describe(self) -> str:
        healed = f" heal@{self.heal_at:g}" if self.heal_at is not None else ""
        return f"partition{list(self.weights)}@{self.at:g}{healed}"


@dataclass(frozen=True, slots=True)
class DegradeEvent(FaultEvent):
    """Degrade matching links from ``at`` until ``until``.

    Field semantics match :class:`~repro.sim.network.LinkFaultRule`: loss
    drops datagrams and delays reliable sends by ``retransmit_delay`` (TCP
    masks loss as latency), ``jitter=(low, high)`` adds uniform extra
    latency, ``duplicate_rate`` re-posts datagram copies, and
    ``link_fraction`` picks a stable subset of directed links.
    """

    until: float = 0.0
    loss_rate: float = 0.0
    jitter: tuple[float, float] = (0.0, 0.0)
    duplicate_rate: float = 0.0
    retransmit_delay: float = 0.05
    link_fraction: float = 1.0

    def __post_init__(self) -> None:
        _check_at(self.at)
        if self.until <= self.at:
            raise ConfigurationError(
                f"degradation window must be non-empty: until {self.until} "
                f"<= at {self.at}"
            )

    @property
    def end(self) -> float:
        return self.until

    def describe(self) -> str:
        parts = []
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate:g}")
        if self.jitter[1]:
            parts.append(f"jitter={self.jitter[0]:g}..{self.jitter[1]:g}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.link_fraction < 1.0:
            parts.append(f"links={self.link_fraction:g}")
        return f"degrade[{','.join(parts)}]@{self.at:g}..{self.until:g}"


def _check_population(fraction: Optional[float], count: Optional[int]) -> None:
    if (fraction is None) == (count is None):
        raise ConfigurationError("specify exactly one of fraction / count")
    if fraction is not None and not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1]: {fraction}")
    if count is not None and count < 1:
        raise ConfigurationError(f"count must be >= 1: {count}")


@dataclass(frozen=True, slots=True)
class CrashEvent(FaultEvent):
    """Crash a random ``fraction`` (of live nodes) or fixed ``count``."""

    fraction: Optional[float] = None
    count: Optional[int] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_population(self.fraction, self.count)

    def describe(self) -> str:
        amount = f"{self.fraction:.0%}" if self.fraction is not None else str(self.count)
        return f"crash {amount}@{self.at:g}"


@dataclass(frozen=True, slots=True)
class RestartEvent(FaultEvent):
    """Restart a random ``fraction`` (of dead nodes) or fixed ``count``.

    Restarted nodes come back as fresh processes and re-join through random
    live contacts.  All restarts of one event are issued at the same
    instant without draining between them — ``fraction=1.0`` is a flash
    crowd of concurrent joins.
    """

    fraction: Optional[float] = None
    count: Optional[int] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_population(self.fraction, self.count)

    def describe(self) -> str:
        amount = f"{self.fraction:.0%}" if self.fraction is not None else str(self.count)
        return f"restart {amount}@{self.at:g}"


@dataclass(frozen=True, slots=True)
class AdversaryEvent(FaultEvent):
    """Turn live nodes into silent droppers of selected message types.

    The selected nodes stay alive and reachable but ignore every incoming
    message whose type name is in ``drop_types`` — by default the HyParView
    repair vocabulary (SHUFFLE and FORWARDJOIN traffic), the misbehaving
    peer the failure detector cannot see.  ``until`` restores honesty.
    """

    fraction: Optional[float] = None
    count: Optional[int] = None
    drop_types: tuple[str, ...] = ("Shuffle", "ShuffleReply", "ForwardJoin")
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_population(self.fraction, self.count)
        if not self.drop_types:
            raise ConfigurationError("adversary needs at least one message type")
        if self.until is not None and self.until <= self.at:
            raise ConfigurationError(
                f"adversary window must be non-empty: until {self.until} "
                f"<= at {self.at}"
            )

    @property
    def end(self) -> float:
        return self.until if self.until is not None else self.at

    def describe(self) -> str:
        amount = f"{self.fraction:.0%}" if self.fraction is not None else str(self.count)
        return f"adversary {amount} drop{list(self.drop_types)}@{self.at:g}"


#: Message types the Byzantine sender events corrupt by default: the
#: payload-bearing gossip frame plus every BRB phase frame that carries a
#: value or a vote.  Types an overlay never speaks are inert.
DEFAULT_MUTATION_TYPES = ("GossipData", "BRBSend", "BRBEcho", "BRBReady")


def _check_rate(rate: float) -> None:
    if not 0.0 < rate <= 1.0:
        raise ConfigurationError(f"rate must be in (0, 1]: {rate}")


def _check_until(at: float, until: Optional[float], what: str) -> None:
    if until is not None and until <= at:
        raise ConfigurationError(
            f"{what} window must be non-empty: until {until} <= at {at}"
        )


@dataclass(frozen=True, slots=True)
class MutationEvent(FaultEvent):
    """Turn live nodes into Byzantine senders that corrupt payloads.

    Selected nodes stay alive, receive and route normally, but every
    outgoing message whose type name is in ``target_types`` leaves with a
    corrupted payload (or vote digest).  Plain mutation corrupts
    *consistently* — every recipient of one ``(sender, message)`` pair
    sees the same wrong value; ``equivocate=True`` is the stronger
    Byzantine behaviour of sending a *different* value to each peer for
    the same :class:`~repro.common.ids.MessageId`.  ``rate`` corrupts
    only that fraction of matching sends; ``until`` restores honesty.
    Sender-side payload corruption only exists on the simulator substrate
    (the live runtime's codec owns its frames end-to-end).
    """

    fraction: Optional[float] = None
    count: Optional[int] = None
    target_types: tuple[str, ...] = DEFAULT_MUTATION_TYPES
    rate: float = 1.0
    equivocate: bool = False
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_population(self.fraction, self.count)
        if not self.target_types:
            raise ConfigurationError("mutation needs at least one message type")
        _check_rate(self.rate)
        _check_until(self.at, self.until, "mutation")

    @property
    def end(self) -> float:
        return self.until if self.until is not None else self.at

    def describe(self) -> str:
        amount = f"{self.fraction:.0%}" if self.fraction is not None else str(self.count)
        verb = "equivocate" if self.equivocate else "mutate"
        return f"{verb} {amount} on{list(self.target_types)}@{self.at:g}"


@dataclass(frozen=True, slots=True)
class CollusionEvent(FaultEvent):
    """Recruit a coordinated adversary *set*.

    The colluders act as one: they silently drop incoming ``drop_types``
    traffic from outsiders, corrupt outgoing ``mutate_types`` payloads
    sent to outsiders, and always spare fellow colluders — so the
    adversary set keeps perfect mutual state while sabotaging everyone
    else.  At least one of the two behaviours must be named.  The drop
    dimension runs on both substrates; mutation is simulator-only (see
    :class:`MutationEvent`).
    """

    fraction: Optional[float] = None
    count: Optional[int] = None
    drop_types: tuple[str, ...] = ()
    mutate_types: tuple[str, ...] = ()
    rate: float = 1.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_population(self.fraction, self.count)
        if not self.drop_types and not self.mutate_types:
            raise ConfigurationError(
                "collusion needs drop_types and/or mutate_types"
            )
        _check_rate(self.rate)
        _check_until(self.at, self.until, "collusion")

    @property
    def end(self) -> float:
        return self.until if self.until is not None else self.at

    def describe(self) -> str:
        amount = f"{self.fraction:.0%}" if self.fraction is not None else str(self.count)
        parts = []
        if self.drop_types:
            parts.append(f"drop{list(self.drop_types)}")
        if self.mutate_types:
            parts.append(f"mutate{list(self.mutate_types)}")
        return f"collude {amount} {'+'.join(parts)}@{self.at:g}"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, ordered timeline of fault events.

    ``events`` are sorted by ``at`` (ties keep construction order, which
    both drivers preserve).  ``horizon`` is the end of the last effect —
    measurement drivers keep the message stream running at least that long.
    """

    events: tuple[FaultEvent, ...] = ()
    #: label mixed into victim-selection seeding so two plans in one run
    #: draw independent choices.
    label: str = "faults"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda event: event.at))
        object.__setattr__(self, "events", ordered)

    @property
    def horizon(self) -> float:
        return max((event.end for event in self.events), default=0.0)

    @property
    def min_population(self) -> int:
        """The smallest system the plan makes sense against.

        Count-based events name that many concrete victims; a partition
        needs one node per group.  Fractions scale with any population and
        ``rejoin`` is "up to that many" (it samples from whoever is alive),
        so neither raises the floor.
        """
        floor = 0
        for event in self.events:
            if isinstance(event, PartitionEvent):
                floor = max(floor, len(event.weights))
            count = getattr(event, "count", None)
            if count is not None:
                floor = max(floor, count)
        return floor

    def validate_for(self, size: int) -> None:
        """Reject the plan against a ``size``-node deployment up front.

        Without this the mismatch surfaces only at apply time, deep inside
        a driver's victim sampling, long after the cluster was built.
        """
        needed = self.min_population
        if size < needed:
            offenders = [
                event.describe()
                for event in self.events
                if (
                    isinstance(event, PartitionEvent)
                    and len(event.weights) > size
                )
                or (getattr(event, "count", None) or 0) > size
            ]
            raise ConfigurationError(
                f"plan {self.label!r} references {needed} nodes but the "
                f"deployment has {size}; offending events: {offenders}"
            )

    def __bool__(self) -> bool:
        return bool(self.events)

    def describe(self) -> list[str]:
        """One human/JSON-friendly line per event, in timeline order."""
        return [event.describe() for event in self.events]

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "FaultPlan":
        return FaultPlan()

    @staticmethod
    def churn_trace(
        trace: Iterable[tuple[float, str, int]], *, label: str = "churn-trace"
    ) -> "FaultPlan":
        """A plan replaying ``(at, action, count)`` churn records.

        ``action`` is ``"crash"`` or ``"restart"``; the trace is the
        portable artifact (derivable from logs of a real deployment), the
        concrete victims are chosen at apply time from the driver's seed.
        """
        events: list[FaultEvent] = []
        for at, action, count in trace:
            if action == "crash":
                events.append(CrashEvent(at=at, count=count))
            elif action == "restart":
                events.append(RestartEvent(at=at, count=count))
            else:
                raise ConfigurationError(
                    f"unknown churn-trace action {action!r} "
                    f"(expected 'crash' or 'restart')"
                )
        return FaultPlan(events=tuple(events), label=label)

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        """Build a plan from its JSON form (see ``plan_from_file``).

        Shape: ``{"label": str, "events": [{"kind": "crash", "at": 1.0,
        ...}, ...]}`` where ``kind`` selects the event class and the
        remaining keys are its constructor fields.  List-valued fields
        (``weights``, ``jitter``, ``drop_types``) are accepted as JSON
        arrays.  Every validation error is a :class:`ConfigurationError`
        naming the offending event.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(f"plan must be a JSON object: {type(data).__name__}")
        kinds = {
            "partition": PartitionEvent,
            "degrade": DegradeEvent,
            "crash": CrashEvent,
            "restart": RestartEvent,
            "adversary": AdversaryEvent,
            "mutation": MutationEvent,
            # Equivocation is mutation with per-destination divergence
            # pre-selected; an explicit "equivocate" key still wins.
            "equivocation": MutationEvent,
            "collusion": CollusionEvent,
        }
        tuple_fields = ("weights", "jitter", "drop_types", "target_types", "mutate_types")
        events: list[FaultEvent] = []
        for index, entry in enumerate(data.get("events", ())):
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ConfigurationError(
                    f"plan event #{index} must be an object with a 'kind': {entry!r}"
                )
            fields = dict(entry)
            kind = fields.pop("kind")
            event_class = kinds.get(kind)
            if event_class is None:
                raise ConfigurationError(
                    f"plan event #{index}: unknown kind {kind!r}; "
                    f"expected one of {sorted(kinds)}"
                )
            for name in tuple_fields:
                if isinstance(fields.get(name), list):
                    fields[name] = tuple(fields[name])
            if kind == "equivocation":
                fields.setdefault("equivocate", True)
            try:
                events.append(event_class(**fields))
            except TypeError as error:
                raise ConfigurationError(
                    f"plan event #{index} ({kind}): {error}"
                ) from error
        return FaultPlan(events=tuple(events), label=str(data.get("label", "faults")))


@dataclass(frozen=True, slots=True)
class Phase:
    """A named window of the plan timeline, for per-phase metrics."""

    name: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"phase {self.name!r} must be non-empty: "
                f"[{self.start}, {self.end}]"
            )

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


def pick_count(fraction: Optional[float], count: Optional[int], population: int) -> int:
    """How many victims an event selects from ``population`` members.

    The single rounding rule both substrates share: drivers must never
    re-implement this, or sim and live would pick different victim counts
    for the same plan.
    """
    if fraction is not None:
        count = int(round(fraction * population))
    return min(count or 0, population)


def split_weighted(members: Sequence, weights: Sequence[float]) -> list[list]:
    """Split ``members`` (already shuffled by the caller) into groups
    proportional to ``weights``; the last group takes the remainder.

    Shared by :class:`~repro.faults.sim.SimFaultDriver` and
    :class:`~repro.faults.chaos.ChaosController` so a partition plan cuts
    both substrates identically (up to each driver's own shuffle).
    """
    total = sum(weights)
    groups: list[list] = []
    offset = 0
    for index, weight in enumerate(weights):
        if index == len(weights) - 1:
            groups.append(list(members[offset:]))
        else:
            size = int(round(len(members) * weight / total))
            groups.append(list(members[offset:offset + size]))
            offset += size
    return groups


def plan_from_file(path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (``FaultPlan.from_dict``
    shape); malformed JSON is a :class:`ConfigurationError`, not a crash."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"cannot read plan file {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"plan file {path} is not valid JSON: {error}") from error
    return FaultPlan.from_dict(data)


def validate_phases(phases: Sequence[Phase]) -> tuple[Phase, ...]:
    """Phases sorted by start; overlaps are rejected (metrics would double
    count messages)."""
    ordered = tuple(sorted(phases, key=lambda phase: phase.start))
    for previous, current in zip(ordered, ordered[1:]):
        if current.start < previous.end:
            raise ConfigurationError(
                f"phases overlap: {previous.name!r} ends at {previous.end}, "
                f"{current.name!r} starts at {current.start}"
            )
    return ordered


__all__ = [
    "AdversaryEvent",
    "CollusionEvent",
    "CrashEvent",
    "DEFAULT_MUTATION_TYPES",
    "DegradeEvent",
    "FaultEvent",
    "FaultPlan",
    "MutationEvent",
    "PartitionEvent",
    "Phase",
    "RestartEvent",
    "pick_count",
    "plan_from_file",
    "split_weighted",
    "validate_phases",
]
