"""Replay a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The :class:`ChaosController` is the runtime twin of
:class:`~repro.faults.sim.SimFaultDriver`: the same declarative plan, but
applied over wall-clock time to a loopback-TCP
:class:`~repro.runtime.cluster.LocalCluster` —

* partitions install outbound fault injectors on every node's transport
  ("fail" across the cut: sends report failure exactly like a TCP reset,
  probes refuse, so the failure detector and repair path run for real);
* degradation windows drop/delay frames probabilistically (lossy, jittery
  links);
* crashes call :meth:`RuntimeNode.crash` (abrupt socket resets);
* restarts spawn fresh processes that re-join through live contacts;
* adversaries set :attr:`RuntimeNode.drop_message_types`.

``time_scale`` maps plan seconds to wall seconds (sim plans are written
against a 10 ms network delay; loopback TCP is faster, so live runs
usually stretch the timeline, e.g. ``time_scale=2.0``).  The controller
is for integration tests and the ``repro chaos`` demo — it makes no
determinism promises (real sockets, real clocks), only vocabulary parity.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional, Sequence

from ..common.errors import ConfigurationError
from ..common.ids import MessageId, NodeId
from ..metrics.latency import LatencyHistogram
from ..runtime.cluster import LocalCluster
from .plan import (
    AdversaryEvent,
    CollusionEvent,
    CrashEvent,
    DegradeEvent,
    FaultEvent,
    FaultPlan,
    MutationEvent,
    PartitionEvent,
    Phase,
    RestartEvent,
    pick_count,
    split_weighted,
    validate_phases,
)


def reject_simulator_only(plan: FaultPlan) -> None:
    """Reject plan events the live substrate cannot honour.

    Payload corruption is simulator-only: the runtime codec owns its
    frames end-to-end, so a mutation/equivocation plan against live
    sockets would silently test nothing.  Raises the same structured
    :class:`ConfigurationError` the CLI turns into exit 2, so callers can
    refuse *before* a single socket is opened.  (Drop-based collusion is
    fine — it compiles to ``drop_message_types`` like an adversary.)
    """
    unsupported = [
        event.describe()
        for event in plan.events
        if isinstance(event, MutationEvent)
        or (isinstance(event, CollusionEvent) and event.mutate_types)
    ]
    if unsupported:
        raise ConfigurationError(
            f"plan {plan.label!r} uses payload mutation/equivocation, "
            f"which only the simulator substrate supports (live "
            f"collusion is drop-only); offending events: {unsupported}"
        )


class _DegradeWindow:
    """One active live degradation (wall-clock bounded)."""

    __slots__ = ("until", "event")

    def __init__(self, until: float, event: DegradeEvent) -> None:
        self.until = until
        self.event = event


class ChaosController:
    """Drives one fault plan against one :class:`LocalCluster`."""

    def __init__(
        self,
        cluster: LocalCluster,
        plan: FaultPlan,
        *,
        time_scale: float = 1.0,
        seed: int = 0,
        phases: Sequence[Phase] = (),
        restart_reuse_port: bool = False,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(f"time_scale must be positive: {time_scale}")
        # Fail here, at construction, when the plan names more nodes than
        # the cluster has — not at apply time inside victim sampling.
        plan.validate_for(len(cluster.nodes))
        reject_simulator_only(plan)
        self.cluster = cluster
        self.plan = plan
        self.time_scale = time_scale
        self.phases = validate_phases(phases)
        self.restart_reuse_port = restart_reuse_port
        self._rng = random.Random(seed)
        #: message id -> (publish wall time, publish plan time); fed by
        #: :meth:`mark_publish`, read by :meth:`latency_report`.
        self._publishes: dict[MessageId, tuple[float, float]] = {}
        self._run_start: Optional[float] = None
        #: (plan time, description) per applied effect, in order.
        self.applied: list[tuple[float, str]] = []
        self._partition: Optional[dict[NodeId, int]] = None
        self._degradations: list[_DegradeWindow] = []
        #: id(event) -> the RuntimeNodes that event corrupted, so going
        #: honest only reverts that event's victims (concurrent adversary
        #: windows stay independent, matching the sim driver).
        self._adversary_victims: dict[int, list] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Apply the whole plan; returns when the last effect has fired.

        Injectors are installed up front on every node (and on every node
        the controller restarts), so the verdict function sees partitions
        and degradation windows as they come and go.
        """
        self._loop = asyncio.get_running_loop()
        for node in self.cluster.alive_nodes():
            self._install(node)
        start = self._loop.time()
        self._run_start = start
        for at, apply in self._timeline():
            delay = start + at * self.time_scale - self._loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await apply()

    def _timeline(self):
        """The plan expanded to (plan-time, coroutine factory) steps,
        including the implicit heal / go-honest follow-ups."""
        steps: list[tuple[float, int, object]] = []
        for order, event in enumerate(self.plan.events):
            steps.append((event.at, order, (self._apply, event)))
            if isinstance(event, PartitionEvent) and event.heal_at is not None:
                steps.append((event.heal_at, order, (self._heal, event)))
            if (
                isinstance(event, (AdversaryEvent, CollusionEvent))
                and event.until is not None
            ):
                steps.append((event.until, order, (self._honest, event)))
        steps.sort(key=lambda step: (step[0], step[1]))
        for at, _order, (method, event) in steps:
            yield at, (lambda method=method, event=event: method(event))

    # ------------------------------------------------------------------
    # Verdicts (transport fault injectors)
    # ------------------------------------------------------------------
    def _install(self, node) -> None:
        local = node.node_id
        node.transport.fault_injector = (
            lambda dst, message, local=local: self._verdict(local, dst)
        )

    def _verdict(self, src: NodeId, dst: NodeId) -> object:
        partition = self._partition
        if partition is not None and partition.get(src, -1) != partition.get(dst, -1):
            return "fail"
        if self._degradations:
            now = self._loop.time() if self._loop is not None else 0.0
            self._degradations = [w for w in self._degradations if now < w.until]
            delay = 0.0
            for window in self._degradations:
                event = window.event
                if event.loss_rate and self._rng.random() < event.loss_rate:
                    return "drop"
                if event.jitter[1] > 0.0:
                    delay += self._rng.uniform(*event.jitter) * self.time_scale
            if delay > 0.0:
                return delay
        return None

    def _note(self, at: float, description: str) -> None:
        self.applied.append((at, description))

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    async def _apply(self, event: FaultEvent) -> None:
        if isinstance(event, PartitionEvent):
            alive = self.cluster.alive_nodes()
            members = [node.node_id for node in alive]
            self._rng.shuffle(members)
            mapping: dict[NodeId, int] = {}
            for index, group in enumerate(split_weighted(members, event.weights)):
                for node_id in group:
                    mapping[node_id] = index
            self._partition = mapping
            self._note(event.at, event.describe())
        elif isinstance(event, DegradeEvent):
            until = (
                self._loop.time()
                + (event.until - event.at) * self.time_scale
            )
            self._degradations.append(_DegradeWindow(until, event))
            self._note(event.at, event.describe())
        elif isinstance(event, CrashEvent):
            alive = self.cluster.alive_nodes()
            count = self._amount(event.fraction, event.count, len(alive))
            count = min(count, max(0, len(alive) - 2))  # keep a quorum alive
            victims = self._rng.sample(alive, count) if count else []
            for node in victims:
                await node.crash()
            self._note(event.at, f"{event.describe()} -> {len(victims)} crashed")
        elif isinstance(event, RestartEvent):
            dead = [
                index
                for index, node in enumerate(self.cluster.nodes)
                if not node.started
            ]
            count = self._amount(event.fraction, event.count, len(dead))
            victims = self._rng.sample(dead, count) if count else []
            for index in victims:
                node = await self.cluster.restart_node(
                    index, reuse_port=self.restart_reuse_port
                )
                self._install(node)
            self._note(event.at, f"{event.describe()} -> {len(victims)} restarted")
        elif isinstance(event, AdversaryEvent):
            alive = self.cluster.alive_nodes()
            count = self._amount(event.fraction, event.count, len(alive))
            victims = self._rng.sample(alive, count) if count else []
            for node in victims:
                node.drop_message_types |= set(event.drop_types)
            self._adversary_victims[id(event)] = victims
            self._note(event.at, f"{event.describe()} -> {len(victims)} adversarial")
        elif isinstance(event, CollusionEvent):
            # Live collusion is drop-only (the constructor rejected any
            # mutate_types) and blanket: RuntimeNode's drop filter has no
            # per-sender sparing, so colluders drop from everyone — a
            # strictly harsher adversary than the sim's spared variant.
            alive = self.cluster.alive_nodes()
            count = self._amount(event.fraction, event.count, len(alive))
            victims = self._rng.sample(alive, count) if count else []
            for node in victims:
                node.drop_message_types |= set(event.drop_types)
            self._adversary_victims[id(event)] = victims
            self._note(event.at, f"{event.describe()} -> {len(victims)} colluding")
        else:  # pragma: no cover - vocabulary guard
            raise ConfigurationError(f"unknown fault event: {event!r}")

    async def _heal(self, event: PartitionEvent) -> None:
        self._partition = None
        self._note(event.heal_at, f"heal@{event.heal_at:g}")
        if event.rejoin:
            alive = self.cluster.alive_nodes()
            movers = self._rng.sample(alive, min(event.rejoin, len(alive)))
            for node in movers:
                contacts = [peer for peer in alive if peer is not node]
                if contacts:
                    node.join(self._rng.choice(contacts).node_id)
            self._note(event.heal_at, f"rejoin {len(movers)}@{event.heal_at:g}")

    async def _honest(self, event: AdversaryEvent) -> None:
        # Only this event's victims revert; nodes corrupted by another,
        # still-open adversary window keep that window's drop set.
        victims = self._adversary_victims.pop(id(event), [])
        drops = set(event.drop_types)
        for node in victims:
            if node.started:
                node.drop_message_types -= drops
        self._note(event.until, f"adversary cleared@{event.until:g}")

    @staticmethod
    def _amount(fraction: Optional[float], count: Optional[int], population: int) -> int:
        return pick_count(fraction, count, population)

    # ------------------------------------------------------------------
    # Latency measurement (the live counterpart of measure_fault_plan)
    # ------------------------------------------------------------------
    def mark_publish(self, message_id: MessageId) -> None:
        """Stamp a just-published message for latency accounting.

        Call immediately after ``broadcast``/``publish``.  The stamp pins
        the message to a plan-time instant, so :meth:`latency_report` can
        bucket its deliveries into the plan's phases.
        """
        if self._loop is not None:
            now = self._loop.time()
        else:
            now = asyncio.get_running_loop().time()
        start = self._run_start if self._run_start is not None else now
        self._publishes[message_id] = (now, (now - start) / self.time_scale)

    def latency_report(self) -> dict:
        """Per-phase publish→deliver latency over the cluster's delivery log.

        Each marked message belongs to the phase containing its *publish*
        plan-time (deliveries of one message always count together, even
        when they land after the phase boundary).  Messages published
        outside every phase pool under ``"unphased"``.  Latency is wall
        time from the publish stamp to each node's delivery record.
        """
        phase_names = [phase.name for phase in self.phases]
        histograms = {name: LatencyHistogram() for name in phase_names}
        histograms["unphased"] = LatencyHistogram()
        publish_counts = {name: 0 for name in histograms}
        overall = LatencyHistogram()

        def phase_of(plan_time: float) -> str:
            for phase in self.phases:
                if phase.contains(plan_time):
                    return phase.name
            return "unphased"

        for wall, plan_time in self._publishes.values():
            publish_counts[phase_of(plan_time)] += 1
        for record in self.cluster.delivery_log.records:
            stamp = self._publishes.get(record.message_id)
            if stamp is None:
                continue
            wall, plan_time = stamp
            latency = record.at - wall
            histograms[phase_of(plan_time)].record(latency)
            overall.record(latency)

        rows = []
        for phase in self.phases:
            row = {
                "phase": phase.name,
                "start": phase.start,
                "end": phase.end,
                "publishes": publish_counts[phase.name],
            }
            row.update(histograms[phase.name].to_dict())
            rows.append(row)
        if publish_counts["unphased"] or not self.phases:
            row = {
                "phase": "unphased",
                "start": None,
                "end": None,
                "publishes": publish_counts["unphased"],
            }
            row.update(histograms["unphased"].to_dict())
            rows.append(row)
        report = {
            "schema": "repro-live-latency/1",
            "time_scale": self.time_scale,
            "plan": self.plan.describe(),
            "publishes": len(self._publishes),
            "phases": rows,
        }
        report.update(overall.to_dict())
        return report


__all__ = ["ChaosController"]
