"""Deterministic random-stream management.

Every stochastic decision in the library — gossip target selection, random
walks, shuffle sampling, failure injection — draws from a
:class:`random.Random` stream derived from a single root seed.  Runs are
therefore reproducible from ``(seed, configuration)`` alone, which the
experiment harness relies on when comparing protocols on identical
failure patterns.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

from .ids import NodeId

T = TypeVar("T")


class SeedSequence:
    """Derives independent child streams from a root seed.

    Child streams are derived by hashing the root seed with a label, so the
    stream a node receives does not depend on the order in which other
    streams were created.  That keeps simulations comparable when a scenario
    adds instrumentation that draws extra streams.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = root_seed

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def derive_seed(self, label: str) -> int:
        """A 64-bit integer seed derived from the root seed and ``label``.

        This is the splitting primitive the experiment orchestrator uses to
        hand each replicate its own root seed: derivation depends only on
        ``(root_seed, label)``, never on process identity or call order, so
        replicates executed in parallel worker processes receive exactly
        the seeds they would have received serially.
        """
        # Built-in hash() is salted per process, so derive the child seed
        # with a stable cryptographic hash instead.
        digest = hashlib.sha256(f"{self._root_seed}/{label}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def spawn(self, label: str) -> "SeedSequence":
        """An independent child sequence rooted at ``derive_seed(label)``.

        Children of different labels (and their own descendants) never
        collide, which lets a sweep give every (scenario, replicate) cell a
        private seed universe.
        """
        return SeedSequence(self.derive_seed(label))

    def stream(self, label: str) -> random.Random:
        """A named child stream; the same label always yields the same
        stream for a given root seed."""
        return random.Random(self.derive_seed(label))

    def node_stream(self, node: NodeId, purpose: str = "protocol") -> random.Random:
        """The stream a specific node uses for a specific purpose."""
        return self.stream(f"{purpose}/{node.host}:{node.port}")


def sample_up_to(rng: random.Random, population: Sequence[T], k: int) -> list[T]:
    """Sample ``min(k, len(population))`` distinct elements.

    The paper's shuffle primitives say "at most" ``ka``/``kp`` elements
    (Section 5.1); this helper encodes that without the caller branching on
    the population size.
    """
    if k <= 0:
        return []
    if k >= len(population):
        shuffled = list(population)
        rng.shuffle(shuffled)
        return shuffled
    return rng.sample(list(population), k)


def choice_or_none(rng: random.Random, population: Sequence[T]) -> T | None:
    """Uniform choice, or ``None`` when the population is empty."""
    if not population:
        return None
    return rng.choice(list(population))
