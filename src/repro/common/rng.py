"""Deterministic random-stream management.

Every stochastic decision in the library — gossip target selection, random
walks, shuffle sampling, failure injection — draws from a
:class:`random.Random` stream derived from a single root seed.  Runs are
therefore reproducible from ``(seed, configuration)`` alone, which the
experiment harness relies on when comparing protocols on identical
failure patterns.

Streams are :class:`StreamRandom` instances: Mersenne-Twister generators
that *count the 32-bit words they consume* and pickle as the two-integer
pair ``(seed, words_consumed)`` instead of the full 624-word MT state
(~2.5 KB per stream).  A scenario snapshot therefore carries ~60 bytes per
stream, and a rehydrated stream lazily fast-forwards to the exact same
state on its first draw — same state, same future draws, byte-identical
experiment results.  This is what keeps ``Scenario.freeze()`` blobs small
at paper scale (three streams per node × 10 000 nodes used to dominate
the snapshot cache).

The counting is exact because MT19937 is a stream of 32-bit words and
every public drawing method of :class:`random.Random` funnels through the
two primitives this class overrides: ``random()`` consumes exactly two
words and ``getrandbits(k)`` consumes ``ceil(k / 32)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

from .ids import NodeId

T = TypeVar("T")


def _replay_stream(seed: int, words: int) -> "StreamRandom":
    """Unpickling hook: rebuild a stream as (seed, fast-forward distance).

    The fast-forward itself is deferred to the stream's first draw, so
    thawing a snapshot never pays for streams the measurement phase does
    not touch (most of them: failed nodes, flood layers with no random
    choices, ...).
    """
    stream = StreamRandom(seed)
    if words:
        stream._words = words
        stream._pending_words = words
    return stream


class StreamRandom(random.Random):
    """A seeded MT19937 stream that knows how far it has advanced.

    ``_words`` counts 32-bit words consumed since seeding; pickling emits
    ``(seed, _words)`` via :func:`_replay_stream` instead of the full
    generator state.  All distribution methods inherited from
    :class:`random.Random` are Python-level and draw exclusively through
    ``random()`` / ``getrandbits()``, so the count is exact and a replayed
    stream continues with bit-identical draws.
    """

    def __init__(self, seed_value: int) -> None:
        self._seed_value = seed_value
        self._words = 0
        self._pending_words = 0
        super().__init__(seed_value)

    # -- counted primitives -------------------------------------------
    def random(self) -> float:
        if self._pending_words:
            self._materialize()
        self._words += 2
        return super().random()

    def getrandbits(self, k: int) -> int:
        if self._pending_words:
            self._materialize()
        self._words += (k + 31) >> 5
        return super().getrandbits(k)

    def seed(self, a=None, version: int = 2) -> None:
        # Re-seeding restarts the stream: the word count restarts with it.
        # An OS-entropy seed (None) could never be replayed, so it is
        # rejected rather than silently breaking snapshot determinism.
        if a is None:
            raise ValueError(
                "StreamRandom requires an explicit seed: an OS-entropy "
                "stream cannot be replayed from a frozen snapshot"
            )
        self._seed_value = a
        self._words = 0
        self._pending_words = 0
        super().seed(a, version)

    def setstate(self, state) -> None:
        raise NotImplementedError(
            "StreamRandom cannot restore raw generator state: the word "
            "count would desynchronise and frozen snapshots would replay "
            "a different stream.  Re-seed instead."
        )

    def gauss(self, mu=0.0, sigma=1.0):
        # random.Random.gauss caches a second variate on the instance
        # (gauss_next), which the (seed, words) encoding cannot capture —
        # a thawed stream would silently diverge.  normalvariate draws
        # the same distribution statelessly.
        raise NotImplementedError(
            "StreamRandom does not support gauss(): its hidden cached "
            "variate is invisible to the compact snapshot encoding; use "
            "normalvariate(), which is stateless and counted exactly"
        )

    # -- compact pickling ---------------------------------------------
    def __reduce__(self):
        return _replay_stream, (self._seed_value, self._words)

    def getstate(self):
        if self._pending_words:
            self._materialize()
        return super().getstate()

    def _materialize(self) -> None:
        """Fast-forward a freshly unpickled stream to its recorded offset.

        MT19937 state is a pure function of (seed, words consumed), so
        advancing a newly seeded generator by ``_pending_words`` words
        reproduces the frozen state exactly.  ``random()`` consumes two
        words per call, which makes it the fastest C-level way to skip.
        """
        words = self._pending_words
        self._pending_words = 0
        skip_pair = random.Random.random
        for _ in range(words >> 1):
            skip_pair(self)
        if words & 1:
            random.Random.getrandbits(self, 32)

    @property
    def words_consumed(self) -> int:
        """32-bit MT words drawn since seeding (the fast-forward distance)."""
        return self._words


class SeedSequence:
    """Derives independent child streams from a root seed.

    Child streams are derived by hashing the root seed with a label, so the
    stream a node receives does not depend on the order in which other
    streams were created.  That keeps simulations comparable when a scenario
    adds instrumentation that draws extra streams.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = root_seed

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def derive_seed(self, label: str) -> int:
        """A 64-bit integer seed derived from the root seed and ``label``.

        This is the splitting primitive the experiment orchestrator uses to
        hand each replicate its own root seed: derivation depends only on
        ``(root_seed, label)``, never on process identity or call order, so
        replicates executed in parallel worker processes receive exactly
        the seeds they would have received serially.
        """
        # Built-in hash() is salted per process, so derive the child seed
        # with a stable cryptographic hash instead.
        digest = hashlib.sha256(f"{self._root_seed}/{label}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def spawn(self, label: str) -> "SeedSequence":
        """An independent child sequence rooted at ``derive_seed(label)``.

        Children of different labels (and their own descendants) never
        collide, which lets a sweep give every (scenario, replicate) cell a
        private seed universe.
        """
        return SeedSequence(self.derive_seed(label))

    def stream(self, label: str) -> StreamRandom:
        """A named child stream; the same label always yields the same
        stream for a given root seed.  Streams pickle compactly — see
        :class:`StreamRandom`."""
        return StreamRandom(self.derive_seed(label))

    def node_stream(self, node: NodeId, purpose: str = "protocol") -> StreamRandom:
        """The stream a specific node uses for a specific purpose."""
        return self.stream(f"{purpose}/{node.host}:{node.port}")


def sample_up_to(rng: random.Random, population: Sequence[T], k: int) -> list[T]:
    """Sample ``min(k, len(population))`` distinct elements.

    The paper's shuffle primitives say "at most" ``ka``/``kp`` elements
    (Section 5.1); this helper encodes that without the caller branching on
    the population size.
    """
    if k <= 0:
        return []
    if k >= len(population):
        shuffled = list(population)
        rng.shuffle(shuffled)
        return shuffled
    return rng.sample(list(population), k)


def choice_or_none(rng: random.Random, population: Sequence[T]) -> T | None:
    """Uniform choice, or ``None`` when the population is empty."""
    if not population:
        return None
    return rng.choice(list(population))
