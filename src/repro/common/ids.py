"""Node and message identifiers shared by every protocol in the library.

The paper (Section 2.1) models a node identifier as a ``(ip, port)`` tuple
that allows the node to be reached.  :class:`NodeId` follows that model
exactly; it is hashable, ordered and cheap to copy, so it can be stored in
views, sets and priority queues without ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Iterator


@dataclass(frozen=True, slots=True, order=True)
class NodeId:
    """A reachable node identity: ``(host, port)``.

    In simulations the host is synthetic (``"node-17"``); in the asyncio
    runtime it is a real address (``"127.0.0.1"``).  Equality and hashing
    are structural, so the same identity built twice compares equal.
    """

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.host}:{self.port}"

    def to_wire(self) -> list:
        """Serialise to a JSON-compatible list (used by the runtime codec)."""
        return [self.host, self.port]

    @classmethod
    def from_wire(cls, payload: list) -> "NodeId":
        """Inverse of :meth:`to_wire`."""
        host, port = payload
        return cls(str(host), int(port))


@dataclass(frozen=True, slots=True, order=True)
class MessageId:
    """Globally unique broadcast identifier: origin plus per-origin sequence.

    Gossip deduplication (Section 2.5 of the paper: a node forwards a message
    only the first time it receives it) keys on this identifier.
    """

    origin: NodeId
    sequence: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.origin}#{self.sequence}"

    def to_wire(self) -> list:
        return [self.origin.to_wire(), self.sequence]

    @classmethod
    def from_wire(cls, payload: list) -> "MessageId":
        origin, sequence = payload
        return cls(NodeId.from_wire(origin), int(sequence))


def simulated_node_ids(n: int, base_port: int = 10000) -> list[NodeId]:
    """Build ``n`` distinct synthetic identities for a simulated network."""
    if n < 0:
        raise ValueError(f"cannot create a negative number of node ids: {n}")
    return [NodeId(f"node-{i}", base_port + i) for i in range(n)]


class SequenceGenerator:
    """Per-origin monotonically increasing sequence numbers.

    Each broadcaster owns one generator so that :class:`MessageId` values it
    mints never collide, even across simulation restarts with the same seed.
    """

    def __init__(self, origin: NodeId, start: int = 0) -> None:
        self._origin = origin
        self._counter: Iterator[int] = count(start)

    @property
    def origin(self) -> NodeId:
        return self._origin

    def next_id(self) -> MessageId:
        """Mint the next unique :class:`MessageId` for this origin."""
        return MessageId(self._origin, next(self._counter))
