"""Message base class, registry and generic wire codec.

Every protocol message in the library is a frozen dataclass deriving from
:class:`Message`.  Registering the class with :func:`register_message` gives
it two things:

* **dispatch** — simulated nodes and the asyncio runtime route incoming
  messages to protocol handlers by message type;
* **a wire format** — the runtime serialises messages to JSON lines using
  the dataclass fields, with :class:`~repro.common.ids.NodeId` and
  :class:`~repro.common.ids.MessageId` values tagged so they round-trip.

The simulator never serialises messages (objects are passed by reference,
which keeps the event loop fast); only the asyncio runtime pays the codec
cost.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Type, TypeVar

from .errors import CodecError
from .ids import MessageId, NodeId

_NODE_TAG = "@node"
_MSGID_TAG = "@msgid"


class Message:
    """Base class for all protocol messages.

    Subclasses are frozen dataclasses; the sender, when a protocol needs it,
    is an explicit field (mirroring Algorithm 1 in the paper, where messages
    carry ``myself``).
    """

    __slots__ = ()


M = TypeVar("M", bound=Message)

_REGISTRY_BY_NAME: dict[str, Type[Message]] = {}
_REGISTRY_BY_TYPE: dict[Type[Message], str] = {}


def register_message(wire_name: str) -> Callable[[Type[M]], Type[M]]:
    """Class decorator registering a message type under ``wire_name``.

    Names must be unique across the whole library; a collision raises
    :class:`CodecError` at import time, which is the earliest possible
    failure point.
    """

    def decorator(cls: Type[M]) -> Type[M]:
        if wire_name in _REGISTRY_BY_NAME:
            raise CodecError(f"duplicate message wire name: {wire_name!r}")
        if not dataclasses.is_dataclass(cls):
            raise CodecError(f"{cls.__name__} must be a dataclass to be registered")
        if cls.__dictoffset__:
            # The simulator allocates millions of message instances per
            # figure; a per-instance __dict__ roughly doubles that memory
            # traffic.  Slots are an enforced invariant, not a convention:
            # declare messages with @dataclass(frozen=True, slots=True).
            raise CodecError(
                f"{cls.__name__} must use __slots__ (declare with "
                f"@dataclass(frozen=True, slots=True))"
            )
        _REGISTRY_BY_NAME[wire_name] = cls
        _REGISTRY_BY_TYPE[cls] = wire_name
        return cls

    return decorator


def wire_name_of(message: Message) -> str:
    """Return the registered wire name for a message instance."""
    try:
        return _REGISTRY_BY_TYPE[type(message)]
    except KeyError:
        raise CodecError(f"unregistered message type: {type(message).__name__}") from None


def registered_message_types() -> Iterable[Type[Message]]:
    """All message classes known to the registry (useful for tests)."""
    return tuple(_REGISTRY_BY_NAME.values())


def _encode_value(value: Any) -> Any:
    if isinstance(value, NodeId):
        return [_NODE_TAG, value.host, value.port]
    if isinstance(value, MessageId):
        return [_MSGID_TAG, value.origin.host, value.origin.port, value.sequence]
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict payload keys must be strings, got {key!r}")
            encoded[key] = _encode_value(item)
        return {"@dict": encoded}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise CodecError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        if len(value) == 3 and value[0] == _NODE_TAG:
            return NodeId(str(value[1]), int(value[2]))
        if len(value) == 4 and value[0] == _MSGID_TAG:
            return MessageId(NodeId(str(value[1]), int(value[2])), int(value[3]))
        # Message dataclasses declare their sequence fields as tuples (they
        # are frozen); decoding to tuples makes encode/decode a round trip.
        return tuple(_decode_value(item) for item in value)
    if isinstance(value, dict):
        inner = value.get("@dict")
        if isinstance(inner, dict):
            return {key: _decode_value(item) for key, item in inner.items()}
        raise CodecError(f"malformed dict payload: {value!r}")
    return value


def encode_message(message: Message) -> dict:
    """Encode a registered message into a JSON-compatible dict."""
    fields = {}
    for field in dataclasses.fields(message):
        fields[field.name] = _encode_value(getattr(message, field.name))
    return {"type": wire_name_of(message), "fields": fields}


def decode_message(payload: dict) -> Message:
    """Inverse of :func:`encode_message`.

    Raises :class:`CodecError` on unknown types or malformed payloads rather
    than letting a ``KeyError`` escape, so transport code can treat any
    :class:`CodecError` as a corrupt frame.
    """
    try:
        wire_name = payload["type"]
        raw_fields = payload["fields"]
    except (TypeError, KeyError) as exc:
        raise CodecError(f"malformed message payload: {payload!r}") from exc
    cls = _REGISTRY_BY_NAME.get(wire_name)
    if cls is None:
        raise CodecError(f"unknown message wire name: {wire_name!r}")
    decoded = {name: _decode_value(value) for name, value in raw_fields.items()}
    expected = {field.name for field in dataclasses.fields(cls)}
    if set(decoded) != expected:
        raise CodecError(
            f"field mismatch for {wire_name!r}: got {sorted(decoded)}, expected {sorted(expected)}"
        )
    # Registered messages use plain typed fields, so tuples arrive as lists;
    # the dataclasses involved accept sequences for their collection fields.
    try:
        return cls(**decoded)
    except TypeError as exc:
        raise CodecError(f"cannot construct {wire_name!r} from {decoded!r}") from exc
