"""Exception hierarchy for the library.

All library errors derive from :class:`ReproError` so callers can catch one
base class; subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A protocol or simulation was configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event engine was driven incorrectly (e.g. time ran
    backwards, or an event was scheduled after shutdown)."""


class UnknownNodeError(ReproError):
    """An operation referenced a node the network has never seen."""


class TransportError(ReproError):
    """A runtime transport failed in a way that is a bug, not a normal
    connection failure (normal failures are reported via callbacks)."""


class CodecError(ReproError):
    """A wire message could not be encoded or decoded."""


class ProtocolError(ReproError):
    """A protocol state machine received input that violates its contract."""


class ServiceError(ReproError):
    """The client-facing service layer rejected or failed an operation."""


class RateLimitedError(ServiceError):
    """A client exceeded its publish rate budget (token bucket empty)."""
