"""Sans-io interfaces that decouple protocol logic from its environment.

Every protocol in this library (HyParView, Cyclon, Scamp, the gossip layers)
is a state machine that only ever talks to these three abstractions:

* :class:`Clock` — read the current time and schedule callbacks;
* :class:`Transport` — send messages and probe connectivity;
* a seeded :class:`random.Random` stream.

The discrete-event simulator (:mod:`repro.sim`) and the asyncio runtime
(:mod:`repro.runtime`) both implement these interfaces, so the *identical*
protocol code runs in simulation and over real TCP sockets.  This is the
architectural move that lets the reproduction also cover the paper's future
work item of a deployable implementation.

One more interface faces the *harness* rather than the protocols:
:class:`Kernel` is the event-scheduling surface a simulation consumes —
the single-process bucket-queue :class:`~repro.sim.engine.Engine` and the
space-partitioned :class:`~repro.sim.sharded.ShardedEngine` both provide
it, which is what lets one ``Scenario`` run on either.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from .ids import NodeId
from .messages import Message

#: Callback invoked when a reliable send could not be delivered.  Receives
#: the unreachable peer and the message that failed.  This is the "TCP as a
#: failure detector" signal from the paper (Section 1, point iii).
FailureCallback = Callable[[NodeId, Message], None]

#: Callback invoked with the outcome of a connection probe: the peer and
#: ``True`` when a connection could be established.
ProbeCallback = Callable[[NodeId, bool], None]


class TimerHandle(ABC):
    """A cancellable handle returned by :meth:`Clock.schedule`."""

    __slots__ = ()

    @abstractmethod
    def cancel(self) -> None:
        """Cancel the timer; a no-op if it already fired or was cancelled."""

    @property
    @abstractmethod
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the timer fired."""


class Clock(ABC):
    """Time source and timer scheduler seen by a protocol instance."""

    __slots__ = ()

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock)."""

    @abstractmethod
    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds; returns a cancellable
        handle.  ``delay`` may be zero (run as soon as possible)."""


class Kernel(ABC):
    """The event-scheduling surface a simulation consumes.

    This is the seam between "what schedules events" and "what consumes
    the engine": :class:`repro.sim.engine.Engine` implements it with one
    bucket-queue/timer-wheel event loop, and
    :class:`repro.sim.sharded.ShardedEngine` coordinates one event queue
    per node-space shard behind the same surface.  Consumers
    (:class:`~repro.sim.network.Network`, :class:`~repro.sim.clock.SimClock`,
    the fault drivers, :class:`~repro.experiments.scenario.Scenario`) hold
    a ``Kernel``, never a concrete engine — pre-binding a concrete method
    (``engine.post``) is allowed as a single-shard fast path only after
    checking :attr:`routed`.

    Two method families exist:

    * the classic surface (``schedule``/``post``/``run_*``) — owner-blind,
      identical to the historical ``Engine`` API;
    * the shard-aware surface (:meth:`schedule_for`/:meth:`post_for`) —
      takes the :class:`NodeId` that *consumes* the event so a sharded
      kernel can route it to the owning shard.  The base implementations
      discard the owner, so single-shard kernels get them for free.
    """

    __slots__ = ()

    #: ``True`` when the kernel partitions event ownership across shards
    #: and consumers must use the owner-qualified ``*_for`` methods for
    #: per-node events.  Single-shard kernels leave this ``False`` and
    #: consumers may pre-bind the concrete methods (the fast path).
    routed: bool = False

    # -- time ----------------------------------------------------------
    @property
    @abstractmethod
    def now(self) -> float:
        """Current simulated time in seconds."""

    @property
    @abstractmethod
    def pending(self) -> int:
        """Queued events, including lazily-cancelled timers."""

    @property
    @abstractmethod
    def live_pending(self) -> int:
        """Queued events that will actually fire."""

    @property
    @abstractmethod
    def processed(self) -> int:
        """Events fired since construction."""

    # -- scheduling ----------------------------------------------------
    @abstractmethod
    def schedule(self, delay: float, callback: Callable, *args) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds; cancellable."""

    @abstractmethod
    def schedule_at(self, when: float, callback: Callable, *args) -> TimerHandle:
        """Run ``callback(*args)`` at absolute time ``when``; cancellable."""

    @abstractmethod
    def post(self, delay: float, callback: Callable, *args) -> None:
        """Fire-and-forget event after ``delay`` seconds (no handle)."""

    @abstractmethod
    def post_at(self, when: float, callback: Callable, *args) -> None:
        """Fire-and-forget event at absolute time ``when`` (no handle)."""

    def schedule_for(
        self, owner: Optional[NodeId], delay: float, callback: Callable, *args
    ) -> TimerHandle:
        """Like :meth:`schedule`, routed to the shard owning ``owner``."""
        return self.schedule(delay, callback, *args)

    def post_for(
        self, owner: Optional[NodeId], delay: float, callback: Callable, *args
    ) -> None:
        """Like :meth:`post`, routed to the shard owning ``owner``."""
        self.post(delay, callback, *args)

    # -- execution -----------------------------------------------------
    @abstractmethod
    def step(self) -> bool:
        """Fire the single next event; ``False`` when the queue is empty."""

    @abstractmethod
    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Fire events until none remain; returns the count fired."""

    @abstractmethod
    def run_until(self, deadline: float) -> int:
        """Fire events up to ``deadline`` and advance time to it."""

    def run_for(self, duration: float) -> int:
        """Fire events for ``duration`` simulated seconds from now."""
        return self.run_until(self.now + duration)

    # -- maintenance ---------------------------------------------------
    @abstractmethod
    def compact(self) -> int:
        """Reclaim lazily-cancelled timers; returns the number removed."""


class Transport(ABC):
    """Message channel seen by a protocol instance.

    Two delivery disciplines are offered through one method:

    * ``send(dst, msg)`` — *datagram* semantics: best effort, silently lost
      if the destination is down or the network drops it.  This models the
      unreliable transport under plain Cyclon/Scamp gossip.
    * ``send(dst, msg, on_failure=cb)`` — *reliable* semantics: the message
      is delivered exactly once if the destination is up, and ``cb`` fires
      if it is not (TCP connection reset / ack timeout).  No random loss is
      applied — TCP retransmits.  HyParView and CyclonAcked use this form.
    """

    __slots__ = ()

    @property
    @abstractmethod
    def local_address(self) -> NodeId:
        """The identity messages from this transport are attributed to."""

    @abstractmethod
    def send(
        self,
        dst: NodeId,
        message: Message,
        on_failure: Optional[FailureCallback] = None,
    ) -> None:
        """Send ``message`` to ``dst`` (see class docstring for semantics)."""

    @abstractmethod
    def probe(self, dst: NodeId, on_result: ProbeCallback) -> None:
        """Attempt to establish a connection to ``dst``.

        HyParView uses this when promoting a passive-view member (Section
        4.3: "attempts to establish a TCP connection; if the connection
        fails to establish, node q is considered failed").
        """

    @abstractmethod
    def watch(self, dst: NodeId, on_down: Callable[[NodeId], None]) -> None:
        """Hold an open connection to ``dst`` and watch for its loss.

        Models the persistent TCP connection a node keeps to every active
        view member (Section 4.1): when the peer crashes, the connection
        resets and the holder learns about it *without having to send*.
        ``on_down`` fires (once) with the peer when that happens.  Watching
        an already-watched peer replaces the callback.
        """

    @abstractmethod
    def unwatch(self, dst: NodeId) -> None:
        """Close the held connection to ``dst``; no-op if not watching."""


@dataclass(slots=True)
class Host:
    """Bundle of everything a protocol instance needs from its environment.

    Passing one object keeps protocol constructors uniform across the
    simulator and the runtime.
    """

    address: NodeId
    clock: Clock
    transport: Transport
    rng: random.Random
    #: Restart count of the owning process (0 for the first incarnation).
    #: Broadcast layers scope their message-id sequence ranges by it so a
    #: revived process never re-mints an id its predecessor already used.
    incarnation: int = 0

    def now(self) -> float:
        return self.clock.now()

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self.clock.schedule(delay, callback)

    def send(
        self,
        dst: NodeId,
        message: Message,
        on_failure: Optional[FailureCallback] = None,
    ) -> None:
        self.transport.send(dst, message, on_failure)

    def probe(self, dst: NodeId, on_result: ProbeCallback) -> None:
        self.transport.probe(dst, on_result)

    def watch(self, dst: NodeId, on_down: Callable[[NodeId], None]) -> None:
        self.transport.watch(dst, on_down)

    def unwatch(self, dst: NodeId) -> None:
        self.transport.unwatch(dst)
