"""Shared building blocks: identifiers, messages, interfaces, RNG, errors."""

from .errors import (
    CodecError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    TransportError,
    UnknownNodeError,
)
from .ids import MessageId, NodeId, SequenceGenerator, simulated_node_ids
from .interfaces import Clock, FailureCallback, Host, ProbeCallback, TimerHandle, Transport
from .messages import (
    Message,
    decode_message,
    encode_message,
    register_message,
    registered_message_types,
    wire_name_of,
)
from .rng import SeedSequence, choice_or_none, sample_up_to

__all__ = [
    "CodecError",
    "Clock",
    "ConfigurationError",
    "FailureCallback",
    "Host",
    "Message",
    "MessageId",
    "NodeId",
    "ProbeCallback",
    "ProtocolError",
    "ReproError",
    "SeedSequence",
    "SequenceGenerator",
    "SimulationError",
    "TimerHandle",
    "Transport",
    "TransportError",
    "UnknownNodeError",
    "choice_or_none",
    "decode_message",
    "encode_message",
    "register_message",
    "registered_message_types",
    "sample_up_to",
    "simulated_node_ids",
    "wire_name_of",
]
