"""HyParView — the paper's primary contribution."""

from .config import HyParViewConfig
from .events import ListenerSet, MembershipListener
from .messages import (
    Disconnect,
    ForwardJoin,
    ForwardJoinReply,
    Join,
    Neighbor,
    NeighborReply,
    Shuffle,
    ShuffleReply,
)
from .protocol import HyParView, HyParViewStats
from .views import BoundedView

__all__ = [
    "BoundedView",
    "Disconnect",
    "ForwardJoin",
    "ForwardJoinReply",
    "HyParView",
    "HyParViewConfig",
    "HyParViewStats",
    "Join",
    "ListenerSet",
    "MembershipListener",
    "Neighbor",
    "NeighborReply",
    "Shuffle",
    "ShuffleReply",
]
