"""Membership change notifications.

HyParView exposes *neighbour up / neighbour down* events for the layers
above it.  The flood broadcast layer reads the active view directly, but
tree-based dissemination (Plumtree) and applications need the edge-level
callbacks, and the paper's failure-detection story ("the entire broadcast
overlay is implicitly tested at every broadcast") is observable through
them.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..common.ids import NodeId


@runtime_checkable
class MembershipListener(Protocol):
    """Receiver of active-view change notifications."""

    def on_neighbor_up(self, peer: NodeId) -> None:
        """``peer`` entered the active view (symmetric link established)."""

    def on_neighbor_down(self, peer: NodeId) -> None:
        """``peer`` left the active view (failure, disconnect or eviction)."""


class ListenerSet:
    """Small helper managing listener registration and fan-out."""

    __slots__ = ("_listeners",)

    def __init__(self) -> None:
        self._listeners: list[MembershipListener] = []

    def add(self, listener: MembershipListener) -> None:
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove(self, listener: MembershipListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def notify_up(self, peer: NodeId) -> None:
        for listener in self._listeners:
            listener.on_neighbor_up(peer)

    def notify_down(self, peer: NodeId) -> None:
        for listener in self._listeners:
            listener.on_neighbor_down(peer)
