"""HyParView protocol messages (Algorithm 1 plus the symmetry handshake).

The paper's Algorithm 1 defines JOIN, FORWARDJOIN, DISCONNECT and the
NEIGHBOR / SHUFFLE / SHUFFLEREPLY exchanges described in Sections 4.3–4.4.
Two reply messages are added that the pseudo-code leaves implicit but any
implementation over real connections requires:

* :class:`ForwardJoinReply` — when a walk endpoint adds the joiner to its
  active view, the joiner must learn about it to add the reverse edge
  (active views are symmetric, Section 4.1).
* :class:`NeighborReply` — the accept/reject answer to a NEIGHBOR request
  (Section 4.3 describes both outcomes; the message makes them explicit).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.ids import NodeId
from ..common.messages import Message, register_message


@register_message("hyparview.join")
@dataclass(frozen=True, slots=True)
class Join(Message):
    """New node ``new_node`` asks the contact node to admit it."""

    new_node: NodeId


@register_message("hyparview.forward_join")
@dataclass(frozen=True, slots=True)
class ForwardJoin(Message):
    """Random walk propagating a join through the overlay.

    ``ttl`` starts at ARWL; at PRWL the walker inserts the joiner in its
    passive view; at zero (or when the walker's active view has a single
    member) the joiner is inserted in the active view.
    """

    new_node: NodeId
    ttl: int
    sender: NodeId


@register_message("hyparview.forward_join_reply")
@dataclass(frozen=True, slots=True)
class ForwardJoinReply(Message):
    """Walk endpoint tells the joiner it created the active-view edge."""

    sender: NodeId


@register_message("hyparview.neighbor")
@dataclass(frozen=True, slots=True)
class Neighbor(Message):
    """Request to become an active-view neighbour (Section 4.3).

    ``high_priority`` is set when the requester's active view is empty; a
    high-priority request is always accepted, evicting a random member if
    needed.
    """

    sender: NodeId
    high_priority: bool


@register_message("hyparview.neighbor_reply")
@dataclass(frozen=True, slots=True)
class NeighborReply(Message):
    """Accept/reject answer to a :class:`Neighbor` request."""

    sender: NodeId
    accepted: bool


@register_message("hyparview.disconnect")
@dataclass(frozen=True, slots=True)
class Disconnect(Message):
    """Notification that the sender removed the receiver from its active
    view; the receiver mirrors the removal and keeps the sender as a
    passive-view candidate (Algorithm 1)."""

    sender: NodeId


@register_message("hyparview.shuffle")
@dataclass(frozen=True, slots=True)
class Shuffle(Message):
    """Passive-view shuffle request, propagated as a random walk.

    ``origin`` initiated the shuffle and receives the reply; ``sender`` is
    the previous hop (walks never bounce straight back).  ``exchange``
    carries the origin's identifier plus ``ka`` active and ``kp`` passive
    samples (Section 4.4).
    """

    origin: NodeId
    sender: NodeId
    ttl: int
    exchange: tuple[NodeId, ...]


@register_message("hyparview.shuffle_reply")
@dataclass(frozen=True, slots=True)
class ShuffleReply(Message):
    """Accepting node's answer, sent straight back to the origin over a
    temporary connection with an equally-sized passive-view sample."""

    sender: NodeId
    exchange: tuple[NodeId, ...]
