"""Bounded partial-view containers.

Both HyParView views are sets of node identifiers with a fixed capacity
(Section 4.1).  :class:`BoundedView` provides O(1) membership tests together
with O(1) uniform random sampling, which the protocol performs on every
gossip step, shuffle and promotion.

The container enforces the *local* invariants (no duplicates, no overflow);
the protocol layer owns the *cross-view* invariants (never contains the node
itself, active ∩ passive = ∅) because maintaining them requires sending
messages (DISCONNECT notifications, etc.).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional

from ..common.errors import ProtocolError
from ..common.ids import NodeId


class BoundedView:
    """A fixed-capacity set of node identifiers with random sampling.

    Implementation: a list for O(1) random indexing plus a dict mapping
    identifier to its list position for O(1) membership and removal
    (swap-with-last deletion).
    """

    __slots__ = ("capacity", "_items", "_index")

    def __init__(self, capacity: int, members: Iterable[NodeId] = ()) -> None:
        if capacity < 1:
            raise ProtocolError(f"view capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._items: list[NodeId] = []
        self._index: dict[NodeId, int] = {}
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<BoundedView {len(self)}/{self.capacity} {sorted(str(n) for n in self._items)}>"

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._items)

    def members(self) -> tuple[NodeId, ...]:
        """Immutable snapshot of the current membership."""
        return tuple(self._items)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, node: NodeId) -> None:
        """Insert ``node``.

        Raises :class:`ProtocolError` on duplicates or overflow — the
        protocol must make room first (that is where eviction notifications
        are generated), so silent eviction here would hide bugs.
        """
        if node in self._index:
            raise ProtocolError(f"node already in view: {node}")
        if self.is_full:
            raise ProtocolError(f"view full ({self.capacity}); evict before adding {node}")
        self._index[node] = len(self._items)
        self._items.append(node)

    def remove(self, node: NodeId) -> None:
        """Remove ``node``; raises :class:`ProtocolError` if absent."""
        position = self._index.pop(node, None)
        if position is None:
            raise ProtocolError(f"node not in view: {node}")
        last = self._items.pop()
        if last != node:
            self._items[position] = last
            self._index[last] = position

    def discard(self, node: NodeId) -> bool:
        """Remove ``node`` if present; returns whether it was present."""
        if node not in self._index:
            return False
        self.remove(node)
        return True

    # ------------------------------------------------------------------
    # Random selection
    # ------------------------------------------------------------------
    def random_member(
        self,
        rng: random.Random,
        exclude: Iterable[NodeId] = (),
    ) -> Optional[NodeId]:
        """Uniform random member not in ``exclude``; ``None`` if none exists.

        The common case (no exclusions) is O(1); with exclusions it falls
        back to building the candidate list, which is fine because excluded
        sets in the protocol are tiny (the walk's sender, the joiner).
        """
        if not self._items:
            return None
        exclude_set = set(exclude)
        if not exclude_set:
            return rng.choice(self._items)
        candidates = [node for node in self._items if node not in exclude_set]
        if not candidates:
            return None
        return rng.choice(candidates)

    def sample(self, rng: random.Random, k: int, exclude: Iterable[NodeId] = ()) -> list[NodeId]:
        """Up to ``k`` distinct random members not in ``exclude``."""
        if k <= 0:
            return []
        exclude_set = set(exclude)
        if exclude_set:
            candidates = [node for node in self._items if node not in exclude_set]
        else:
            candidates = self._items
        if k >= len(candidates):
            shuffled = list(candidates)
            rng.shuffle(shuffled)
            return shuffled
        return rng.sample(candidates, k)
