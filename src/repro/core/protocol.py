"""The HyParView membership protocol (Section 4 of the paper).

The protocol maintains two views with different strategies:

* a small **symmetric active view** (capacity ``fanout + 1``) managed
  *reactively*: joins add members, failures and disconnects remove them,
  and removals trigger promotion of passive-view candidates via NEIGHBOR
  requests with a priority bit;
* a larger **passive view** managed *cyclically* by a shuffle random walk
  that mixes the node's own identifier, active-view samples and
  passive-view samples (Section 4.4).

Failure detection is the transport's job ("TCP as a failure detector"):
every reliable send to an active-view member carries a failure callback
wired to :meth:`HyParView.report_failure`, so the entire broadcast overlay
is implicitly tested at every broadcast — the property the paper credits
for HyParView's fast recovery.

The implementation is sans-io: it only touches the abstract
:class:`~repro.common.interfaces.Host`, so the identical class runs inside
the discrete-event simulator and on real TCP sockets (:mod:`repro.runtime`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..common.errors import ProtocolError
from ..common.ids import NodeId
from ..common.interfaces import Host, TimerHandle
from ..common.messages import Message
from ..protocols.base import PeerSamplingService
from .config import HyParViewConfig
from .events import ListenerSet, MembershipListener
from .messages import (
    Disconnect,
    ForwardJoin,
    ForwardJoinReply,
    Join,
    Neighbor,
    NeighborReply,
    Shuffle,
    ShuffleReply,
)
from .views import BoundedView


@dataclass(slots=True)
class HyParViewStats:
    """Operational counters, exposed for tests and experiment reports."""

    joins_received: int = 0
    forward_joins_received: int = 0
    forward_joins_accepted: int = 0
    neighbor_requests_received: int = 0
    neighbor_accepts: int = 0
    neighbor_rejects: int = 0
    promotions_completed: int = 0
    failures_detected: int = 0
    disconnects_received: int = 0
    shuffles_initiated: int = 0
    shuffles_forwarded: int = 0
    shuffles_accepted: int = 0
    shuffle_replies_received: int = 0


class HyParView(PeerSamplingService):
    """One node's HyParView instance.

    Wire it to an environment by registering :meth:`handlers` with the
    node's dispatcher, then call :meth:`join` with a contact node.  Drive
    membership rounds either manually (:meth:`cycle`) or by calling
    :meth:`start` for self-scheduled shuffles.
    """

    name = "hyparview"

    def __init__(self, host: Host, config: Optional[HyParViewConfig] = None) -> None:
        self._host = host
        self._config = config if config is not None else HyParViewConfig()
        self._rng = host.rng
        self.active = BoundedView(self._config.active_view_capacity)
        self.passive = BoundedView(self._config.passive_view_capacity)
        self.stats = HyParViewStats()
        self._listeners = ListenerSet()
        # Promotion state: at most one outstanding NEIGHBOR request.
        self._pending_neighbor: Optional[NodeId] = None
        self._neighbor_timer: Optional[TimerHandle] = None
        self._fill_excluded: set[NodeId] = set()
        self._fill_passes_remaining = 0
        self._fill_retry_timer: Optional[TimerHandle] = None
        self._last_reactive_fill: Optional[float] = None
        self._reactive_fill_streak = 0
        # Identifiers included in our last shuffle, for the eviction
        # priority rule of Section 4.4.
        self._last_shuffle_exchange: tuple[NodeId, ...] = ()
        self._shuffle_timer: Optional[TimerHandle] = None
        self._running = False
        self._left = False

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def address(self) -> NodeId:
        return self._host.address

    @property
    def config(self) -> HyParViewConfig:
        return self._config

    def handlers(self) -> dict[type, Callable[[Message], None]]:
        """Message-type to handler mapping for dispatcher wiring."""
        return {
            Join: self.handle_join,
            ForwardJoin: self.handle_forward_join,
            ForwardJoinReply: self.handle_forward_join_reply,
            Neighbor: self.handle_neighbor,
            NeighborReply: self.handle_neighbor_reply,
            Disconnect: self.handle_disconnect,
            Shuffle: self.handle_shuffle,
            ShuffleReply: self.handle_shuffle_reply,
        }

    def add_listener(self, listener: MembershipListener) -> None:
        self._listeners.add(listener)

    def remove_listener(self, listener: MembershipListener) -> None:
        self._listeners.remove(listener)

    def active_members(self) -> tuple[NodeId, ...]:
        return self.active.members()

    def passive_members(self) -> tuple[NodeId, ...]:
        return self.passive.members()

    def join(self, contact: NodeId) -> None:
        """Enter the overlay through ``contact`` (Section 4.2).

        The joiner optimistically installs the contact as an active
        neighbour — the TCP connection it opens to send JOIN *is* the
        symmetric link; a send failure tears it down again.
        """
        if contact == self.address:
            raise ProtocolError("a node cannot join through itself")
        self._left = False
        self._add_to_active(contact)
        self._host.send(contact, Join(self.address), on_failure=self._on_active_send_failure)

    def leave(self) -> None:
        """Graceful exit: notify every active neighbour and clear state.

        A left node refuses new links until it joins again — otherwise its
        former neighbours, which keep it as a passive-view candidate, would
        promote it straight back into the overlay.
        """
        self._left = True
        for peer in self.active.members():
            self._host.send(peer, Disconnect(self.address))
            self.active.remove(peer)
            self._host.unwatch(peer)
            self._listeners.notify_down(peer)
        self._cancel_pending_promotion()
        self.stop()

    def gossip_targets(self, fanout: int, exclude: Iterable[NodeId] = ()) -> list[NodeId]:
        """The whole active view minus ``exclude``.

        HyParView floods deterministically (Section 4.1); the ``fanout``
        argument is part of the generic interface and intentionally ignored
        — the effective fanout is the active view size.
        """
        exclude_set = set(exclude)
        return [peer for peer in self.active if peer not in exclude_set]

    def report_failure(self, peer: NodeId) -> None:
        """React to a detected failure (TCP reset / send failure / link
        loss).

        Removes the peer and starts promoting a passive-view replacement
        (Section 4.3).  Dead peers are *not* recycled into the passive view.
        """
        if self.active.discard(peer):
            self._host.unwatch(peer)
            self.stats.failures_detected += 1
            self._listeners.notify_down(peer)
            self._fill_active_view()
        else:
            # A stale passive entry (e.g. the gossip layer probing an old
            # candidate) — expunge it so it is not promoted later.
            self.passive.discard(peer)

    def cycle(self) -> None:
        """One membership round: a shuffle, plus a repair attempt if the
        active view is under-full (reactive steps are always allowed)."""
        if not self.active.is_full:
            self._fill_active_view()
        self.shuffle_once()

    def out_neighbors(self) -> tuple[NodeId, ...]:
        return self.active.members()

    def start(self) -> None:
        """Self-schedule periodic shuffles (live mode).  The first shuffle
        fires after a random fraction of the period to desynchronise
        nodes."""
        if self._running:
            return
        self._running = True
        delay = self._rng.uniform(0, self._config.shuffle_period)
        self._shuffle_timer = self._host.schedule(delay, self._periodic_shuffle)

    def stop(self) -> None:
        self._running = False
        if self._shuffle_timer is not None:
            self._shuffle_timer.cancel()
            self._shuffle_timer = None

    # ------------------------------------------------------------------
    # Join protocol (Section 4.2, Algorithm 1)
    # ------------------------------------------------------------------
    def handle_join(self, message: Join) -> None:
        new_node = message.new_node
        self.stats.joins_received += 1
        if new_node == self.address or self._left:
            return
        self._add_to_active(new_node)
        forward = ForwardJoin(new_node, self._config.arwl, self.address)
        for peer in self.active.members():
            if peer != new_node:
                self._host.send(peer, forward, on_failure=self._on_active_send_failure)

    def handle_forward_join(self, message: ForwardJoin) -> None:
        new_node, ttl, sender = message.new_node, message.ttl, message.sender
        self.stats.forward_joins_received += 1
        if new_node == self.address or self._left:
            return  # the walk reached the joiner itself
        if ttl == 0 or len(self.active) == 1:
            self._accept_forward_join(new_node)
            return
        if ttl == self._config.prwl:
            self._add_to_passive(new_node)
        next_hop = self.active.random_member(self._rng, exclude=(sender, new_node))
        if next_hop is None:
            # Nowhere to continue the walk: absorb the join here.
            self._accept_forward_join(new_node)
            return
        self._host.send(
            next_hop,
            ForwardJoin(new_node, ttl - 1, self.address),
            on_failure=self._on_active_send_failure,
        )

    def _accept_forward_join(self, new_node: NodeId) -> None:
        if self._add_to_active(new_node):
            self.stats.forward_joins_accepted += 1
            # Active views are symmetric: tell the joiner to add the
            # reverse edge (implicit in the paper's TCP connection setup).
            self._host.send(
                new_node, ForwardJoinReply(self.address), on_failure=self._on_active_send_failure
            )

    def handle_forward_join_reply(self, message: ForwardJoinReply) -> None:
        self._add_to_active(message.sender)

    # ------------------------------------------------------------------
    # Active view management (Section 4.3)
    # ------------------------------------------------------------------
    def handle_neighbor(self, message: Neighbor) -> None:
        sender = message.sender
        self.stats.neighbor_requests_received += 1
        if sender == self.address:
            return
        if self._left:
            self._send_neighbor_reply(sender, accepted=False)
            return
        if sender in self.active:
            # Already symmetric neighbours; re-acknowledge idempotently.
            self._send_neighbor_reply(sender, accepted=True)
            return
        if message.high_priority:
            # A starving node (empty active view) is always admitted, even
            # at the cost of evicting a random member.
            self._add_to_active(sender)
            self.stats.neighbor_accepts += 1
            self._send_neighbor_reply(sender, accepted=True)
            return
        if self.active.is_full:
            self.stats.neighbor_rejects += 1
            self._send_neighbor_reply(sender, accepted=False)
            return
        self._add_to_active(sender)
        self.stats.neighbor_accepts += 1
        self._send_neighbor_reply(sender, accepted=True)

    def _send_neighbor_reply(self, peer: NodeId, accepted: bool) -> None:
        reply = NeighborReply(self.address, accepted)
        if accepted:
            # The reply rides the new symmetric link; its failure means the
            # requester died and must be cleaned up.
            self._host.send(peer, reply, on_failure=self._on_active_send_failure)
        else:
            self._host.send(peer, reply)

    def handle_neighbor_reply(self, message: NeighborReply) -> None:
        sender = message.sender
        if sender != self._pending_neighbor:
            return  # stale reply from a timed-out or superseded request
        self._cancel_neighbor_timer()
        self._pending_neighbor = None
        if message.accepted:
            self.passive.discard(sender)
            self._add_to_active(sender)
            self.stats.promotions_completed += 1
            self._fill_excluded.discard(sender)
        else:
            # Rejected candidates stay in the passive view (Section 4.3)
            # but are not retried within the same pass.
            self._fill_excluded.add(sender)
        self._fill_active_view(fresh_episode=False)

    def handle_disconnect(self, message: Disconnect) -> None:
        peer = message.sender
        self.stats.disconnects_received += 1
        if peer not in self.active:
            return
        self.active.remove(peer)
        self._host.unwatch(peer)
        self._listeners.notify_down(peer)
        # A disconnected peer is alive — it makes a good future candidate
        # (Section 4.5 explains this keeps refill probability high).
        self._add_to_passive(peer)
        # Disconnects arriving in rapid succession are eviction contention:
        # more starving nodes than free slots, each admission evicting the
        # previous winner.  Granting every eviction a fresh promotion
        # budget livelocks that loop (admit -> evict -> re-promote, with no
        # timer in the cycle), so rapid-fire disconnects spend down the
        # current episode's budget instead; the node backs off until the
        # next cycle-driven repair once it is exhausted.
        now = self._host.now()
        rapid = (
            self._last_reactive_fill is not None
            and now - self._last_reactive_fill < self._config.promotion_retry_delay
        )
        self._last_reactive_fill = now
        self._reactive_fill_streak = self._reactive_fill_streak + 1 if rapid else 0
        if self._reactive_fill_streak >= 3:
            self._fill_passes_remaining -= 1
            if self._fill_passes_remaining >= 0:
                self._fill_active_view(fresh_episode=False)
        else:
            self._fill_active_view()

    # ------------------------------------------------------------------
    # Passive view management (Section 4.4)
    # ------------------------------------------------------------------
    def shuffle_once(self) -> None:
        """Initiate one shuffle walk (the cyclic half of the protocol)."""
        target = self.active.random_member(self._rng)
        if target is None:
            return
        exchange = (
            (self.address,)
            + tuple(self.active.sample(self._rng, self._config.shuffle_ka))
            + tuple(self.passive.sample(self._rng, self._config.shuffle_kp))
        )
        self._last_shuffle_exchange = exchange
        self.stats.shuffles_initiated += 1
        self._host.send(
            target,
            Shuffle(self.address, self.address, self._config.effective_shuffle_ttl, exchange),
            on_failure=self._on_active_send_failure,
        )

    def handle_shuffle(self, message: Shuffle) -> None:
        if message.origin == self.address:
            return  # the walk looped back to its initiator; drop it
        ttl = message.ttl - 1
        if ttl > 0 and len(self.active) > 1:
            next_hop = self.active.random_member(
                self._rng, exclude=(message.sender, message.origin)
            )
            if next_hop is not None:
                self.stats.shuffles_forwarded += 1
                self._host.send(
                    next_hop,
                    Shuffle(message.origin, self.address, ttl, message.exchange),
                    on_failure=self._on_active_send_failure,
                )
                return
        # Accept: answer with an equally sized passive-view sample over a
        # temporary connection straight back to the origin.
        self.stats.shuffles_accepted += 1
        reply_sample = self.passive.sample(self._rng, len(message.exchange))
        self._host.send(
            message.origin,
            ShuffleReply(self.address, tuple(reply_sample)),
            on_failure=self._on_shuffle_reply_failure,
        )
        self._integrate_exchange(message.exchange, sent=tuple(reply_sample))

    def handle_shuffle_reply(self, message: ShuffleReply) -> None:
        self.stats.shuffle_replies_received += 1
        self._integrate_exchange(message.exchange, sent=self._last_shuffle_exchange)
        if not self.active.is_full:
            # Fresh candidates may unblock a stalled repair.
            self._fill_active_view()

    def _integrate_exchange(self, received: tuple[NodeId, ...], sent: tuple[NodeId, ...]) -> None:
        """Merge shuffle identifiers into the passive view (Section 4.4).

        Skips our own identifier and already-known nodes; when the view is
        full, evicts identifiers that were sent to the peer first, then
        random ones.
        """
        eviction_candidates = [node for node in sent if node in self.passive]
        for node in received:
            if node == self.address or node in self.active or node in self.passive:
                continue
            if self.passive.is_full:
                victim = None
                while eviction_candidates:
                    candidate = eviction_candidates.pop()
                    if candidate in self.passive:
                        victim = candidate
                        break
                if victim is None:
                    victim = self.passive.random_member(self._rng)
                self.passive.remove(victim)
            self.passive.add(node)

    # ------------------------------------------------------------------
    # View manipulation primitives (Algorithm 1, Section 4.5)
    # ------------------------------------------------------------------
    def _add_to_active(self, node: NodeId) -> bool:
        """``addNodeActiveView``: returns whether the node was inserted."""
        if node == self.address or node in self.active:
            return False
        if self.active.is_full:
            self._drop_random_from_active()
        self.passive.discard(node)
        self.active.add(node)
        # Hold the symmetric TCP connection: its loss is the failure
        # detector (Section 1, point iii).
        self._host.watch(node, self._on_link_down)
        self._listeners.notify_up(node)
        return True

    def _drop_random_from_active(self) -> None:
        """``dropRandomElementFromActiveView``: evict, notify, demote."""
        victim = self.active.random_member(self._rng)
        if victim is None:
            return
        self._host.send(victim, Disconnect(self.address))
        self.active.remove(victim)
        self._host.unwatch(victim)
        self._listeners.notify_down(victim)
        self._add_to_passive(victim)

    def _add_to_passive(self, node: NodeId) -> bool:
        """``addNodePassiveView``: random eviction when full."""
        if node == self.address or node in self.active or node in self.passive:
            return False
        if self.passive.is_full:
            victim = self.passive.random_member(self._rng)
            if victim is not None:
                self.passive.remove(victim)
        self.passive.add(node)
        return True

    # ------------------------------------------------------------------
    # Passive -> active promotion (Section 4.3)
    # ------------------------------------------------------------------
    def _fill_active_view(self, *, fresh_episode: bool = True) -> None:
        """Promote passive candidates until the active view is full.

        One NEIGHBOR request is outstanding at a time; each candidate is
        first probed (the paper's "attempt to establish a TCP connection"),
        unreachable candidates are expunged from the passive view, and
        rejections move on to the next candidate.

        Section 4.3's loop never gives up after a rejection ("the initiator
        will select another node ... and repeat the whole procedure"):
        after a full pass of rejections the pass restarts, paced by
        ``promotion_retry_delay`` and bounded by ``promotion_max_passes``
        so simulations always quiesce.  A fresh trigger (new failure,
        disconnect, new candidates) starts a new episode with a full
        budget.
        """
        if fresh_episode:
            self._fill_passes_remaining = self._config.promotion_max_passes
        if self._pending_neighbor is not None:
            return
        if self.active.is_full:
            self._end_fill_episode()
            return
        candidate = self.passive.random_member(self._rng, exclude=self._fill_excluded)
        if candidate is None:
            # Every candidate was tried this pass; the rejections were about
            # *momentarily* full views on the other side, so start over
            # after a pacing delay while budget remains.
            self._fill_excluded.clear()
            if self.passive.is_empty or self._fill_passes_remaining <= 0:
                self._end_fill_episode()
                return
            self._fill_passes_remaining -= 1
            if self._fill_retry_timer is None:
                self._fill_retry_timer = self._host.schedule(
                    self._config.promotion_retry_delay, self._retry_fill_pass
                )
            return
        self._pending_neighbor = candidate
        self._host.probe(candidate, self._on_probe_result)

    def _retry_fill_pass(self) -> None:
        self._fill_retry_timer = None
        self._fill_active_view(fresh_episode=False)

    def _end_fill_episode(self) -> None:
        self._fill_excluded.clear()
        self._fill_passes_remaining = 0
        if self._fill_retry_timer is not None:
            self._fill_retry_timer.cancel()
            self._fill_retry_timer = None

    def _on_probe_result(self, peer: NodeId, ok: bool) -> None:
        if peer != self._pending_neighbor:
            return
        if not ok:
            self.passive.discard(peer)
            self._pending_neighbor = None
            self._fill_active_view(fresh_episode=False)
            return
        if self.active.is_full:
            # Filled by incoming requests while we were probing.
            self._pending_neighbor = None
            self._end_fill_episode()
            return
        high_priority = self.active.is_empty
        self._host.send(
            peer,
            Neighbor(self.address, high_priority),
            on_failure=self._on_neighbor_request_failure,
        )
        timeout = self._config.neighbor_request_timeout
        if timeout is not None:
            self._neighbor_timer = self._host.schedule(
                timeout, lambda: self._on_neighbor_timeout(peer)
            )

    def _on_neighbor_request_failure(self, peer: NodeId, _message: Message) -> None:
        if peer != self._pending_neighbor:
            return
        self._cancel_neighbor_timer()
        self.passive.discard(peer)
        self._pending_neighbor = None
        self._fill_active_view(fresh_episode=False)

    def _on_neighbor_timeout(self, peer: NodeId) -> None:
        if peer != self._pending_neighbor:
            return
        self._neighbor_timer = None
        self._pending_neighbor = None
        self._fill_excluded.add(peer)
        self._fill_active_view(fresh_episode=False)

    def _cancel_neighbor_timer(self) -> None:
        if self._neighbor_timer is not None:
            self._neighbor_timer.cancel()
            self._neighbor_timer = None

    def _cancel_pending_promotion(self) -> None:
        self._cancel_neighbor_timer()
        self._pending_neighbor = None
        self._end_fill_episode()

    # ------------------------------------------------------------------
    # Failure plumbing
    # ------------------------------------------------------------------
    def _on_active_send_failure(self, peer: NodeId, _message: Message) -> None:
        self.report_failure(peer)

    def _on_link_down(self, peer: NodeId) -> None:
        """The held TCP connection to an active-view member reset."""
        self.report_failure(peer)

    def _on_shuffle_reply_failure(self, peer: NodeId, _message: Message) -> None:
        # The shuffle origin died before our temporary connection went
        # through; make sure it is not kept as a candidate.
        self.passive.discard(peer)

    def _periodic_shuffle(self) -> None:
        if not self._running:
            return
        self.cycle()
        self._shuffle_timer = self._host.schedule(
            self._config.shuffle_period, self._periodic_shuffle
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<HyParView {self.address} active={len(self.active)}/{self.active.capacity} "
            f"passive={len(self.passive)}/{self.passive.capacity}>"
        )
