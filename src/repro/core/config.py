"""HyParView configuration.

Defaults are the exact values from Section 5.1 of the paper: active view of
5 (= fanout 4 + 1), passive view of 30, ARWL 6, PRWL 3, shuffle samples
``ka = 3`` / ``kp = 4`` (8 identifiers per shuffle including the sender).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class HyParViewConfig:
    """Tuning knobs of the HyParView membership protocol.

    Attributes:
        active_view_capacity: Symmetric active view size.  The paper sets it
            to ``fanout + 1`` because a node never relays a message back to
            the peer it came from (Section 4.1).
        passive_view_capacity: Backup view size; the paper requires it to be
            larger than ``log(n)`` and uses 30 for 10 000 nodes.
        arwl: Active Random Walk Length — TTL of FORWARDJOIN walks.
        prwl: Passive Random Walk Length — the hop at which the walk inserts
            the joiner into a passive view.
        shuffle_ka: Active-view identifiers included in a shuffle (at most).
        shuffle_kp: Passive-view identifiers included in a shuffle (at most).
        shuffle_ttl: TTL of the shuffle random walk ("just like the
            FORWARDJOIN requests", Section 4.4; the paper does not print the
            value, so it defaults to ARWL and is exposed for ablations).
        shuffle_period: Seconds between self-driven shuffles when the
            protocol schedules its own cycles.  Experiment harnesses drive
            cycles manually and ignore this.
        neighbor_request_timeout: When set, a pending NEIGHBOR request that
            receives no reply within this many seconds is treated as a
            rejection and another candidate is tried.  The simulator's
            reliable transport always answers, so it is only needed on real
            networks (the asyncio runtime sets it).
        promotion_retry_delay: Section 4.3's repair loop never gives up: a
            rejected initiator "will select another node from its passive
            view and repeat the whole procedure (without removing q from
            its passive view)".  After a full pass of rejections the loop
            therefore starts over; this delay paces consecutive passes so
            the retries poll the (changing) global state instead of
            hammering it.
        promotion_max_passes: Termination bound on those retry passes per
            repair episode.  A fresh failure detection starts a new
            episode.  The bound exists so simulations always quiesce; it is
            generous enough that it is not reached in practice.
    """

    active_view_capacity: int = 5
    passive_view_capacity: int = 30
    arwl: int = 6
    prwl: int = 3
    shuffle_ka: int = 3
    shuffle_kp: int = 4
    shuffle_ttl: Optional[int] = None
    shuffle_period: float = 10.0
    neighbor_request_timeout: Optional[float] = None
    promotion_retry_delay: float = 0.5
    promotion_max_passes: int = 10

    def __post_init__(self) -> None:
        if self.active_view_capacity < 1:
            raise ConfigurationError(f"active view capacity must be >= 1: {self.active_view_capacity}")
        if self.passive_view_capacity < 1:
            raise ConfigurationError(f"passive view capacity must be >= 1: {self.passive_view_capacity}")
        if self.arwl < 0:
            raise ConfigurationError(f"ARWL must be >= 0: {self.arwl}")
        if not 0 <= self.prwl <= self.arwl:
            raise ConfigurationError(f"PRWL must satisfy 0 <= PRWL <= ARWL: {self.prwl} vs {self.arwl}")
        if self.shuffle_ka < 0 or self.shuffle_kp < 0:
            raise ConfigurationError("shuffle sample sizes must be >= 0")
        if self.shuffle_ttl is not None and self.shuffle_ttl < 1:
            raise ConfigurationError(f"shuffle TTL must be >= 1: {self.shuffle_ttl}")
        if self.shuffle_period <= 0:
            raise ConfigurationError(f"shuffle period must be positive: {self.shuffle_period}")
        if self.neighbor_request_timeout is not None and self.neighbor_request_timeout <= 0:
            raise ConfigurationError("neighbor request timeout must be positive when set")
        if self.promotion_retry_delay <= 0:
            raise ConfigurationError("promotion retry delay must be positive")
        if self.promotion_max_passes < 0:
            raise ConfigurationError("promotion max passes must be >= 0")

    @property
    def fanout(self) -> int:
        """Broadcast fanout implied by the symmetric active view."""
        return self.active_view_capacity - 1

    @property
    def effective_shuffle_ttl(self) -> int:
        """Shuffle walk TTL (defaults to ARWL, see :attr:`shuffle_ttl`)."""
        return self.shuffle_ttl if self.shuffle_ttl is not None else max(self.arwl, 1)

    @classmethod
    def paper(cls) -> "HyParViewConfig":
        """The exact Section 5.1 configuration."""
        return cls()

    def scaled(self, n: int) -> "HyParViewConfig":
        """A configuration scaled for an ``n``-node system.

        Keeps the paper's active view (it depends on the target fanout, not
        on ``n``) and grows the passive view like ``6 * ln(n)`` with the
        paper's 30-at-10 000 as the anchor, honouring the "larger than
        log(n)" requirement from Section 4.1.
        """
        import math

        if n < 2:
            raise ConfigurationError(f"system size must be >= 2: {n}")
        passive = max(6, round(30 * math.log(n) / math.log(10_000)))
        return HyParViewConfig(
            active_view_capacity=self.active_view_capacity,
            passive_view_capacity=passive,
            arwl=self.arwl,
            prwl=self.prwl,
            shuffle_ka=self.shuffle_ka,
            shuffle_kp=self.shuffle_kp,
            shuffle_ttl=self.shuffle_ttl,
            shuffle_period=self.shuffle_period,
            neighbor_request_timeout=self.neighbor_request_timeout,
            promotion_retry_delay=self.promotion_retry_delay,
            promotion_max_passes=self.promotion_max_passes,
        )
