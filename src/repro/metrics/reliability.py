"""Reliability aggregation over broadcast summaries.

Implements the paper's measurements on top of
:class:`~repro.gossip.tracker.BroadcastSummary` sequences:

* average reliability of a message batch (Figure 2);
* the per-message reliability series (Figures 1c and 3);
* atomic-delivery fraction ("a reliability of 100% means the message
  resulted in an atomic broadcast", Section 2.5);
* healing time — cycles until reliability returns to its pre-failure level
  (Figure 4).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..gossip.tracker import BroadcastSummary
from .stats import mean


def reliability_series(summaries: Sequence[BroadcastSummary]) -> list[float]:
    """Per-message reliability, in send order."""
    ordered = sorted(summaries, key=lambda summary: summary.sent_at)
    return [summary.reliability for summary in ordered]


def average_reliability(summaries: Sequence[BroadcastSummary]) -> float:
    """Mean reliability of a message batch (one Figure 2 cell)."""
    return mean([summary.reliability for summary in summaries])


def atomic_fraction(summaries: Sequence[BroadcastSummary]) -> float:
    """Fraction of messages delivered to *every* correct node."""
    if not summaries:
        return 0.0
    atomic = sum(1 for summary in summaries if summary.reliability >= 1.0)
    return atomic / len(summaries)


def max_hops(summaries: Sequence[BroadcastSummary]) -> float:
    """Mean over messages of the per-message maximum hop count (Table 1's
    "maximum hops to delivery" is an average over runs, hence the non-
    integer values the paper reports)."""
    return mean([float(summary.max_hops) for summary in summaries])


def redundancy_ratio(summaries: Sequence[BroadcastSummary]) -> float:
    """Duplicate receptions per delivered copy (Section 3.1's waste)."""
    delivered = sum(summary.delivered for summary in summaries)
    redundant = sum(summary.redundant for summary in summaries)
    return redundant / delivered if delivered else 0.0


def healing_cycles(
    baseline: float,
    per_cycle_reliability: Sequence[float],
    *,
    tolerance: float = 0.0,
) -> Optional[int]:
    """Cycles needed to regain the pre-failure reliability (Figure 4).

    Returns the 1-based index of the first cycle whose average reliability
    is at least ``baseline - tolerance``, or ``None`` if it never recovers
    within the observed window.
    """
    target = baseline - tolerance
    for index, value in enumerate(per_cycle_reliability):
        if value >= target:
            return index + 1
    return None
