"""Small statistics helpers used by experiments and reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..common.errors import ConfigurationError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (experiments treat "no
    samples" as a zero row rather than an error)."""
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 with fewer than two samples."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100]: {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True, slots=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"n={self.count} mean={self.mean:.4f} sd={self.stddev:.4f} "
            f"min={self.minimum:.4f} p50={self.p50:.4f} p95={self.p95:.4f} max={self.maximum:.4f}"
        )


def summarize(values: Iterable[float]) -> SummaryStats:
    """Build a :class:`SummaryStats` from any iterable of numbers."""
    data = list(values)
    if not data:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return SummaryStats(
        count=len(data),
        mean=mean(data),
        stddev=stddev(data),
        minimum=min(data),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        maximum=max(data),
    )
