"""Overlay analytics and reliability measurement."""

from .graph import OverlaySnapshot, PathStats
from .latency import LatencyHistogram
from .reliability import (
    atomic_fraction,
    average_reliability,
    healing_cycles,
    max_hops,
    redundancy_ratio,
    reliability_series,
)
from .stats import SummaryStats, mean, percentile, stddev, summarize

__all__ = [
    "LatencyHistogram",
    "OverlaySnapshot",
    "PathStats",
    "SummaryStats",
    "atomic_fraction",
    "average_reliability",
    "healing_cycles",
    "max_hops",
    "mean",
    "percentile",
    "redundancy_ratio",
    "reliability_series",
    "stddev",
    "summarize",
]
