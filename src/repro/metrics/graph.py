"""Overlay graph snapshots and the Section 2.3 metrics.

Partial views define a directed graph (Section 2.1).  An
:class:`OverlaySnapshot` freezes that graph and computes every property the
paper evaluates:

* connectivity (components of the undirected projection);
* in-/out-degree distributions (Figure 5);
* clustering coefficient (Table 1) — computed on the undirected projection,
  the standard convention for overlay-quality studies;
* average shortest path (Table 1) — directed BFS, optionally from a sample
  of sources (exact all-pairs is quadratic and unnecessary at 10 000 nodes);
* accuracy — live out-neighbours over total out-neighbours (Section 2.3);
* active-view symmetry, the invariant HyParView's resilience rests on.

The implementation is dependency-free for speed; the test-suite
cross-checks every metric against networkx on random graphs.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping, Optional, Sequence

from ..common.errors import ConfigurationError
from ..common.ids import NodeId


@dataclass(frozen=True, slots=True)
class PathStats:
    """Result of the (sampled) shortest-path computation."""

    average: float
    maximum: int
    pairs_measured: int
    unreachable_pairs: int

    @property
    def reachable_fraction(self) -> float:
        total = self.pairs_measured + self.unreachable_pairs
        return self.pairs_measured / total if total else 0.0


class OverlaySnapshot:
    """An immutable directed graph built from membership views."""

    def __init__(self, adjacency: Mapping[NodeId, Iterable[NodeId]]) -> None:
        self._ids: list[NodeId] = list(adjacency)
        self._index: dict[NodeId, int] = {node: i for i, node in enumerate(self._ids)}
        self._out: list[list[int]] = [[] for _ in self._ids]
        for node, neighbors in adjacency.items():
            row = self._out[self._index[node]]
            for neighbor in neighbors:
                target = self._index.get(neighbor)
                if target is not None and target != self._index[node]:
                    row.append(target)
        self._undirected: Optional[list[set[int]]] = None

    @classmethod
    def from_out_neighbors(
        cls,
        views: Mapping[NodeId, Sequence[NodeId]],
        restrict_to: Optional[AbstractSet[NodeId]] = None,
    ) -> "OverlaySnapshot":
        """Build a snapshot from per-node out-neighbour views.

        ``restrict_to`` keeps only the given nodes (e.g. the live ones) as
        vertices; edges to excluded nodes are dropped.
        """
        if restrict_to is None:
            return cls(views)
        filtered = {
            node: [peer for peer in neighbors if peer in restrict_to]
            for node, neighbors in views.items()
            if node in restrict_to
        }
        return cls(filtered)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._ids)

    @property
    def edge_count(self) -> int:
        return sum(len(row) for row in self._out)

    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._ids)

    def out_neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        return tuple(self._ids[i] for i in self._out[self._index[node]])

    # ------------------------------------------------------------------
    # Degrees (Figure 5)
    # ------------------------------------------------------------------
    def out_degrees(self) -> dict[NodeId, int]:
        return {node: len(self._out[i]) for i, node in enumerate(self._ids)}

    def in_degrees(self) -> dict[NodeId, int]:
        counts = [0] * len(self._ids)
        for row in self._out:
            for target in row:
                counts[target] += 1
        return {node: counts[i] for i, node in enumerate(self._ids)}

    def in_degree_histogram(self) -> dict[int, int]:
        """degree value -> number of nodes (the Figure 5 distribution)."""
        return dict(Counter(self.in_degrees().values()))

    # ------------------------------------------------------------------
    # Clustering (Table 1)
    # ------------------------------------------------------------------
    def _undirected_adjacency(self) -> list[set[int]]:
        if self._undirected is None:
            undirected: list[set[int]] = [set() for _ in self._ids]
            for source, row in enumerate(self._out):
                for target in row:
                    undirected[source].add(target)
                    undirected[target].add(source)
            self._undirected = undirected
        return self._undirected

    def clustering_coefficient(self, node: NodeId) -> float:
        """Fraction of possible edges present among the node's neighbours."""
        undirected = self._undirected_adjacency()
        neighbors = undirected[self._index[node]]
        degree = len(neighbors)
        if degree < 2:
            return 0.0
        links = 0
        for neighbor in neighbors:
            # Iterate the smaller set for each pair exactly once.
            links += sum(1 for other in undirected[neighbor] if other in neighbors)
        links //= 2
        return links / (degree * (degree - 1) / 2)

    def average_clustering(self) -> float:
        if not self._ids:
            return 0.0
        return sum(self.clustering_coefficient(node) for node in self._ids) / len(self._ids)

    # ------------------------------------------------------------------
    # Paths (Table 1)
    # ------------------------------------------------------------------
    def shortest_paths(
        self,
        *,
        sample_sources: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> PathStats:
        """Directed BFS from every (or a sample of) source node(s).

        Averages path lengths over all measured (source, target) pairs with
        ``source != target``; unreachable pairs are counted separately
        rather than silently skewing the average.
        """
        if not self._ids:
            return PathStats(0.0, 0, 0, 0)
        source_indices = range(len(self._ids))
        if sample_sources is not None and sample_sources < len(self._ids):
            if sample_sources < 1:
                raise ConfigurationError(f"sample_sources must be >= 1: {sample_sources}")
            rng = rng if rng is not None else random.Random(0)
            source_indices = rng.sample(range(len(self._ids)), sample_sources)
        total = 0
        pairs = 0
        unreachable = 0
        maximum = 0
        n = len(self._ids)
        for source in source_indices:
            distances = self._bfs(source)
            reached = 0
            for distance in distances:
                if distance > 0:
                    total += distance
                    reached += 1
                    if distance > maximum:
                        maximum = distance
            pairs += reached
            unreachable += n - 1 - reached
        average = total / pairs if pairs else 0.0
        return PathStats(average, maximum, pairs, unreachable)

    def _bfs(self, source: int) -> list[int]:
        distances = [-1] * len(self._ids)
        distances[source] = 0
        queue: deque[int] = deque((source,))
        out = self._out
        while queue:
            current = queue.popleft()
            next_distance = distances[current] + 1
            for target in out[current]:
                if distances[target] < 0:
                    distances[target] = next_distance
                    queue.append(target)
        return distances

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[NodeId]]:
        """Components of the undirected projection, largest first."""
        undirected = self._undirected_adjacency()
        seen = [False] * len(self._ids)
        components: list[set[NodeId]] = []
        for start in range(len(self._ids)):
            if seen[start]:
                continue
            seen[start] = True
            component = {start}
            queue: deque[int] = deque((start,))
            while queue:
                current = queue.popleft()
                for neighbor in undirected[current]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        component.add(neighbor)
                        queue.append(neighbor)
            components.append({self._ids[i] for i in component})
        components.sort(key=len, reverse=True)
        return components

    def is_connected(self) -> bool:
        if not self._ids:
            return True
        return len(self.connected_components()[0]) == len(self._ids)

    def largest_component_fraction(self) -> float:
        if not self._ids:
            return 1.0
        return len(self.connected_components()[0]) / len(self._ids)

    # ------------------------------------------------------------------
    # Quality metrics tied to liveness
    # ------------------------------------------------------------------
    def accuracy(self, alive: AbstractSet[NodeId]) -> float:
        """Average over live nodes of (live out-neighbours / out-neighbours).

        Section 2.3: low accuracy means gossip targets are frequently dead,
        forcing higher fanouts.
        """
        ratios = []
        for i, node in enumerate(self._ids):
            if node not in alive:
                continue
            row = self._out[i]
            if not row:
                continue
            live = sum(1 for target in row if self._ids[target] in alive)
            ratios.append(live / len(row))
        return sum(ratios) / len(ratios) if ratios else 0.0

    def symmetry_fraction(self) -> float:
        """Fraction of directed edges whose reverse edge also exists."""
        edge_set = {
            (source, target) for source, row in enumerate(self._out) for target in row
        }
        if not edge_set:
            return 1.0
        symmetric = sum(1 for source, target in edge_set if (target, source) in edge_set)
        return symmetric / len(edge_set)

    def isolated_nodes(self) -> tuple[NodeId, ...]:
        """Nodes with neither in- nor out-edges."""
        undirected = self._undirected_adjacency()
        return tuple(
            node for i, node in enumerate(self._ids) if not undirected[i]
        )
