"""Delivery-latency histograms for live (wall-clock) measurement.

The simulator reports dissemination in *hops* and simulated seconds; the
live runtime measures real publish→deliver latency.  A
:class:`LatencyHistogram` collects one sample per delivery and reports the
quantiles the service benchmark and the chaos latency report publish
(p50/p99, the industry-standard pair for latency SLOs).

Samples are kept exactly (a float each) — bench-scale runs collect
thousands of samples, not billions, so exact quantiles are cheaper than
the error analysis a sketch would need.
"""

from __future__ import annotations

import math
from typing import Optional


class LatencyHistogram:
    """Exact-sample latency aggregator with percentile queries."""

    __slots__ = ("_samples", "_sorted")

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted = True

    def record(self, seconds: float) -> None:
        """Add one latency sample (seconds; negatives are clock skew,
        clamped to zero rather than poisoning the quantiles)."""
        self._samples.append(seconds if seconds > 0.0 else 0.0)
        self._sorted = False

    def merge(self, other: "LatencyHistogram") -> None:
        self._samples.extend(other._samples)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0 < p <= 100), nearest-rank method."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100]: {p}")
        if not self._samples:
            return None
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(1, math.ceil(p / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    def p50(self) -> Optional[float]:
        return self.percentile(50.0)

    def p99(self) -> Optional[float]:
        return self.percentile(99.0)

    def p999(self) -> Optional[float]:
        return self.percentile(99.9)

    def max(self) -> Optional[float]:
        return max(self._samples) if self._samples else None

    def summary(self) -> dict:
        """Unscaled quantile summary (seconds), consumed by the metrics
        registry (:func:`repro.obs.collectors.bind_latency`).  Empty
        histograms report zeros so gauges always have a value."""
        return {
            "count": self.count,
            "mean": self.mean() or 0.0,
            "p50": self.p50() or 0.0,
            "p99": self.p99() or 0.0,
            "p999": self.p999() or 0.0,
            "max": self.max() or 0.0,
        }

    def to_dict(self, *, scale: float = 1000.0) -> dict:
        """Summary row for artifacts; latencies scaled (default to ms)."""

        def scaled(value: Optional[float]) -> Optional[float]:
            return None if value is None else value * scale

        return {
            "samples": self.count,
            "mean_ms": scaled(self.mean()),
            "p50_ms": scaled(self.p50()),
            "p99_ms": scaled(self.p99()),
            "max_ms": scaled(self.max()),
        }


__all__ = ["LatencyHistogram"]
