"""Per-node view of the simulation clock.

A :class:`SimClock` adapts the global :class:`~repro.common.interfaces.
Kernel` to the sans-io :class:`~repro.common.interfaces.Clock` interface
with one crucial addition: timers belonging to a crashed node never fire.
Without the liveness guard a dead node's pending shuffle timer would
execute after the failure was injected, which no real crashed process
could do.

The clock goes through the ``Kernel`` interface rather than reaching into
engine internals: on a single-shard kernel it pre-binds the concrete
``schedule`` method (the historical fast path — two attribute hops saved
per timer), and on a shard-routed kernel it uses the owner-qualified
``schedule_for`` so the timer lands on the shard that owns this node.

The clock stores plain object references (no closures) so that a stabilised
scenario can be cloned with :func:`copy.deepcopy` — the experiment harness
relies on that to stabilise an overlay once and fork it per failure level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..common.ids import NodeId
from ..common.interfaces import Clock, TimerHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network


class SimClock(Clock):
    """Kernel-backed clock whose callbacks are suppressed once the owning
    node is declared failed."""

    __slots__ = ("_network", "_node_id", "_engine_schedule", "_schedule_for")

    def __init__(self, network: "Network", node_id: NodeId) -> None:
        self._network = network
        self._node_id = node_id
        # Timer scheduling is hot under ack/retransmit-heavy protocols;
        # the pre-bound method skips two attribute hops per timer.  Bound
        # methods pickle by reference, so freezing stays compact.  The
        # fast path is only taken when the kernel is not shard-routed.
        engine = network.engine
        self._engine_schedule = engine.schedule
        self._schedule_for: Optional[Callable] = (
            engine.schedule_for if engine.routed else None
        )

    def now(self) -> float:
        return self._network.engine.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        if self._schedule_for is None:
            return self._engine_schedule(delay, self._guarded, callback)
        return self._schedule_for(self._node_id, delay, self._guarded, callback)

    def _guarded(self, callback: Callable[[], None]) -> None:
        if self._network.is_alive(self._node_id):
            callback()
