"""The simulated network: node registry, failures, partitions, delivery.

This module provides the behaviour the paper obtains from PeerSim plus its
transport assumptions:

* **reliable sends** (``on_failure`` callback supplied) model TCP: delivered
  exactly once if the destination is reachable, otherwise the *sender* is
  told — "TCP is also used as a failure detector" (Section 1, point iii);
* **datagram sends** model the unreliable transport that plain gossip
  protocols are usually evaluated over: silently dropped when the
  destination is down, and subject to an optional random loss rate;
* **failure injection** marks nodes as crashed; their timers stop firing,
  in-flight messages to them are lost, and reliable senders get failure
  notifications — exactly the observable behaviour of a crashed process;
* **partitions** make reliable sends across the cut fail and datagrams
  disappear, for split-brain experiments beyond the paper's evaluation;
* **link fault rules** (:class:`LinkFaultRule`) degrade matching links for
  a bounded window: extra latency (WAN jitter), loss (dropping datagrams,
  delaying reliable sends the way TCP retransmission does), duplication —
  the substrate :mod:`repro.faults` plans compile onto;
* **adversaries** are registered nodes that silently ignore selected
  message types (e.g. SHUFFLE / FORWARDJOIN) while behaving normally on
  the wire — the misbehaving-peer model of the fault-injection subsystem;
* **Byzantine senders** (:class:`ByzantineBehavior`) corrupt outgoing
  payloads of selected message types — consistently per ``(sender,
  message)`` for plain mutation (a pure hash, zero RNG draws at full
  rate), or freshly per destination for *equivocation*; **collusion
  sets** additionally drop selected traffic from outsiders while sparing
  fellow colluders.  Together these are the adversary model the
  Byzantine broadcast layer (:mod:`repro.gossip.byzantine`) is measured
  against.

All fault hooks are strictly pay-for-what-you-use: with no rules, no
adversaries and no Byzantine senders installed the send path performs the
exact same RNG draws and event posts as before they existed, so empty
fault plans leave artifacts byte-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from collections import Counter
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from ..common.errors import SimulationError, UnknownNodeError
from ..common.ids import NodeId
from ..common.interfaces import FailureCallback, Kernel, ProbeCallback
from ..common.messages import Message
from ..common.rng import SeedSequence
from .latency import ConstantLatency, LatencyModel
from .trace import EventTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import SimNode


class NetworkStats:
    """Counters for everything the network did.

    ``messages_by_type`` is the basis for the protocol-overhead comparisons
    (e.g. Plumtree payload savings vs. plain flooding).
    """

    __slots__ = (
        "sent",
        "delivered",
        "dropped_loss",
        "dropped_dead",
        "dropped_fault",
        "duplicated_fault",
        "dropped_adversary",
        "dropped_collusion",
        "mutated_byz",
        "equivocated_byz",
        "send_failures",
        "probes_ok",
        "probes_failed",
        "messages_by_type",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_loss = 0
        self.dropped_dead = 0
        self.dropped_fault = 0
        self.duplicated_fault = 0
        self.dropped_adversary = 0
        self.dropped_collusion = 0
        self.mutated_byz = 0
        self.equivocated_byz = 0
        self.send_failures = 0
        self.probes_ok = 0
        self.probes_failed = 0
        self.messages_by_type: Counter = Counter()

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for asserting deltas in tests."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_loss": self.dropped_loss,
            "dropped_dead": self.dropped_dead,
            "dropped_fault": self.dropped_fault,
            "duplicated_fault": self.duplicated_fault,
            "dropped_adversary": self.dropped_adversary,
            "dropped_collusion": self.dropped_collusion,
            "mutated_byz": self.mutated_byz,
            "equivocated_byz": self.equivocated_byz,
            "send_failures": self.send_failures,
            "probes_ok": self.probes_ok,
            "probes_failed": self.probes_failed,
            "messages_by_type": dict(self.messages_by_type),
        }


class LinkFaultRule:
    """One active link-degradation rule (see the module docstring).

    ``link_fraction`` selects a stable subset of directed links: membership
    is a pure hash of ``(selector_seed, src, dst)``, so a degraded link
    stays degraded for the rule's whole window (correlated loss/jitter, the
    way a congested WAN path behaves) and the selection is identical across
    worker processes.  ``extra_latency`` is a ``(low, high)`` uniform jitter
    range added to every matching transmission.  Loss drops datagrams; for
    reliable (TCP-modelled) sends it adds ``retransmit_delay`` instead —
    TCP masks loss as latency.  Duplication applies to datagrams only.
    """

    __slots__ = (
        "until",
        "loss_rate",
        "extra_latency",
        "duplicate_rate",
        "retransmit_delay",
        "link_fraction",
        "selector_seed",
        "_members",
    )

    def __init__(
        self,
        *,
        until: Optional[float] = None,
        loss_rate: float = 0.0,
        extra_latency: tuple[float, float] = (0.0, 0.0),
        duplicate_rate: float = 0.0,
        retransmit_delay: float = 0.05,
        link_fraction: float = 1.0,
        selector_seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1): {loss_rate}")
        if not 0.0 <= duplicate_rate <= 1.0:
            raise SimulationError(f"duplicate_rate must be in [0, 1]: {duplicate_rate}")
        low, high = extra_latency
        if low < 0.0 or high < low:
            raise SimulationError(f"invalid extra latency range: [{low}, {high}]")
        if not 0.0 < link_fraction <= 1.0:
            raise SimulationError(f"link_fraction must be in (0, 1]: {link_fraction}")
        if retransmit_delay < 0.0:
            raise SimulationError(f"retransmit_delay must be >= 0: {retransmit_delay}")
        self.until = until
        self.loss_rate = loss_rate
        self.extra_latency = (float(low), float(high))
        self.duplicate_rate = duplicate_rate
        self.retransmit_delay = retransmit_delay
        self.link_fraction = link_fraction
        self.selector_seed = selector_seed
        self._members: dict[tuple[NodeId, NodeId], bool] = {}

    def applies(self, src: NodeId, dst: NodeId) -> bool:
        if self.link_fraction >= 1.0:
            return True
        key = (src, dst)
        member = self._members.get(key)
        if member is None:
            digest = hashlib.sha256(
                f"{self.selector_seed}/{src.host}:{src.port}->"
                f"{dst.host}:{dst.port}".encode()
            ).digest()
            member = int.from_bytes(digest[:8], "big") / 2**64 < self.link_fraction
            self._members[key] = member
        return member


class ByzantineBehavior:
    """One Byzantine sender's corruption policy (see the module docstring).

    ``mutate_types`` names the message types whose outgoing payloads (or
    vote digests) get corrupted; ``rate`` corrupts only that fraction of
    matching sends (1.0 draws nothing extra for the gate); ``equivocate``
    switches from consistent per-``(sender, message)`` corruption to a
    fresh value per destination; ``spare`` destinations (fellow
    colluders) always receive the genuine frame.
    """

    __slots__ = ("mutate_types", "rate", "equivocate", "spare")

    def __init__(
        self,
        mutate_types: Iterable[str],
        *,
        rate: float = 1.0,
        equivocate: bool = False,
        spare: Iterable[NodeId] = (),
    ) -> None:
        self.mutate_types = frozenset(mutate_types)
        if not self.mutate_types:
            raise SimulationError("Byzantine sender needs at least one message type")
        if not 0.0 < rate <= 1.0:
            raise SimulationError(f"mutation rate must be in (0, 1]: {rate}")
        self.rate = rate
        self.equivocate = equivocate
        self.spare = frozenset(spare)


class Network:
    """Registry of simulated nodes plus the message-passing fabric."""

    def __init__(
        self,
        engine: Kernel,
        *,
        latency: Optional[LatencyModel] = None,
        seeds: Optional[SeedSequence] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1): {loss_rate}")
        self.engine = engine
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss_rate = loss_rate
        seeds = seeds if seeds is not None else SeedSequence(0)
        self.seeds = seeds
        self._rng: random.Random = seeds.stream("network")
        # Deliveries ride the engine's handle-free post fast path; the
        # pre-bound method drops two attribute hops from every send.  On a
        # shard-routed kernel every event additionally names the node that
        # consumes it, so the kernel can hand it to the owning shard —
        # `_post_for` stays None on single-shard kernels and each call
        # site branches on it (one attribute load + `is None`, cheaper
        # than an extra call frame on the hot path).
        self._post = engine.post
        self._post_for = engine.post_for if engine.routed else None
        self._nodes: dict[NodeId, "SimNode"] = {}
        self._alive: set[NodeId] = set()
        self._partition: Optional[dict[NodeId, int]] = None
        # Fault-injection hooks (repro.faults): active link-degradation
        # rules, receiver-side adversary filters, and the RNG stream the
        # rules draw from (created lazily so unfaulted runs never touch it).
        self._link_rules: list[LinkFaultRule] = []
        self._adversaries: dict[NodeId, frozenset[str]] = {}
        # Byzantine-sender hooks: per-node corruption policies and the
        # colluders' receiver-side drop filters (drop_types, spared set).
        self._byzantine: dict[NodeId, ByzantineBehavior] = {}
        self._collusion_drops: dict[NodeId, tuple[frozenset[str], frozenset[NodeId]]] = {}
        self._fault_rng: Optional[random.Random] = None
        # watched node -> {watcher -> callback}: the open-TCP-connection
        # registry behind Transport.watch (see module docstring).
        self._watchers: dict[NodeId, dict[NodeId, Callable[[NodeId], None]]] = {}
        self.stats = NetworkStats()
        self.trace: Optional[EventTrace] = None

    # ------------------------------------------------------------------
    # Node registry and liveness
    # ------------------------------------------------------------------
    def register(self, node: "SimNode") -> None:
        """Called by :class:`~repro.sim.node.SimNode` on construction."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id: {node.node_id}")
        self._nodes[node.node_id] = node
        self._alive.add(node.node_id)

    def node(self, node_id: NodeId) -> "SimNode":
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"unknown node: {node_id}") from None

    @property
    def node_ids(self) -> list[NodeId]:
        return list(self._nodes)

    @property
    def size(self) -> int:
        return len(self._nodes)

    def is_alive(self, node_id: NodeId) -> bool:
        return node_id in self._alive

    def alive_ids(self) -> list[NodeId]:
        return [node_id for node_id in self._nodes if node_id in self._alive]

    def fail(self, node_id: NodeId) -> None:
        """Crash a node: timers stop, messages to it are lost or reported,
        and every holder of an open connection to it (see :meth:`watch`)
        learns about the loss after one network delay — the TCP reset a
        crashed process's neighbours observe."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"unknown node: {node_id}")
        self._alive.discard(node_id)
        watchers = self._watchers.pop(node_id, None)
        if watchers:
            for watcher, callback in watchers.items():
                delay = self.latency.delay(node_id, watcher, self._rng)
                if self._post_for is None:
                    self._post(delay, self._notify_link_down, watcher, node_id, callback)
                else:
                    self._post_for(
                        watcher, delay, self._notify_link_down, watcher, node_id, callback
                    )
        # The crashed node's own held connections die with it: purge its
        # outgoing watch registrations so a later revived incarnation never
        # receives callbacks wired to the dead protocol instance.
        for watched in list(self._watchers):
            entry = self._watchers[watched]
            entry.pop(node_id, None)
            if not entry:
                del self._watchers[watched]

    def fail_many(self, node_ids: Iterable[NodeId]) -> None:
        for node_id in node_ids:
            self.fail(node_id)

    def recover(self, node_id: NodeId) -> None:
        """Mark a crashed node alive again.

        The node's protocol state is *not* restored to anything useful — a
        recovered process must rejoin the overlay, exactly as a restarted
        real process would.  The experiment harness performs the rejoin.
        An adversary registration dies with the old process: the restarted
        incarnation is honest until a plan corrupts it again (matching the
        live substrate, where a restart spawns a fresh RuntimeNode).
        """
        if node_id not in self._nodes:
            raise UnknownNodeError(f"unknown node: {node_id}")
        self._alive.add(node_id)
        self._adversaries.pop(node_id, None)
        # Byzantine registrations die with the old process too: the
        # restarted incarnation is honest until a plan corrupts it again.
        self._byzantine.pop(node_id, None)
        self._collusion_drops.pop(node_id, None)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def set_partitions(self, groups: Iterable[Iterable[NodeId]]) -> None:
        """Split the network: nodes can only reach others in their group.

        Nodes not listed in any group form one final implicit group.
        """
        mapping: dict[NodeId, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id in mapping:
                    raise SimulationError(f"node in two partition groups: {node_id}")
                mapping[node_id] = index
        self._partition = mapping

    def clear_partitions(self) -> None:
        self._partition = None

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------
    def add_link_rule(self, rule: LinkFaultRule) -> None:
        """Activate a link-degradation rule (expires itself via ``until``).

        The first rule creates the dedicated ``network/faults`` RNG stream;
        the stream is derived by label, so its existence never perturbs any
        other stream — an empty fault plan changes nothing.
        """
        if self._fault_rng is None:
            self._fault_rng = self.seeds.stream("network/faults")
        self._link_rules.append(rule)

    def clear_link_rules(self) -> None:
        self._link_rules.clear()

    @property
    def link_rules(self) -> Sequence[LinkFaultRule]:
        return tuple(self._link_rules)

    def set_adversary(self, node_id: NodeId, drop_types: Iterable[str]) -> None:
        """Make ``node_id`` silently ignore incoming messages whose type
        name is in ``drop_types`` (empty set restores honest behaviour).

        The node stays alive and reachable — reliable senders still see
        their sends succeed, which is exactly what makes this failure mode
        nasty: the failure detector never fires.
        """
        if node_id not in self._nodes:
            raise UnknownNodeError(f"unknown node: {node_id}")
        drops = frozenset(drop_types)
        if drops:
            self._adversaries[node_id] = drops
        else:
            self._adversaries.pop(node_id, None)

    def clear_adversaries(self) -> None:
        self._adversaries.clear()

    @property
    def adversaries(self) -> dict[NodeId, frozenset[str]]:
        return dict(self._adversaries)

    def set_byzantine(
        self, node_id: NodeId, behavior: Optional[ByzantineBehavior]
    ) -> None:
        """Install (or with ``None`` remove) a sender corruption policy.

        The first registration creates the dedicated ``network/faults``
        RNG stream (shared with the link rules); derived-by-label streams
        never perturb any other stream, so honest runs stay byte-identical.
        """
        if node_id not in self._nodes:
            raise UnknownNodeError(f"unknown node: {node_id}")
        if behavior is None:
            self._byzantine.pop(node_id, None)
            return
        if self._fault_rng is None:
            self._fault_rng = self.seeds.stream("network/faults")
        self._byzantine[node_id] = behavior

    def set_collusion(
        self,
        members: Iterable[NodeId],
        *,
        drop_types: Iterable[str] = (),
        mutate_types: Iterable[str] = (),
        rate: float = 1.0,
    ) -> None:
        """Recruit ``members`` as one coordinated adversary set.

        Members drop incoming ``drop_types`` frames from outsiders and
        corrupt outgoing ``mutate_types`` payloads to outsiders — fellow
        colluders are always spared on both dimensions.
        """
        spared = frozenset(members)
        for node_id in spared:
            if node_id not in self._nodes:
                raise UnknownNodeError(f"unknown node: {node_id}")
        drops = frozenset(drop_types)
        mutates = frozenset(mutate_types)
        if not drops and not mutates:
            raise SimulationError("collusion needs drop_types and/or mutate_types")
        for node_id in spared:
            if mutates:
                self.set_byzantine(
                    node_id,
                    ByzantineBehavior(mutates, rate=rate, spare=spared),
                )
            if drops:
                self._collusion_drops[node_id] = (drops, spared)

    def clear_collusion(self, members: Iterable[NodeId]) -> None:
        """Restore honesty for ``members`` (both collusion dimensions)."""
        for node_id in members:
            self._byzantine.pop(node_id, None)
            self._collusion_drops.pop(node_id, None)

    def byzantine_ids(self) -> set[NodeId]:
        """Nodes currently running a corruption or collusion policy."""
        return set(self._byzantine) | set(self._collusion_drops)

    def _degrade(
        self, src: NodeId, dst: NodeId, delay: float, reliable: bool
    ) -> tuple[float, bool, int]:
        """Apply active link rules to one transmission.

        Returns ``(delay, dropped, duplicates)``.  Expired rules are pruned
        lazily.  Only called when at least one rule is installed, so the
        unfaulted send path never pays for it (and never draws from the
        fault RNG stream).
        """
        now = self.engine.now
        rng = self._fault_rng
        dropped = False
        duplicates = 0
        expired = False
        for rule in self._link_rules:
            if rule.until is not None and now >= rule.until:
                expired = True
                continue
            if not rule.applies(src, dst):
                continue
            low, high = rule.extra_latency
            if high > 0.0:
                delay += rng.uniform(low, high)
            if rule.loss_rate > 0.0 and rng.random() < rule.loss_rate:
                if reliable:
                    delay += rule.retransmit_delay
                else:
                    dropped = True
            if not reliable and rule.duplicate_rate > 0.0:
                if rng.random() < rule.duplicate_rate:
                    duplicates += 1
        if expired:
            self._link_rules[:] = [
                rule
                for rule in self._link_rules
                if rule.until is None or now < rule.until
            ]
        return delay, dropped, duplicates

    def _corrupt(self, src: NodeId, dst: NodeId, message: Message) -> Message:
        """Apply ``src``'s Byzantine sender policy to one outgoing frame.

        Only called when at least one policy is installed.  Plain
        mutation derives its wrong value as a pure hash of ``(sender,
        message id)`` — consistent across destinations and free of RNG
        draws at rate 1.0; equivocation draws a fresh value per
        destination from the fault stream.
        """
        behavior = self._byzantine.get(src)
        if behavior is None or dst in behavior.spare:
            return message
        if type(message).__name__ not in behavior.mutate_types:
            return message
        if behavior.rate < 1.0 and self._fault_rng.random() >= behavior.rate:
            return message
        if behavior.equivocate:
            token = self._fault_rng.getrandbits(32)
            self.stats.equivocated_byz += 1
        else:
            key = f"byz/{src.host}:{src.port}/{getattr(message, 'message_id', message)}"
            token = int.from_bytes(hashlib.sha256(key.encode()).digest()[:4], "big")
            self.stats.mutated_byz += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "mutate-byz", src, dst, message)
        if hasattr(message, "payload"):
            return dataclasses.replace(message, payload=("byz", token))
        if hasattr(message, "digest"):
            return dataclasses.replace(message, digest=f"byz:{token:08x}")
        return message  # type carries no corruptible field: inert

    def _collusion_blocks(self, src: NodeId, dst: NodeId, message: Message) -> bool:
        entry = self._collusion_drops.get(dst)
        if entry is None:
            return False
        drops, spared = entry
        if src in spared or type(message).__name__ not in drops:
            return False
        self.stats.dropped_collusion += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "drop-collusion", src, dst, message)
        return True

    def _adversary_drops(self, dst: NodeId, message: Message) -> bool:
        drops = self._adversaries.get(dst)
        if drops is None or type(message).__name__ not in drops:
            return False
        self.stats.dropped_adversary += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "drop-adversary", dst, dst, message)
        return True

    def reachable(self, src: NodeId, dst: NodeId) -> bool:
        """True when a message from ``src`` can currently reach ``dst``."""
        if dst not in self._alive:
            return False
        if self._partition is None:
            return True
        implicit = -1
        return self._partition.get(src, implicit) == self._partition.get(dst, implicit)

    # ------------------------------------------------------------------
    # Message passing
    # ------------------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        on_failure: Optional[FailureCallback] = None,
    ) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        With ``on_failure`` the send is reliable (TCP semantics); without it
        the send is a datagram.  See the module docstring.

        Deliveries ride the engine's handle-free :meth:`~repro.sim.engine.
        Engine.post` fast path — nothing ever cancels an in-flight message,
        and experiments push millions of them.
        """
        stats = self.stats
        stats.sent += 1
        stats.messages_by_type[type(message).__name__] += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "send", src, dst, message)
        if self._byzantine:
            message = self._corrupt(src, dst, message)
        delay = self.latency.delay(src, dst, self._rng)
        duplicates = 0
        if self._link_rules:
            delay, dropped, duplicates = self._degrade(
                src, dst, delay, on_failure is not None
            )
            if dropped:
                stats.dropped_fault += 1
                if self.trace is not None:
                    self.trace.record(self.engine.now, "drop-fault", src, dst, message)
                return
        post_for = self._post_for
        if on_failure is not None:
            if self.reachable(src, dst):
                if post_for is None:
                    self._post(delay, self._deliver_reliable, src, dst, message, on_failure)
                else:
                    # Deliveries belong to the destination's shard.
                    post_for(dst, delay, self._deliver_reliable, src, dst, message, on_failure)
            else:
                # TCP reset / connect failure: the sender learns after one
                # network delay that the peer is gone.
                if post_for is None:
                    self._post(delay, self._notify_failure, src, dst, message, on_failure)
                else:
                    # Failure notifications run on the *sender's* shard.
                    post_for(src, delay, self._notify_failure, src, dst, message, on_failure)
            return
        if not self.reachable(src, dst):
            stats.dropped_dead += 1
            if self.trace is not None:
                self.trace.record(self.engine.now, "drop-dead", src, dst, message)
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            stats.dropped_loss += 1
            if self.trace is not None:
                self.trace.record(self.engine.now, "drop-loss", src, dst, message)
            return
        if post_for is None:
            self._post(delay, self._deliver, src, dst, message)
            for _ in range(duplicates):
                stats.duplicated_fault += 1
                extra = delay * (1.0 + self._fault_rng.random())
                self._post(extra, self._deliver, src, dst, message)
        else:
            post_for(dst, delay, self._deliver, src, dst, message)
            for _ in range(duplicates):
                stats.duplicated_fault += 1
                extra = delay * (1.0 + self._fault_rng.random())
                post_for(dst, extra, self._deliver, src, dst, message)

    def watch(self, src: NodeId, dst: NodeId, on_down: Callable[[NodeId], None]) -> None:
        """``src`` holds an open connection to ``dst`` (Transport.watch).

        If ``dst`` is already down the loss is reported immediately (after
        one delay), mirroring a connect that races with the crash.
        """
        if dst not in self._alive:
            delay = self.latency.delay(dst, src, self._rng)
            if self._post_for is None:
                self._post(delay, self._notify_link_down, src, dst, on_down)
            else:
                self._post_for(src, delay, self._notify_link_down, src, dst, on_down)
            return
        self._watchers.setdefault(dst, {})[src] = on_down

    def unwatch(self, src: NodeId, dst: NodeId) -> None:
        watchers = self._watchers.get(dst)
        if watchers is not None:
            watchers.pop(src, None)
            if not watchers:
                del self._watchers[dst]

    def _notify_link_down(
        self, watcher: NodeId, peer: NodeId, callback: Callable[[NodeId], None]
    ) -> None:
        if watcher not in self._alive:
            return
        if self.trace is not None:
            self.trace.record(self.engine.now, "link-down", peer, watcher, None)
        callback(peer)

    def probe(self, src: NodeId, dst: NodeId, on_result: ProbeCallback) -> None:
        """Connection attempt: the result arrives after one round trip."""
        rtt = 2 * self.latency.delay(src, dst, self._rng)
        ok = self.reachable(src, dst)
        if self.trace is not None:
            self.trace.record(self.engine.now, "probe", src, dst, None)
        if self._post_for is None:
            self._post(rtt, self._probe_result, src, dst, ok, on_result)
        else:
            # The probe outcome is consumed by the prober.
            self._post_for(src, rtt, self._probe_result, src, dst, ok, on_result)

    # ------------------------------------------------------------------
    # Internal delivery machinery
    # ------------------------------------------------------------------
    def _deliver(self, src: NodeId, dst: NodeId, message: Message) -> None:
        if dst not in self._alive:
            self.stats.dropped_dead += 1
            if self.trace is not None:
                self.trace.record(self.engine.now, "drop-dead", src, dst, message)
            return
        if self._adversaries and self._adversary_drops(dst, message):
            return
        if self._collusion_drops and self._collusion_blocks(src, dst, message):
            return
        self.stats.delivered += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "deliver", src, dst, message)
        self._nodes[dst].deliver(message)

    def _deliver_reliable(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        on_failure: FailureCallback,
    ) -> None:
        if dst not in self._alive:
            # The peer died while the message was in flight; TCP surfaces
            # this to the sender as a reset.
            self._notify_failure(src, dst, message, on_failure)
            return
        if self._adversaries and self._adversary_drops(dst, message):
            # The adversary accepted the frame over TCP and ignored it:
            # the sender observes a *successful* send.
            return
        if self._collusion_drops and self._collusion_blocks(src, dst, message):
            return
        self.stats.delivered += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "deliver", src, dst, message)
        self._nodes[dst].deliver(message)

    def _notify_failure(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        on_failure: FailureCallback,
    ) -> None:
        if src not in self._alive:
            return  # a crashed sender observes nothing
        self.stats.send_failures += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "send-failure", src, dst, message)
        on_failure(dst, message)

    def _probe_result(self, src: NodeId, dst: NodeId, ok: bool, on_result: ProbeCallback) -> None:
        if src not in self._alive:
            return
        if ok and dst not in self._alive:
            ok = False  # the peer died during the handshake
        if ok:
            self.stats.probes_ok += 1
        else:
            self.stats.probes_failed += 1
        on_result(dst, ok)
