"""Discrete-event simulation substrate (the PeerSim equivalent)."""

from .clock import SimClock
from .engine import Engine, EventHandle, PeriodicTask
from .latency import (
    ConstantLatency,
    CoordinateLatency,
    LatencyModel,
    UniformLatency,
    ZonedLatency,
    build_latency_model,
)
from .network import ByzantineBehavior, Network, NetworkStats
from .node import SimNode
from .transport import SimTransport
from .trace import EventTrace, TraceRecord

__all__ = [
    "ByzantineBehavior",
    "ConstantLatency",
    "CoordinateLatency",
    "Engine",
    "EventHandle",
    "EventTrace",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "PeriodicTask",
    "SimClock",
    "SimNode",
    "SimTransport",
    "TraceRecord",
    "UniformLatency",
    "ZonedLatency",
    "build_latency_model",
]
