"""Cross-shard worker protocol for the space-sharded kernel.

The sharded kernel (:mod:`repro.sim.sharded`) partitions the node space
into shards and synchronises them with a conservative lookahead window:
the minimum cross-shard link latency bounds how far any shard may run
ahead of the others, and every event that crosses a shard boundary
travels as a timestamped handoff, merged into the destination shard's
queue in fixed ``(time, seq)`` order.

This module is the *wire vocabulary* of that exchange — the records a
coordinator and its shard workers pass around.  Keeping it separate from
the engine does two jobs:

* the in-process :class:`~repro.sim.sharded.ShardedEngine` coordinator
  already speaks it (every outbox flush builds a :class:`HandoffBatch`),
  so the protocol is exercised by the byte-identity pins today;
* a future multi-process deployment serialises exactly these records
  over its worker pipes — the batch boundary is the process boundary.

Everything here is plain data with total ordering supplied by the
``(time, seq)`` keys; nothing imports the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, slots=True)
class HandoffBatch:
    """One window's worth of events crossing a single shard boundary.

    ``entries`` are the coordinator's heap entries,
    ``(priority, time, seq, callback, payload)`` tuples already carrying
    the global sequence numbers assigned at send time — merging a batch
    is therefore pure insertion; no re-ordering decisions are left to
    the receiver, which is what makes the merge deterministic by
    construction.
    """

    src_shard: int
    dst_shard: int
    entries: Tuple[tuple, ...]

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True, slots=True)
class WindowGrant:
    """Permission for one shard to advance its local clock.

    Under the conservative synchronisation rule a shard may safely fire
    every event strictly below ``until`` = min(other shards' next event
    times) + lookahead, because no event that could still arrive from
    another shard can be timestamped earlier.  The in-process coordinator
    computes grants for diagnostics (:meth:`ShardedEngine.window_grants`);
    a multi-process coordinator sends them to unblock workers.
    """

    shard: int
    until: float


@dataclass(slots=True)
class ShardSyncStats:
    """Synchronisation-cost counters, the honest-overhead ledger.

    The scalability probe in ``benchmarks/bench_kernel.py`` and the
    sharded tests read these to report what the window protocol actually
    cost a run: how many events crossed shards, how well they batched,
    and how often a send violated the lookahead bound (a violation is
    legal in-process — the coordinator just flushes early — but would
    stall a real multi-process window).
    """

    #: Events that crossed a shard boundary (buffered in an outbox).
    handoffs: int = 0
    #: Outbox flushes absorbed into destination queues.
    batches: int = 0
    #: Total events carried by those batches.
    batched_events: int = 0
    #: Handoffs scheduled closer than the lookahead window bound.
    lookahead_violations: int = 0

    def snapshot(self) -> dict:
        """Plain-dict view for timing records and test assertions."""
        return {
            "handoffs": self.handoffs,
            "batches": self.batches,
            "batched_events": self.batched_events,
            "lookahead_violations": self.lookahead_violations,
        }
