"""Simulated node: protocol container and message dispatcher.

A :class:`SimNode` is the equivalent of a PeerSim node with protocol slots.
Protocol instances register handlers for the message types they own; the
network delivers each incoming message to exactly one handler, dispatched by
message class.

Randomness: the node's own stream and every per-protocol stream handed out
by :meth:`SimNode.host` are :class:`~repro.common.rng.StreamRandom`
instances, so a frozen scenario stores each node's randomness as a
``(seed, words_consumed)`` pair (~60 bytes) instead of the full ~2.5 KB
Mersenne-Twister state — the dominant term of snapshot blobs at paper
scale before the compact encoding.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Type

from ..common.errors import SimulationError
from ..common.ids import NodeId
from ..common.interfaces import Host
from ..common.messages import Message
from .clock import SimClock
from .network import Network
from .transport import SimTransport

MessageHandler = Callable[[Message], None]


class SimNode:
    """One simulated process: identity, clock, transport, protocol stack."""

    __slots__ = ("node_id", "network", "clock", "transport", "rng", "_handlers", "_protocols", "unhandled", "generation")

    def __init__(self, node_id: NodeId, network: Network, *, rng: Optional[random.Random] = None) -> None:
        self.node_id = node_id
        self.network = network
        self.clock = SimClock(network, node_id)
        self.transport = SimTransport(network, node_id)
        self.rng = rng if rng is not None else network.seeds.node_stream(node_id)
        self._handlers: dict[Type[Message], MessageHandler] = {}
        self._protocols: dict[str, Any] = {}
        self.unhandled = 0
        self.generation = 0
        network.register(self)

    @property
    def alive(self) -> bool:
        return self.network.is_alive(self.node_id)

    def host(self, purpose: str = "protocol") -> Host:
        """Build the sans-io environment bundle for a protocol instance.

        Each protocol gets its own named RNG stream so adding a protocol to
        the stack never perturbs the random choices of the others; the
        stream label includes the node's incarnation (:attr:`generation`)
        so a revived process does not replay its predecessor's randomness.
        """
        label = purpose if self.generation == 0 else f"{purpose}@{self.generation}"
        return Host(
            address=self.node_id,
            clock=self.clock,
            transport=self.transport,
            rng=self.network.seeds.node_stream(self.node_id, label),
            incarnation=self.generation,
        )

    def reset(self) -> None:
        """Discard the protocol stack (a crashed process restarting fresh).

        Handlers and protocol slots are cleared and the incarnation counter
        advances; the caller wires a new stack and re-joins the overlay.
        """
        self._handlers.clear()
        self._protocols.clear()
        self.generation += 1

    # ------------------------------------------------------------------
    # Protocol stack
    # ------------------------------------------------------------------
    def attach(self, name: str, protocol: Any) -> Any:
        """Store a protocol instance under a stack-slot name (e.g.
        ``"membership"``, ``"gossip"``) for later retrieval."""
        if name in self._protocols:
            raise SimulationError(f"protocol slot already in use on {self.node_id}: {name!r}")
        self._protocols[name] = protocol
        return protocol

    def wire(self, name: str, protocol: Any) -> Any:
        """Attach a protocol and register all its message handlers.

        The protocol must expose ``handlers() -> dict[type, handler]``,
        which every protocol in this library does.
        """
        self.attach(name, protocol)
        for message_type, handler in protocol.handlers().items():
            self.register_handler(message_type, handler)
        return protocol

    def protocol(self, name: str) -> Any:
        try:
            return self._protocols[name]
        except KeyError:
            raise SimulationError(f"no protocol {name!r} on node {self.node_id}") from None

    def has_protocol(self, name: str) -> bool:
        return name in self._protocols

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def register_handler(self, message_type: Type[Message], handler: MessageHandler) -> None:
        """Route messages of exactly ``message_type`` to ``handler``."""
        if message_type in self._handlers:
            raise SimulationError(
                f"handler already registered for {message_type.__name__} on {self.node_id}"
            )
        self._handlers[message_type] = handler

    def deliver(self, message: Message) -> None:
        """Called by the network with an incoming message (node is alive)."""
        handler = self._handlers.get(type(message))
        if handler is None:
            # A message for a protocol this node does not run (e.g. late
            # traffic after reconfiguration).  Counted, not fatal.
            self.unhandled += 1
            return
        handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "up" if self.alive else "down"
        return f"<SimNode {self.node_id} {status} protocols={sorted(self._protocols)}>"
