"""Space-sharded simulation kernel: one event queue per node-space shard.

``ShardedEngine`` implements the :class:`~repro.common.interfaces.Kernel`
surface by partitioning the node space into ``shards`` and giving each
shard its own event queue.  Every event belongs to the shard of the node
that *consumes* it (the destination of a delivery, the watcher of a
link-down notification); events created while one shard's event is
firing that target another shard do not touch the destination queue
directly — they are buffered as timestamped handoffs in a per-boundary
outbox (:class:`~repro.sim.shardproto.HandoffBatch`) and merged in bulk
when the synchronisation window closes.

**Determinism by construction.**  Every insertion — local or handoff —
is stamped with a globally monotonic sequence number, and the merge loop
always fires the globally minimal ``(time, seq)`` entry (quantised-tick
mode orders by ``(quantised time, raw time, seq)``, matching the
single-shard engine's stable in-bucket sort).  That key is exactly the
single-shard :class:`~repro.sim.engine.Engine`'s global (time,
insertion-order) firing order, so a sharded run fires the same callbacks
in the same order with the same RNG draws as a single-shard run — which
is what the byte-identical fig2 pin asserts.

**Conservative lookahead.**  The minimum cross-shard link latency (the
``lookahead``) bounds how far one shard may advance past the others: a
handoff created at ``now`` cannot fire before ``now + lookahead``, so
outboxes only need merging once simulated time approaches their earliest
entry.  The in-process coordinator is sequential — the window rule here
buys *batching* (one :class:`HandoffBatch` per boundary per window), and
the same rule is what lets a future multi-process deployment run shards
concurrently inside their granted windows (:meth:`window_grants`).  A
handoff scheduled closer than the lookahead is legal in-process (the
coordinator just closes the window early) and is counted in
:attr:`sync` as a ``lookahead_violation`` — the honest measure of how
much concurrency the workload would really permit.

The coordinator is deliberately *not* built from per-shard ``Engine``
instances: the single-shard engine's bucket/wheel hot path stays
untouched (and its kernel-bench gates unaffected), while the sharded
path pays its bookkeeping openly — the ``bench_kernel.py`` scalability
probe reports that overhead rather than hiding it.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional, Sequence

from ..common.errors import SimulationError
from ..common.ids import NodeId
from ..common.interfaces import Kernel
from . import engine as _engine_mod
from .engine import COMPACTION_FLOOR, EventHandle
from .shardproto import HandoffBatch, ShardSyncStats, WindowGrant

__all__ = ["ShardedEngine"]


def _is_dead(entry: tuple) -> bool:
    """Whether a queue entry is a lazily-cancelled timer."""
    return entry[3] is None and entry[4]._cancelled


class ShardedEngine(Kernel):
    """Deterministic coordinator of per-shard event queues.

    Queue entries are ``(priority, time, seq, callback, payload)`` tuples;
    ``callback is None`` marks a cancellable timer whose
    :class:`~repro.sim.engine.EventHandle` rides in ``payload``, otherwise
    ``payload`` is the callback's argument tuple.  ``seq`` is globally
    unique, so heap comparisons never reach the unorderable callback.

    The engine duck-types the accounting surface
    (``_cancelled``/``_size``/``_compact_watermark``/``compact``) that
    :meth:`EventHandle.cancel` inlines, so the single-shard handle type is
    reused unchanged.
    """

    routed = True

    def __init__(
        self,
        shards: int = 2,
        start_time: float = 0.0,
        *,
        tick: Optional[float] = None,
        lookahead: float = 0.0,
    ) -> None:
        if shards < 1:
            raise SimulationError(f"shard count must be >= 1: {shards}")
        if tick is not None and tick <= 0:
            raise SimulationError(f"tick must be positive: {tick}")
        if lookahead < 0:
            raise SimulationError(f"lookahead must be non-negative: {lookahead}")
        self._shards = shards
        self._now = start_time
        self._tick = tick
        self._lookahead = lookahead
        #: Global insertion counter — the ``seq`` half of the merge key.
        self._seq = 0
        self._heaps: list[list[tuple]] = [[] for _ in range(shards)]
        #: Node -> owning shard; unknown owners fall back to shard 0 (the
        #: control shard for harness-level events).  Exactness never
        #: depends on the assignment — only batching efficiency does.
        self._owners: dict[NodeId, int] = {}
        #: (src_shard, dst_shard) -> buffered handoff entries, in seq order.
        self._outboxes: dict[tuple[int, int], list[tuple]] = {}
        self._outbox_pending = 0
        #: Lower bound on the earliest buffered handoff's firing time.
        self._outbox_min = math.inf
        #: Shard whose event is currently firing (None between events);
        #: decides which inserts are cross-shard handoffs.
        self._current_shard: Optional[int] = None
        self._size = 0
        self._processed = 0
        self._cancelled = 0
        self._compact_watermark = COMPACTION_FLOOR
        #: Synchronisation-cost ledger (see :mod:`repro.sim.shardproto`).
        self.sync = ShardSyncStats()

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return self._shards

    @property
    def lookahead(self) -> float:
        return self._lookahead

    def assign(self, node_id: NodeId, shard: int) -> None:
        """Pin ``node_id``'s events to ``shard``."""
        if not 0 <= shard < self._shards:
            raise SimulationError(
                f"shard {shard} out of range for {self._shards} shards"
            )
        self._owners[node_id] = shard

    def partition(self, node_ids: Sequence[NodeId]) -> None:
        """Assign ``node_ids`` to shards in contiguous equal blocks."""
        total = len(node_ids)
        shards = self._shards
        for index, node_id in enumerate(node_ids):
            self._owners[node_id] = index * shards // total

    def shard_of(self, owner: Optional[NodeId]) -> int:
        """The shard that processes events consumed by ``owner``."""
        if owner is None:
            return 0
        return self._owners.get(owner, 0)

    # ------------------------------------------------------------------
    # Kernel surface: time and counters
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def tick(self) -> Optional[float]:
        return self._tick

    @property
    def pending(self) -> int:
        return self._size

    @property
    def live_pending(self) -> int:
        return self._size - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        return self._cancelled

    @property
    def processed(self) -> int:
        return self._processed

    # ------------------------------------------------------------------
    # Kernel surface: scheduling
    # ------------------------------------------------------------------
    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._insert(None, self._now + delay, callback, args)

    def post_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        self._insert(None, when, callback, args)

    def post_for(
        self, owner: Optional[NodeId], delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._insert(owner, self._now + delay, callback, args)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._insert_timer(None, self._now + delay, callback, args)

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        return self._insert_timer(None, when, callback, args)

    def schedule_for(
        self, owner: Optional[NodeId], delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._insert_timer(owner, self._now + delay, callback, args)

    def _insert_timer(
        self, owner: Optional[NodeId], when: float, callback: Callable[..., None], args: tuple
    ) -> EventHandle:
        handle = EventHandle(when, callback, args, engine=self)
        self._insert(owner, when, None, handle)
        return handle

    def _insert(self, owner, when, callback, payload) -> None:
        tick = self._tick
        prio = when if tick is None else math.ceil(when / tick) * tick
        seq = self._seq
        self._seq = seq + 1
        entry = (prio, when, seq, callback, payload)
        self._size += 1
        src = self._current_shard
        if owner is None:
            # Harness/control events stay on the firing shard (shard 0
            # when idle) — exactness does not depend on placement.
            shard = 0 if src is None else src
        else:
            shard = self._owners.get(owner, 0)
        if src is not None and shard != src:
            # Cross-shard: buffer as a timestamped handoff; merged in
            # (time, seq) order when the window closes.
            self._outboxes.setdefault((src, shard), []).append(entry)
            self._outbox_pending += 1
            if when < self._outbox_min:
                self._outbox_min = when
            sync = self.sync
            sync.handoffs += 1
            if when - self._now < self._lookahead - 1e-12:
                sync.lookahead_violations += 1
        else:
            heappush(self._heaps[shard], entry)

    # ------------------------------------------------------------------
    # Window synchronisation
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Close the window: merge every outbox into its destination."""
        for (src, dst), entries in self._outboxes.items():
            if not entries:
                continue
            self._absorb(HandoffBatch(src_shard=src, dst_shard=dst, entries=tuple(entries)))
            entries.clear()
        self._outbox_pending = 0
        self._outbox_min = math.inf

    def _absorb(self, batch: HandoffBatch) -> None:
        heap = self._heaps[batch.dst_shard]
        for entry in batch.entries:
            heappush(heap, entry)
        self.sync.batches += 1
        self.sync.batched_events += len(batch)

    def _select(self) -> Optional[int]:
        """Shard holding the globally next live event, or ``None``.

        Pops lazily-cancelled timers found at queue heads, and closes the
        window first whenever a buffered handoff could precede the best
        in-queue candidate (``_outbox_min`` is a lower bound on every
        buffered priority, so comparing it against the candidate priority
        is conservative — flushing early is harmless, late is impossible).
        """
        while True:
            best = None
            best_key = None
            for shard, heap in enumerate(self._heaps):
                while heap:
                    head = heap[0]
                    if head[3] is None and head[4]._cancelled:
                        heappop(heap)
                        self._size -= 1
                        self._cancelled -= 1
                        continue
                    key = head[:3]
                    if best_key is None or key < best_key:
                        best_key = key
                        best = shard
                    break
            if self._outbox_pending and (
                best_key is None or self._outbox_min <= best_key[0]
            ):
                self._flush()
                continue
            return best

    def window_grants(self) -> tuple[WindowGrant, ...]:
        """Conservative per-shard advance bounds under the lookahead rule.

        Diagnostic view of the concurrency a multi-process run would get:
        shard *i* may fire everything strictly below min(other shards'
        earliest event) + lookahead.  O(pending) — not on any hot path.
        """
        heads: list[Optional[float]] = []
        for heap in self._heaps:
            live = [entry[0] for entry in heap if not _is_dead(entry)]
            heads.append(min(live) if live else None)
        grants = []
        for shard in range(self._shards):
            others = [h for i, h in enumerate(heads) if i != shard and h is not None]
            bound = min(others) + self._lookahead if others else math.inf
            grants.append(WindowGrant(shard=shard, until=bound))
        return tuple(grants)

    # ------------------------------------------------------------------
    # Kernel surface: execution
    # ------------------------------------------------------------------
    def _fire(self, shard: int) -> None:
        """Pop and fire the head of ``shard``'s queue."""
        prio, when, seq, callback, payload = heappop(self._heaps[shard])
        self._size -= 1
        self._processed += 1
        self._now = prio
        _engine_mod._fired_total += 1
        self._current_shard = shard
        try:
            if callback is None:
                payload._engine = None
                payload._callback(*payload._args)
            else:
                callback(*payload)
        finally:
            self._current_shard = None

    def step(self) -> bool:
        """Fire the single next event; ``False`` when the queue is empty."""
        shard = self._select()
        if shard is None:
            return False
        self._fire(shard)
        return True

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queues; returns the number of events fired."""
        fired = 0
        while True:
            shard = self._select()
            if shard is None:
                return fired
            self._fire(shard)
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"run_until_idle exceeded {max_events} events — runaway cascade?"
                )

    def run_until(self, deadline: float) -> int:
        """Fire every event with timestamp <= ``deadline``, then set the
        clock to ``deadline``.  Returns the number of events fired."""
        if deadline < self._now:
            raise SimulationError(f"deadline in the past: {deadline} < {self._now}")
        fired = 0
        while True:
            shard = self._select()
            if shard is None or self._heaps[shard][0][0] > deadline:
                break
            self._fire(shard)
            fired += 1
        self._now = deadline
        return fired

    def run_for(self, duration: float) -> int:
        """Fire events for ``duration`` simulated seconds from now."""
        return self.run_until(self._now + duration)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Physically remove lazily-cancelled timers from every queue."""
        if not self._cancelled:
            return 0
        removed = 0
        for heap in self._heaps:
            kept = [entry for entry in heap if not _is_dead(entry)]
            if len(kept) != len(heap):
                removed += len(heap) - len(kept)
                heap[:] = kept
                heapify(heap)
        for entries in self._outboxes.values():
            kept = [entry for entry in entries if not _is_dead(entry)]
            if len(kept) != len(entries):
                removed += len(entries) - len(kept)
                entries[:] = kept
        if removed:
            self._outbox_pending = sum(len(e) for e in self._outboxes.values())
            self._outbox_min = min(
                (entry[1] for entries in self._outboxes.values() for entry in entries),
                default=math.inf,
            )
        self._size -= removed
        self._cancelled -= removed
        self._compact_watermark = max(COMPACTION_FLOOR, 2 * self._cancelled)
        return removed

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle as per-shard sections of canonically sorted live entries.

        Refuses mid-window state: buffered handoffs belong to no shard's
        section until the window closes, so freezing with a non-empty
        outbox would tear a batch apart.  ``Scenario.freeze`` drains the
        kernel first, which also empties every outbox.
        """
        if self._outbox_pending:
            raise SimulationError(
                f"cannot snapshot a sharded kernel mid-window: "
                f"{self._outbox_pending} cross-shard handoff(s) still buffered; "
                f"run the kernel until the window closes before freezing"
            )
        state = dict(self.__dict__)
        sections = []
        dropped = 0
        for heap in self._heaps:
            live = sorted(entry for entry in heap if not _is_dead(entry))
            dropped += len(heap) - len(live)
            sections.append(live)
        state["_heaps"] = sections
        state["_size"] = self._size - dropped
        state["_cancelled"] = self._cancelled - dropped
        state["_outboxes"] = {}
        state["_outbox_min"] = math.inf
        state["_current_shard"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # A sorted list is a valid heap, but be explicit about the invariant.
        for heap in self._heaps:
            heapify(heap)
