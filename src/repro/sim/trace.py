"""Lightweight event tracing for simulations.

Tracing is off by default (the hot path only pays an ``if tracer`` check).
When attached to a :class:`~repro.sim.network.Network` it records message
sends, deliveries, drops and failure notifications, which the tests use to
assert fine-grained protocol behaviour (e.g. "the FORWARDJOIN walk took
exactly ARWL hops").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..common.ids import NodeId
from ..common.messages import Message


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced network event."""

    time: float
    kind: str  # "send" | "deliver" | "drop-loss" | "drop-dead" | "send-failure" | "probe"
    src: Optional[NodeId]
    dst: Optional[NodeId]
    message_type: str

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"[{self.time:.4f}] {self.kind:12s} {self.src} -> {self.dst} {self.message_type}"


class EventTrace:
    """Bounded in-memory trace of network events.

    ``limit`` caps memory; once full, the oldest records are discarded so a
    long-running simulation cannot exhaust memory because someone forgot to
    detach the tracer.
    """

    def __init__(self, limit: int = 100_000) -> None:
        self._limit = limit
        self._records: list[TraceRecord] = []
        self._dropped = 0

    def record(
        self,
        time: float,
        kind: str,
        src: Optional[NodeId],
        dst: Optional[NodeId],
        message: Optional[Message],
    ) -> None:
        if len(self._records) >= self._limit:
            # Discard the oldest half in one go; trimming one-by-one would be
            # quadratic over the life of the trace.  Keep at least one record:
            # with limit < 2 the floor division yields 0 and ``[-0:]`` would
            # keep *everything*, growing the buffer without bound.
            keep = max(1, self._limit // 2)
            self._dropped += max(0, len(self._records) - keep)
            self._records = self._records[-keep:]
        message_type = type(message).__name__ if message is not None else "-"
        self._records.append(TraceRecord(time, kind, src, dst, message_type))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped_records(self) -> int:
        """How many records were evicted due to the size limit."""
        return self._dropped

    def clear(self) -> None:
        self._records.clear()

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [record for record in self._records if record.kind == kind]

    def messages_of_type(self, type_name: str) -> list[TraceRecord]:
        return [record for record in self._records if record.message_type == type_name]

    def counts_by_type(self, kinds: Iterable[str] = ("send",)) -> Counter:
        """Histogram of message type names over the selected event kinds."""
        wanted = set(kinds)
        return Counter(
            record.message_type for record in self._records if record.kind in wanted
        )
