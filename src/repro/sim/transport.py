"""Simulated implementation of the sans-io :class:`Transport` interface."""

from __future__ import annotations

from typing import Callable, Optional

from ..common.ids import NodeId
from ..common.interfaces import FailureCallback, ProbeCallback, Transport
from ..common.messages import Message
from .network import Network


class SimTransport(Transport):
    """A node's handle on the simulated network fabric.

    Thin by design: all semantics (reliable vs. datagram, partitions, loss)
    live in :class:`~repro.sim.network.Network` so that tests can reason
    about one implementation.  That includes shard routing — the network
    resolves each event's consuming node against the
    :class:`~repro.common.interfaces.Kernel`'s owner-qualified surface, so
    the transport never touches engine internals and works unchanged on
    the single-shard and sharded kernels.
    """

    __slots__ = ("_network", "_local", "_network_send", "_network_probe")

    def __init__(self, network: Network, local: NodeId) -> None:
        self._network = network
        self._local = local
        # send() is the hottest call in the simulator (and probe() is hot
        # under churn); pre-binding the network methods skips two
        # attribute lookups per message.
        self._network_send = network.send
        self._network_probe = network.probe

    @property
    def local_address(self) -> NodeId:
        return self._local

    def send(
        self,
        dst: NodeId,
        message: Message,
        on_failure: Optional[FailureCallback] = None,
    ) -> None:
        self._network_send(self._local, dst, message, on_failure)

    def probe(self, dst: NodeId, on_result: ProbeCallback) -> None:
        self._network_probe(self._local, dst, on_result)

    def watch(self, dst: NodeId, on_down: Callable[[NodeId], None]) -> None:
        self._network.watch(self._local, dst, on_down)

    def unwatch(self, dst: NodeId) -> None:
        self._network.unwatch(self._local, dst)
