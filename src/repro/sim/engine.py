"""Discrete-event simulation kernel.

This is the substrate the paper gets from PeerSim [11]: a priority queue of
timestamped events plus helpers for periodic (cycle-driven) behaviour.  The
kernel is deliberately minimal and fast — a heap of ``(time, seq, event)``
tuples — because reproduction experiments push millions of message events
through it.

Two driving styles are supported, matching PeerSim's two modes:

* **event-driven** — schedule callbacks at arbitrary times and call
  :meth:`Engine.run_until_idle` / :meth:`Engine.run_until`;
* **cycle-driven** — the experiment harness invokes protocol cycles
  explicitly and drains the resulting event cascade between cycles, which is
  exactly how the paper alternates "membership cycles" and message batches.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional

from ..common.errors import SimulationError
from ..common.interfaces import TimerHandle


class EventHandle(TimerHandle):
    """Handle for a scheduled event; cancellation is O(1) (lazy removal)."""

    __slots__ = ("time", "_callback", "_args", "_cancelled")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple) -> None:
        self.time = time
        self._callback: Optional[Callable[..., None]] = callback
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        # Drop references so cancelled events pinned in the heap do not keep
        # large object graphs alive.
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled and self._callback is not None:
            self._callback(*self._args)


class Engine:
    """The simulation event loop.

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which makes runs fully deterministic given deterministic callbacks.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._sequence = count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued events, including lazily-cancelled ones."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Total events fired since the engine was created."""
        return self._processed

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        handle = EventHandle(when, callback, args)
        heapq.heappush(self._queue, (when, next(self._sequence), handle))
        return handle

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Fire the earliest event.  Returns ``False`` when the queue is
        empty (time does not advance in that case)."""
        while self._queue:
            when, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            self._processed += 1
            handle._fire()
            return True
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events fired.

        ``max_events`` guards against runaway cascades (a protocol bug that
        schedules unboundedly); exceeding it raises :class:`SimulationError`
        instead of hanging the test suite.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(f"run_until_idle exceeded {max_events} events — runaway cascade?")
        return fired

    def run_until(self, deadline: float) -> int:
        """Fire every event with timestamp <= ``deadline``, then set the
        clock to ``deadline``.  Returns the number of events fired."""
        if deadline < self._now:
            raise SimulationError(f"deadline in the past: {deadline} < {self._now}")
        fired = 0
        while self._queue:
            when, _seq, handle = self._queue[0]
            if when > deadline:
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            self._processed += 1
            handle._fire()
            fired += 1
        self._now = deadline
        return fired

    def run_for(self, duration: float) -> int:
        """Convenience: :meth:`run_until` ``now + duration``."""
        return self.run_until(self._now + duration)


class PeriodicTask:
    """Repeatedly invokes a callback every ``period`` seconds.

    Used for self-driven protocol cycles (live simulations and the asyncio
    runtime style); the experiment harness instead triggers cycles manually
    for lock-step control.  An optional start ``jitter`` desynchronises node
    cycles the way real deployments are desynchronised.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        if jitter < 0:
            raise SimulationError(f"jitter must be non-negative: {jitter}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._handle = self._engine.schedule(self._jitter + self._period, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:  # the callback may have stopped us
            self._handle = self._engine.schedule(self._period, self._tick)
