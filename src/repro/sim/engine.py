"""Discrete-event simulation kernel.

This is the substrate the paper gets from PeerSim [11]: a priority queue of
timestamped events plus helpers for periodic (cycle-driven) behaviour.  The
kernel is deliberately minimal and fast — a heap of plain tuples — because
reproduction experiments push millions of message events through it.

Two driving styles are supported, matching PeerSim's two modes:

* **event-driven** — schedule callbacks at arbitrary times and call
  :meth:`Engine.run_until_idle` / :meth:`Engine.run_until`;
* **cycle-driven** — the experiment harness invokes protocol cycles
  explicitly and drains the resulting event cascade between cycles, which is
  exactly how the paper alternates "membership cycles" and message batches.

Two scheduling APIs serve two traffic classes:

* :meth:`Engine.schedule` / :meth:`Engine.schedule_at` return a cancellable
  :class:`EventHandle` — for timers, which protocols routinely cancel;
* :meth:`Engine.post` / :meth:`Engine.post_at` are the allocation-light fast
  path for events that are *never* cancelled (message deliveries, probe
  results): no handle object is created, the heap holds a bare
  ``(time, seq, callback, args)`` tuple.  Both kinds coexist in one heap —
  the unique per-engine sequence number guarantees tuple comparison never
  reaches the third element.

Cancellation stays O(1) and lazy, but the engine now *counts* lazily
cancelled events and compacts the heap whenever they outnumber the live
ones (beyond a small floor), so a workload that cancels millions of timers
— e.g. per-message retransmit timers that are almost always acked — no
longer drags a dead heap behind it.  :attr:`Engine.live_pending` reports
the true outstanding-event count.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional

from ..common.errors import SimulationError
from ..common.interfaces import TimerHandle

#: Compaction never triggers below this many cancelled events: tiny heaps
#: are cheap to carry and rebuilding them would cost more than it saves.
COMPACTION_FLOOR = 64


class EventHandle(TimerHandle):
    """Handle for a scheduled event; cancellation is O(1) (lazy removal)."""

    __slots__ = ("time", "_callback", "_args", "_cancelled", "_engine")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self._callback: Optional[Callable[..., None]] = callback
        self._args = args
        self._cancelled = False
        # Back-reference while the event sits in the queue, so cancellation
        # can be counted; cleared when the event fires or is compacted away.
        self._engine = engine

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references so cancelled events pinned in the heap do not keep
        # large object graphs alive.
        self._callback = None
        self._args = ()
        engine = self._engine
        if engine is not None:
            self._engine = None
            engine._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled and self._callback is not None:
            self._callback(*self._args)


class Engine:
    """The simulation event loop.

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which makes runs fully deterministic given deterministic callbacks.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        # Entries are (time, seq, EventHandle) for cancellable timers and
        # (time, seq, callback, args) for post()ed fire-and-forget events.
        self._queue: list[tuple] = []
        self._sequence = count()
        self._processed = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued events, *including* lazily-cancelled ones.

        For "is there outstanding work?" checks use :attr:`live_pending`
        instead — a heap full of cancelled timers is not pending work.
        """
        return len(self._queue)

    @property
    def live_pending(self) -> int:
        """Number of queued events that will actually fire."""
        return len(self._queue) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Number of lazily-cancelled events still occupying the heap."""
        return self._cancelled

    @property
    def processed(self) -> int:
        """Total events fired since the engine was created."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        handle = EventHandle(when, callback, args, self)
        heapq.heappush(self._queue, (when, next(self._sequence), handle))
        return handle

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def post_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: schedule a *non-cancellable* event at time ``when``.

        No handle is allocated; the heap entry is a bare tuple.  Use for
        high-volume events nothing ever cancels (message deliveries).
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        heapq.heappush(self._queue, (when, next(self._sequence), callback, args))

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: :meth:`post_at` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), callback, args)
        )

    # ------------------------------------------------------------------
    # Compaction of lazily-cancelled events
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled > COMPACTION_FLOOR and self._cancelled * 2 > len(self._queue):
            self.compact()

    def compact(self) -> int:
        """Physically remove lazily-cancelled events; returns how many.

        Rebuilds in place (the queue list keeps its identity) so run loops
        holding a local reference to the queue observe the compaction.
        """
        if not self._cancelled:
            return 0
        queue = self._queue
        kept = [entry for entry in queue if not (len(entry) == 3 and entry[2]._cancelled)]
        removed = len(queue) - len(kept)
        queue[:] = kept
        heapq.heapify(queue)
        self._cancelled = 0
        return removed

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the earliest event.  Returns ``False`` when the queue is
        empty (time does not advance in that case)."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 3:
                handle = entry[2]
                if handle._cancelled:
                    self._cancelled -= 1
                    continue
                handle._engine = None
                self._now = entry[0]
                self._processed += 1
                handle._fire()
            else:
                self._now = entry[0]
                self._processed += 1
                entry[2](*entry[3])
            return True
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events fired.

        ``max_events`` guards against runaway cascades (a protocol bug that
        schedules unboundedly); exceeding it raises :class:`SimulationError`
        instead of hanging the test suite.
        """
        # The drain loop is the hottest code in the simulator: pop and
        # dispatch inline rather than paying a step() call per event.
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        try:
            while queue:
                entry = pop(queue)
                if len(entry) == 3:
                    handle = entry[2]
                    if handle._cancelled:
                        self._cancelled -= 1
                        continue
                    handle._engine = None
                    self._now = entry[0]
                    fired += 1
                    handle._callback(*handle._args)
                else:
                    self._now = entry[0]
                    fired += 1
                    entry[2](*entry[3])
                if max_events is not None and fired > max_events:
                    raise SimulationError(
                        f"run_until_idle exceeded {max_events} events — runaway cascade?"
                    )
        finally:
            self._processed += fired
        return fired

    def run_until(self, deadline: float) -> int:
        """Fire every event with timestamp <= ``deadline``, then set the
        clock to ``deadline``.  Returns the number of events fired."""
        if deadline < self._now:
            raise SimulationError(f"deadline in the past: {deadline} < {self._now}")
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        try:
            while queue:
                if queue[0][0] > deadline:
                    break
                entry = pop(queue)
                if len(entry) == 3:
                    handle = entry[2]
                    if handle._cancelled:
                        self._cancelled -= 1
                        continue
                    handle._engine = None
                    self._now = entry[0]
                    fired += 1
                    handle._callback(*handle._args)
                else:
                    self._now = entry[0]
                    fired += 1
                    entry[2](*entry[3])
        finally:
            self._processed += fired
        self._now = deadline
        return fired

    def run_for(self, duration: float) -> int:
        """Convenience: :meth:`run_until` ``now + duration``."""
        return self.run_until(self._now + duration)


class PeriodicTask:
    """Repeatedly invokes a callback every ``period`` seconds.

    Used for self-driven protocol cycles (live simulations and the asyncio
    runtime style); the experiment harness instead triggers cycles manually
    for lock-step control.  An optional start ``jitter`` desynchronises node
    cycles the way real deployments are desynchronised.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        if jitter < 0:
            raise SimulationError(f"jitter must be non-negative: {jitter}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._handle = self._engine.schedule(self._jitter + self._period, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:  # the callback may have stopped us
            self._handle = self._engine.schedule(self._period, self._tick)
