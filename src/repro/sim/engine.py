"""Discrete-event simulation kernel.

This is the substrate the paper gets from PeerSim [11]: a timestamp-ordered
event queue plus helpers for periodic (cycle-driven) behaviour.  The kernel
is deliberately minimal and fast because reproduction experiments push
millions of message events through it.

Two driving styles are supported, matching PeerSim's two modes:

* **event-driven** — schedule callbacks at arbitrary times and call
  :meth:`Engine.run_until_idle` / :meth:`Engine.run_until`;
* **cycle-driven** — the experiment harness invokes protocol cycles
  explicitly and drains the resulting event cascade between cycles, which is
  exactly how the paper alternates "membership cycles" and message batches.

**Queue layout (the bucket/calendar queue).**  Simulated latencies take few
distinct values, so at any instant the pending events cluster on a handful
of distinct timestamps.  The queue exploits that: events live in per-
timestamp FIFO *buckets* (``dict[float, list]``), and a small binary heap
indexes just the distinct timestamps.  Posting into an existing bucket is
an O(1) list append (the common case: every delivery of one broadcast hop
shares a timestamp); the heap is only touched when a *new* timestamp
appears — for far-future timers that overflow past the currently-active
times, and once per bucket on the drain side.  A one-entry *hot bucket*
cache short-circuits even the dict lookup for back-to-back posts at the
same instant.  Within a bucket events fire in insertion order, which is
exactly the global ``(time, insertion)`` order the previous heap-of-tuples
implementation guaranteed — event ordering is byte-identical, it just no
longer costs a heap push/pop per event.

Two scheduling APIs serve two traffic classes:

* :meth:`Engine.schedule` / :meth:`Engine.schedule_at` return a cancellable
  :class:`EventHandle` — for timers, which protocols routinely cancel;
* :meth:`Engine.post` / :meth:`Engine.post_at` are the allocation-light fast
  path for events that are *never* cancelled (message deliveries, probe
  results): no handle object is created, the bucket holds the bare callback
  and argument tuple.

Cancellation stays O(1) and lazy, and the engine *counts* lazily cancelled
events and compacts the buckets whenever they outnumber the live ones
(beyond a small floor), so a workload that cancels millions of timers —
e.g. per-message retransmit timers that are almost always acked — never
drags a dead queue behind it.  :attr:`Engine.live_pending` reports the true
outstanding-event count.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from ..common.errors import SimulationError
from ..common.interfaces import TimerHandle

#: Compaction never triggers below this many cancelled events: tiny queues
#: are cheap to carry and rebuilding them would cost more than it saves.
COMPACTION_FLOOR = 64

#: Marker stored in a bucket slot in place of a callback to flag that the
#: following slot holds a cancellable :class:`EventHandle` instead of a
#: plain argument tuple.  ``None`` can never be a callback.
_HANDLE = None

# Process-wide count of events fired by every engine in this process; the
# orchestrator samples it around each work unit to report kernel events/s
# in the TIMINGS artifacts (observability only, never in BENCH artifacts).
_fired_total = 0


def events_fired_total() -> int:
    """Events fired by all engines in this process since import."""
    return _fired_total


class EventHandle(TimerHandle):
    """Handle for a scheduled event; cancellation is O(1) (lazy removal)."""

    __slots__ = ("time", "_callback", "_args", "_cancelled", "_engine")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self._callback: Optional[Callable[..., None]] = callback
        self._args = args
        self._cancelled = False
        # Back-reference while the event sits in the queue, so cancellation
        # can be counted; cleared when the event fires or is compacted away.
        self._engine = engine

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references so cancelled events pinned in the queue do not
        # keep large object graphs alive.
        self._callback = None
        self._args = ()
        engine = self._engine
        if engine is not None:
            self._engine = None
            engine._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled and self._callback is not None:
            self._callback(*self._args)


class Engine:
    """The simulation event loop.

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which makes runs fully deterministic given deterministic callbacks.
    """

    def __init__(self, start_time: float = 0.0, *, tick: Optional[float] = None) -> None:
        if tick is not None and tick <= 0:
            raise SimulationError(f"tick must be positive: {tick}")
        self._now = start_time
        # Quantised-tick mode (off by default): event timestamps are rounded
        # *up* to a multiple of ``tick`` so latency models with continuous
        # jitter (UniformLatency, WAN fault rules) share buckets instead of
        # degenerating to one event per bucket.  Within a quantised bucket
        # events fire stable-sorted by their raw timestamps (``_raws`` holds
        # one raw time per entry, parallel to the bucket pairs), preserving
        # the global (time, insertion) order up to the tick resolution.
        self._tick = tick
        self._raws: dict[float, list[float]] = {}
        # timestamp -> flat FIFO bucket [cb, args, cb, args, ...]; timer
        # entries use the (_HANDLE, EventHandle) slot pair instead.
        self._buckets: dict[float, list] = {}
        # Heap of the distinct pending timestamps (one entry per bucket).
        self._times: list[float] = []
        # Most recently appended-to bucket: posts during a drain almost
        # always target one future instant (now + the constant latency),
        # so this skips the dict lookup for all but the first of them.
        self._hot_time: Optional[float] = None
        self._hot_bucket: Optional[list] = None
        self._size = 0
        self._processed = 0
        self._cancelled = 0
        # Auto-compaction threshold.  Raised (exponential backoff) when a
        # compaction cannot reclaim anything — entries of a bucket that is
        # mid-drain have left the queue structures and are unreachable
        # until the drain loop skips them — so mass same-instant cancels
        # cost O(Q log N) in rebuilds, not a full scan per cancel.
        self._compact_watermark = COMPACTION_FLOOR

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def tick(self) -> Optional[float]:
        """Quantisation step for event timestamps, or ``None`` (exact)."""
        return self._tick

    @property
    def pending(self) -> int:
        """Number of queued events, *including* lazily-cancelled ones.

        For "is there outstanding work?" checks use :attr:`live_pending`
        instead — a queue full of cancelled timers is not pending work.
        """
        return self._size

    @property
    def live_pending(self) -> int:
        """Number of queued events that will actually fire."""
        return self._size - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Number of lazily-cancelled events still occupying the queue."""
        return self._cancelled

    @property
    def processed(self) -> int:
        """Total events fired since the engine was created."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _quantise(self, when: float) -> float:
        """Round ``when`` *up* to the next tick multiple (never earlier)."""
        tick = self._tick
        return math.ceil(when / tick) * tick

    def _append_quantised(self, when: float, first: Any, second: Any) -> None:
        """Quantised-mode append: pair into the tick bucket, raw time into
        the parallel ``_raws`` list (the in-bucket sort key)."""
        q = self._quantise(when)
        bucket = self._buckets.get(q)
        if bucket is None:
            self._buckets[q] = [first, second]
            self._raws[q] = [when]
            heappush(self._times, q)
        else:
            bucket.append(first)
            bucket.append(second)
            self._raws[q].append(when)

    def _take_quantised(self, when: float) -> tuple[list, list[float]]:
        """Stable-sort one quantised bucket by raw timestamp.

        Returns the re-ordered flat pair list and the matching sorted raw
        times; both have been removed from the queue structures (the heap
        entry for ``when`` is the caller's to keep or pop).
        """
        bucket = self._buckets.pop(when)
        raws = self._raws.pop(when)
        order = sorted(range(len(raws)), key=raws.__getitem__)
        flat: list = []
        append = flat.append
        for index in order:
            append(bucket[2 * index])
            append(bucket[2 * index + 1])
        return flat, [raws[index] for index in order]

    def _append(self, when: float, first: Any, second: Any) -> None:
        """Append one two-slot entry to the bucket for ``when``."""
        if self._tick is not None:
            self._append_quantised(when, first, second)
            return
        if when == self._hot_time:
            bucket = self._hot_bucket
            bucket.append(first)
            bucket.append(second)
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = [first, second]
            self._buckets[when] = bucket
            heappush(self._times, when)
        else:
            bucket.append(first)
            bucket.append(second)
        self._hot_time = when
        self._hot_bucket = bucket

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        handle = EventHandle(when, callback, args, self)
        self._append(when, _HANDLE, handle)
        self._size += 1
        return handle

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def post_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: schedule a *non-cancellable* event at time ``when``.

        No handle is allocated; the bucket holds the bare callback and
        argument tuple.  Use for high-volume events nothing ever cancels
        (message deliveries).
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        self._append(when, callback, args)
        self._size += 1

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: :meth:`post_at` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        when = self._now + delay
        if self._tick is not None:
            self._append_quantised(when, callback, args)
            self._size += 1
            return
        # Inlined _append: this is the hottest call in the simulator.
        if when == self._hot_time:
            bucket = self._hot_bucket
        else:
            bucket = self._buckets.get(when)
            if bucket is None:
                bucket = []
                self._buckets[when] = bucket
                heappush(self._times, when)
            self._hot_time = when
            self._hot_bucket = bucket
        bucket.append(callback)
        bucket.append(args)
        self._size += 1

    # ------------------------------------------------------------------
    # Compaction of lazily-cancelled events
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled > self._compact_watermark and self._cancelled * 2 > self._size:
            self.compact()

    def compact(self) -> int:
        """Physically remove lazily-cancelled events; returns how many.

        Buckets and the timestamp heap are rebuilt *in place* (both keep
        their identity) so run loops holding local references observe the
        compaction.  Entries of a bucket that is being drained right now
        have already left the queue structures and are skipped (and
        accounted) by the drain loop itself.
        """
        if not self._cancelled:
            return 0
        buckets = self._buckets
        quantised = self._tick is not None
        removed = 0
        for when in list(buckets):
            bucket = buckets[when]
            raws = self._raws.get(when) if quantised else None
            kept: list = []
            kept_raws: list[float] = []
            append = kept.append
            index = 0
            it = iter(bucket)
            for first in it:
                second = next(it)
                slot = index
                index += 1
                if first is _HANDLE and second._cancelled:
                    second._engine = None
                    removed += 1
                else:
                    append(first)
                    append(second)
                    if raws is not None:
                        kept_raws.append(raws[slot])
            if kept:
                bucket[:] = kept
                if raws is not None:
                    raws[:] = kept_raws
            else:
                del buckets[when]
                if raws is not None:
                    del self._raws[when]
        # Rebuild the timestamp index in place: one entry per surviving
        # bucket (drop times whose buckets emptied).
        self._times[:] = buckets
        heapify(self._times)
        self._hot_time = None
        self._hot_bucket = None
        self._size -= removed
        self._cancelled -= removed
        # Any remainder is pinned in a mid-drain bucket; back off so the
        # next few cancels do not rescan everything for nothing.  A clean
        # sweep resets the watermark to the floor.
        self._compact_watermark = max(COMPACTION_FLOOR, 2 * self._cancelled)
        return removed

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _salvage(self, when: float, remainder: list) -> None:
        """Re-queue the un-fired tail of a bucket whose drain raised.

        Keeps the queue consistent when a callback (or the runaway-cascade
        guard) raises mid-bucket: the remaining entries go back in front of
        anything posted at ``when`` during the partial drain.
        """
        if not remainder:
            return
        existing = self._buckets.get(when)
        if existing is None:
            self._buckets[when] = remainder
            heappush(self._times, when)
        else:
            existing[:0] = remainder  # older entries fire first
        if self._tick is not None:
            # Re-queued entries fired at ``when``; their pre-sort raw times
            # are gone, so they keep their position via raw == when (exact
            # ordering after an aborted drain is moot — the run is failing).
            raws = self._raws.setdefault(when, [])
            raws[:0] = [when] * (len(remainder) // 2)
        self._hot_time = None
        self._hot_bucket = None

    def _step_quantised(self) -> bool:
        """Quantised-mode :meth:`step`: pop the earliest tick bucket,
        stable-sort it by raw timestamp, fire its first live entry."""
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket, raws = self._take_quantised(when)
            index = 0
            count = len(raws)
            while index < count:
                first = bucket[2 * index]
                second = bucket[2 * index + 1]
                index += 1
                if first is _HANDLE:
                    if second._cancelled:
                        self._cancelled -= 1
                        self._size -= 1
                        continue
                    second._engine = None
                self._size -= 1
                remainder = bucket[2 * index:]
                if remainder:
                    buckets[when] = remainder
                    self._raws[when] = raws[index:]
                else:
                    heappop(times)
                self._now = when
                self._processed += 1
                global _fired_total
                _fired_total += 1
                if first is _HANDLE:
                    second._fire()
                else:
                    first(*second)
                return True
            heappop(times)  # entire bucket was cancelled entries
        return False

    def step(self) -> bool:
        """Fire the earliest event.  Returns ``False`` when the queue is
        empty (time does not advance in that case)."""
        if self._tick is not None:
            return self._step_quantised()
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket = buckets[when]
            index = 0
            while index < len(bucket):
                first = bucket[index]
                second = bucket[index + 1]
                index += 2
                if first is _HANDLE:
                    if second._cancelled:
                        self._cancelled -= 1
                        self._size -= 1
                        continue
                    second._engine = None
                self._size -= 1
                # Re-stash the un-fired remainder *before* the callback
                # runs, so nested posts at the same instant land after it.
                remainder = bucket[index:]
                if remainder:
                    bucket[:] = remainder
                else:
                    del buckets[when]
                    heappop(times)
                if when == self._hot_time:
                    self._hot_time = None
                    self._hot_bucket = None
                self._now = when
                self._processed += 1
                global _fired_total
                _fired_total += 1
                if first is _HANDLE:
                    second._fire()
                else:
                    first(*second)
                return True
            # Entire bucket was cancelled entries.
            del buckets[when]
            heappop(times)
            if when == self._hot_time:
                self._hot_time = None
                self._hot_bucket = None
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events fired.

        ``max_events`` guards against runaway cascades (a protocol bug that
        schedules unboundedly); exceeding it raises :class:`SimulationError`
        instead of hanging the test suite.
        """
        # The drain loop is the hottest code in the simulator: take one
        # whole bucket at a time and dispatch its entries inline.  Posts
        # from callbacks at the *same* instant open a fresh bucket, which
        # the next iteration of the outer loop picks up — preserving the
        # global (time, insertion-order) firing order exactly.
        times = self._times
        buckets = self._buckets
        fired = 0
        cancelled_skipped = 0
        try:
            while times:
                when = heappop(times)
                if self._tick is None:
                    bucket = buckets.pop(when)
                else:
                    bucket, _ = self._take_quantised(when)
                if when == self._hot_time:
                    self._hot_time = None
                    self._hot_bucket = None
                self._now = when
                it = iter(bucket)
                try:
                    for first in it:
                        second = next(it)
                        if first is _HANDLE:
                            if second._cancelled:
                                cancelled_skipped += 1
                                continue
                            second._engine = None
                            fired += 1
                            second._callback(*second._args)
                        else:
                            fired += 1
                            first(*second)
                        if max_events is not None and fired > max_events:
                            raise SimulationError(
                                f"run_until_idle exceeded {max_events} events — runaway cascade?"
                            )
                except BaseException:
                    self._salvage(when, list(it))
                    raise
        finally:
            self._processed += fired
            self._size -= fired + cancelled_skipped
            self._cancelled -= cancelled_skipped
            global _fired_total
            _fired_total += fired
        return fired

    def run_until(self, deadline: float) -> int:
        """Fire every event with timestamp <= ``deadline``, then set the
        clock to ``deadline``.  Returns the number of events fired."""
        if deadline < self._now:
            raise SimulationError(f"deadline in the past: {deadline} < {self._now}")
        times = self._times
        buckets = self._buckets
        fired = 0
        cancelled_skipped = 0
        try:
            while times:
                when = times[0]
                if when > deadline:
                    break
                heappop(times)
                if self._tick is None:
                    bucket = buckets.pop(when)
                else:
                    bucket, _ = self._take_quantised(when)
                if when == self._hot_time:
                    self._hot_time = None
                    self._hot_bucket = None
                self._now = when
                it = iter(bucket)
                try:
                    for first in it:
                        second = next(it)
                        if first is _HANDLE:
                            if second._cancelled:
                                cancelled_skipped += 1
                                continue
                            second._engine = None
                            fired += 1
                            second._callback(*second._args)
                        else:
                            fired += 1
                            first(*second)
                except BaseException:
                    self._salvage(when, list(it))
                    raise
        finally:
            self._processed += fired
            self._size -= fired + cancelled_skipped
            self._cancelled -= cancelled_skipped
            global _fired_total
            _fired_total += fired
        self._now = deadline
        return fired

    def run_for(self, duration: float) -> int:
        """Convenience: :meth:`run_until` ``now + duration``."""
        return self.run_until(self._now + duration)

    # ------------------------------------------------------------------
    # Pickling (scenario snapshots)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The hot-bucket cache is a pure accelerator; dropping it keeps
        # snapshots of otherwise-identical engines byte-identical no
        # matter which instant was posted to last.
        state = {slot: getattr(self, slot) for slot in self.__dict__}
        state["_hot_time"] = None
        state["_hot_bucket"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class PeriodicTask:
    """Repeatedly invokes a callback every ``period`` seconds.

    Used for self-driven protocol cycles (live simulations and the asyncio
    runtime style); the experiment harness instead triggers cycles manually
    for lock-step control.  An optional start ``jitter`` desynchronises node
    cycles the way real deployments are desynchronised.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        if jitter < 0:
            raise SimulationError(f"jitter must be non-negative: {jitter}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._handle = self._engine.schedule(self._jitter + self._period, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:  # the callback may have stopped us
            self._handle = self._engine.schedule(self._period, self._tick)
