"""Discrete-event simulation kernel.

This is the substrate the paper gets from PeerSim [11]: a timestamp-ordered
event queue plus helpers for periodic (cycle-driven) behaviour.  The kernel
is deliberately minimal and fast because reproduction experiments push
millions of message events through it.

Two driving styles are supported, matching PeerSim's two modes:

* **event-driven** — schedule callbacks at arbitrary times and call
  :meth:`Engine.run_until_idle` / :meth:`Engine.run_until`;
* **cycle-driven** — the experiment harness invokes protocol cycles
  explicitly and drains the resulting event cascade between cycles, which is
  exactly how the paper alternates "membership cycles" and message batches.

**Queue layout (the bucket/calendar queue).**  Simulated latencies take few
distinct values, so at any instant the pending events cluster on a handful
of distinct timestamps.  The queue exploits that: events live in per-
timestamp FIFO *buckets* (``dict[float, list]``), and a small binary heap
indexes just the distinct timestamps.  Posting into an existing bucket is
an O(1) list append (the common case: every delivery of one broadcast hop
shares a timestamp); the heap is only touched when a *new* timestamp
appears — for far-future timers that overflow past the currently-active
times, and once per bucket on the drain side.  A one-entry *hot bucket*
cache short-circuits even the dict lookup for back-to-back posts at the
same instant.  Within a bucket events fire in insertion order, which is
exactly the global ``(time, insertion)`` order the previous heap-of-tuples
implementation guaranteed — event ordering is byte-identical, it just no
longer costs a heap push/pop per event.

Two scheduling APIs serve two traffic classes:

* :meth:`Engine.schedule` / :meth:`Engine.schedule_at` return a cancellable
  :class:`EventHandle` — for timers, which protocols routinely cancel;
* :meth:`Engine.post` / :meth:`Engine.post_at` are the allocation-light fast
  path for events that are *never* cancelled (message deliveries, probe
  results): no handle object is created, the bucket holds the bare callback
  and argument tuple.

Cancellation stays O(1) and lazy, and the engine *counts* lazily cancelled
events and compacts the queue whenever they outnumber the live ones
(beyond a small floor), so a workload that cancels millions of timers —
e.g. per-message retransmit timers that are almost always acked — never
drags a dead queue behind it.  :attr:`Engine.live_pending` reports the true
outstanding-event count.

**The timer wheel.**  Cancellable timers land on scattered timestamps
(per-message per-peer retransmit deadlines, staggered backoffs), which is
the bucket queue's worst case: every timer opens its own bucket and pays a
heap push/pop.  Timers therefore live in a **hierarchical timing wheel**
instead: four power-of-two levels of 256 slots each, at a resolution of
2^-10 s per tick, covering 2^32 ticks (~48 simulated days) before handing
far-future timers to a small overflow heap.  Insertion picks the deepest
level whose lap contains both the timer and the wheel position — O(1)
integer arithmetic plus a list append and a bitmap bit.  On the drain
side the wheel advances lazily: per-level occupancy bitmaps jump straight
to the next populated slot, higher-level slots **cascade** one level down
when the position crosses their boundary, and the expiring slot is sorted
once into the *cursor* — the staging batch the run loops consume.

Merge order between wheel expiries and bucket events is **byte-identical**
to the single-queue layout, by construction rather than by bookkeeping:

* :meth:`Engine.schedule` appends to the existing bucket when one already
  holds events for that exact timestamp (so intra-bucket interleavings of
  posts and timers are preserved verbatim), and only otherwise inserts
  into the wheel;
* consequently a wheel entry at time ``t`` can only exist if no bucket for
  ``t`` existed when it was scheduled — every wheel entry at ``t``
  *predates* every current bucket entry at ``t`` — so the run loops break
  timestamp ties in favour of the wheel;
* inside the wheel, entries carry a monotonic sequence number and every
  expiry batch is sorted by ``(time, seq)``, which is exactly the global
  insertion order no matter which level an entry cascaded from.

The quantised-tick mode keeps timers on the bucket path: its in-bucket
stable sort by raw timestamp already interleaves posts and timers, and
that ordering is pinned by artifacts.
"""

from __future__ import annotations

import math
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from ..common.errors import SimulationError
from ..common.interfaces import Kernel, TimerHandle

#: Compaction never triggers below this many cancelled events: tiny queues
#: are cheap to carry and rebuilding them would cost more than it saves.
COMPACTION_FLOOR = 64

#: Timer-wheel geometry: four levels of 2^8 slots, 2^-10 s per tick.
WHEEL_BITS = 8
WHEEL_SLOTS = 1 << WHEEL_BITS
WHEEL_MASK = WHEEL_SLOTS - 1
WHEEL_LEVELS = 4
WHEEL_RESOLUTION = 2.0**-10
_TICKS_PER_SECOND = 1.0 / WHEEL_RESOLUTION
#: Timestamps past this are clamped to one far tick (ordering inside the
#: overflow heap is still exact — entries sort by (tick, time, seq), and
#: the clamp keeps ``int(when * ticks)`` from overflowing on inf).
_TICK_TIME_CAP = 2.0**52
_TICK_CAP = 1 << 63

#: Marker stored in a bucket slot in place of a callback to flag that the
#: following slot holds a cancellable :class:`EventHandle` instead of a
#: plain argument tuple.  ``None`` can never be a callback.
_HANDLE = None

# Process-wide count of events fired by every engine in this process; the
# orchestrator samples it around each work unit to report kernel events/s
# in the TIMINGS artifacts (observability only, never in BENCH artifacts).
_fired_total = 0


def events_fired_total() -> int:
    """Events fired by all engines in this process since import."""
    return _fired_total


class EventHandle(TimerHandle):
    """Handle for a scheduled event; cancellation is O(1) (lazy removal)."""

    __slots__ = ("time", "_callback", "_args", "_cancelled", "_engine")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self._callback: Optional[Callable[..., None]] = callback
        self._args = args
        self._cancelled = False
        # Back-reference while the event sits in the queue, so cancellation
        # can be counted; cleared when the event fires or is compacted away.
        self._engine = engine

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references so cancelled events pinned in the queue do not
        # keep large object graphs alive.
        self._callback = None
        self._args = ()
        engine = self._engine
        if engine is not None:
            self._engine = None
            # Inlined Engine._note_cancel: cancellation is the hot path of
            # ack/retransmit protocols (almost every timer is cancelled).
            cancelled = engine._cancelled + 1
            engine._cancelled = cancelled
            if cancelled > engine._compact_watermark and cancelled * 2 > engine._size:
                engine.compact()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled and self._callback is not None:
            self._callback(*self._args)


class Engine(Kernel):
    """The simulation event loop (the single-shard :class:`Kernel`).

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which makes runs fully deterministic given deterministic callbacks.
    Consumers that hold a :class:`~repro.common.interfaces.Kernel` may
    pre-bind this engine's concrete methods (``engine.post``) because
    :attr:`~repro.common.interfaces.Kernel.routed` is ``False`` here —
    the owner-qualified ``post_for``/``schedule_for`` fall through to the
    owner-blind methods unchanged.
    """

    def __init__(self, start_time: float = 0.0, *, tick: Optional[float] = None) -> None:
        if tick is not None and tick <= 0:
            raise SimulationError(f"tick must be positive: {tick}")
        self._now = start_time
        # Quantised-tick mode (off by default): event timestamps are rounded
        # *up* to a multiple of ``tick`` so latency models with continuous
        # jitter (UniformLatency, WAN fault rules) share buckets instead of
        # degenerating to one event per bucket.  Within a quantised bucket
        # events fire stable-sorted by their raw timestamps (``_raws`` holds
        # one raw time per entry, parallel to the bucket pairs), preserving
        # the global (time, insertion) order up to the tick resolution.
        self._tick = tick
        self._raws: dict[float, list[float]] = {}
        # timestamp -> flat FIFO bucket [cb, args, cb, args, ...]; timer
        # entries use the (_HANDLE, EventHandle) slot pair instead.
        self._buckets: dict[float, list] = {}
        # Heap of the distinct pending timestamps (one entry per bucket).
        self._times: list[float] = []
        # Most recently appended-to bucket: posts during a drain almost
        # always target one future instant (now + the constant latency),
        # so this skips the dict lookup for all but the first of them.
        self._hot_time: Optional[float] = None
        self._hot_bucket: Optional[list] = None
        self._size = 0
        self._processed = 0
        self._cancelled = 0
        # --- timer wheel (exact mode only; see the module docstring) ---
        # Entries are (tick, time, seq, handle) tuples: tick is the wheel
        # coordinate, (time, seq) the exact global firing order.
        self._seq = 0
        self._wheel_slots: list[list[list]] = [
            [[] for _ in range(WHEEL_SLOTS)] for _ in range(WHEEL_LEVELS)
        ]
        self._wheel_bitmaps: list[int] = [0] * WHEEL_LEVELS
        self._wheel_overflow: list[tuple] = []
        # The cursor is the sorted expiry batch of the current tick; the
        # wheel position doubles as its admission bound: inserts at ticks
        # <= the position bisect straight into the cursor.
        self._wheel_cursor: list[tuple] = []
        self._wheel_cursor_pos = 0
        self._wheel_pos = int(start_time * _TICKS_PER_SECOND)
        # Entries held by the wheel (cursor tail + slots + overflow),
        # including lazily-cancelled ones; the run loops skip wheel work
        # entirely while this is zero.
        self._wheel_count = 0
        # Auto-compaction threshold.  Raised (exponential backoff) when a
        # compaction cannot reclaim anything — entries of a bucket that is
        # mid-drain have left the queue structures and are unreachable
        # until the drain loop skips them — so mass same-instant cancels
        # cost O(Q log N) in rebuilds, not a full scan per cancel.
        self._compact_watermark = COMPACTION_FLOOR

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def tick(self) -> Optional[float]:
        """Quantisation step for event timestamps, or ``None`` (exact)."""
        return self._tick

    @property
    def pending(self) -> int:
        """Number of queued events, *including* lazily-cancelled ones.

        For "is there outstanding work?" checks use :attr:`live_pending`
        instead — a queue full of cancelled timers is not pending work.
        """
        return self._size

    @property
    def live_pending(self) -> int:
        """Number of queued events that will actually fire."""
        return self._size - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Number of lazily-cancelled events still occupying the queue."""
        return self._cancelled

    @property
    def processed(self) -> int:
        """Total events fired since the engine was created."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _quantise(self, when: float) -> float:
        """Round ``when`` *up* to the next tick multiple (never earlier)."""
        tick = self._tick
        return math.ceil(when / tick) * tick

    def _append_quantised(self, when: float, first: Any, second: Any) -> None:
        """Quantised-mode append: pair into the tick bucket, raw time into
        the parallel ``_raws`` list (the in-bucket sort key)."""
        q = self._quantise(when)
        bucket = self._buckets.get(q)
        if bucket is None:
            self._buckets[q] = [first, second]
            self._raws[q] = [when]
            heappush(self._times, q)
        else:
            bucket.append(first)
            bucket.append(second)
            self._raws[q].append(when)

    def _take_quantised(self, when: float) -> tuple[list, list[float]]:
        """Stable-sort one quantised bucket by raw timestamp.

        Returns the re-ordered flat pair list and the matching sorted raw
        times; both have been removed from the queue structures (the heap
        entry for ``when`` is the caller's to keep or pop).
        """
        bucket = self._buckets.pop(when)
        raws = self._raws.pop(when)
        order = sorted(range(len(raws)), key=raws.__getitem__)
        flat: list = []
        append = flat.append
        for index in order:
            append(bucket[2 * index])
            append(bucket[2 * index + 1])
        return flat, [raws[index] for index in order]

    def _append(self, when: float, first: Any, second: Any) -> None:
        """Append one two-slot entry to the bucket for ``when``."""
        if self._tick is not None:
            self._append_quantised(when, first, second)
            return
        if when == self._hot_time:
            bucket = self._hot_bucket
            bucket.append(first)
            bucket.append(second)
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = [first, second]
            self._buckets[when] = bucket
            heappush(self._times, when)
        else:
            bucket.append(first)
            bucket.append(second)
        self._hot_time = when
        self._hot_bucket = bucket

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        Exact mode routes timers through the timer wheel — unless a bucket
        already holds events for exactly ``when``, in which case the timer
        joins that bucket so same-instant interleavings of posts and
        timers fire in verbatim insertion order (the merge-order
        invariant; see the module docstring).  Quantised mode keeps the
        bucket path, whose raw-time stable sort already interleaves both.
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        handle = EventHandle(when, callback, args, self)
        self._size += 1
        if self._tick is not None:
            self._append_quantised(when, _HANDLE, handle)
            return handle
        bucket = self._buckets.get(when)
        if bucket is not None:
            bucket.append(_HANDLE)
            bucket.append(handle)
            return handle
        # Inlined wheel insert: this is the hottest call of timer-heavy
        # (ack/retransmit) protocols, the way `post` is for messages.
        tick = int(when * _TICKS_PER_SECOND) if when < _TICK_TIME_CAP else _TICK_CAP
        seq = self._seq
        self._seq = seq + 1
        entry = (tick, when, seq, handle)
        self._wheel_count += 1
        pos = self._wheel_pos
        if tick <= pos:
            # The wheel already advanced to (or past) this tick — a bucket
            # event running ahead of the wheel scheduled it.  The sequence
            # number keeps it in exact global order inside the cursor.
            insort(self._wheel_cursor, entry)
            return handle
        # The level is the deepest one whose lap holds both the timer and
        # the wheel position: the highest differing bit octet of the two
        # tick coordinates names it in O(1).
        level = ((tick ^ pos).bit_length() - 1) >> 3
        if level < WHEEL_LEVELS:
            slot = (tick >> (level << 3)) & WHEEL_MASK
            self._wheel_slots[level][slot].append(entry)
            self._wheel_bitmaps[level] |= 1 << slot
        else:
            heappush(self._wheel_overflow, entry)
        return handle

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        when = self._now + delay
        if self._tick is not None:
            handle = EventHandle(when, callback, args, self)
            self._size += 1
            self._append_quantised(when, _HANDLE, handle)
            return handle
        # Inlined schedule_at: one call frame fewer on the timer-heavy
        # hot path (protocols schedule relative delays via the clock).
        handle = EventHandle(when, callback, args, self)
        self._size += 1
        bucket = self._buckets.get(when)
        if bucket is not None:
            bucket.append(_HANDLE)
            bucket.append(handle)
            return handle
        tick = int(when * _TICKS_PER_SECOND) if when < _TICK_TIME_CAP else _TICK_CAP
        seq = self._seq
        self._seq = seq + 1
        entry = (tick, when, seq, handle)
        self._wheel_count += 1
        pos = self._wheel_pos
        if tick <= pos:
            insort(self._wheel_cursor, entry)
            return handle
        # The level is the deepest one whose lap holds both the timer and
        # the wheel position: the highest differing bit octet of the two
        # tick coordinates names it in O(1).
        level = ((tick ^ pos).bit_length() - 1) >> 3
        if level < WHEEL_LEVELS:
            slot = (tick >> (level << 3)) & WHEEL_MASK
            self._wheel_slots[level][slot].append(entry)
            self._wheel_bitmaps[level] |= 1 << slot
        else:
            heappush(self._wheel_overflow, entry)
        return handle

    def post_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: schedule a *non-cancellable* event at time ``when``.

        No handle is allocated; the bucket holds the bare callback and
        argument tuple.  Use for high-volume events nothing ever cancels
        (message deliveries).
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        self._append(when, callback, args)
        self._size += 1

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: :meth:`post_at` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        when = self._now + delay
        if self._tick is not None:
            self._append_quantised(when, callback, args)
            self._size += 1
            return
        # Inlined _append: this is the hottest call in the simulator.
        if when == self._hot_time:
            bucket = self._hot_bucket
        else:
            bucket = self._buckets.get(when)
            if bucket is None:
                bucket = []
                self._buckets[when] = bucket
                heappush(self._times, when)
            self._hot_time = when
            self._hot_bucket = bucket
        bucket.append(callback)
        bucket.append(args)
        self._size += 1

    # ------------------------------------------------------------------
    # The timer wheel
    # ------------------------------------------------------------------
    def _wheel_peek(self) -> Optional[tuple]:
        """The next wheel entry (possibly a lazily-cancelled one), or
        ``None`` when the wheel is empty.  Advances the wheel as needed."""
        cursor = self._wheel_cursor
        pos = self._wheel_cursor_pos
        if pos < len(cursor):
            if pos >= 1024:
                # Trim the consumed prefix (amortised O(1)).  A lone
                # far-future timer can pin one cursor batch for a long
                # stretch of simulated time while every nearer timer
                # bisects into it; without trimming, the consumed entries
                # would accumulate for as long as the batch lives.
                del cursor[:pos]
                self._wheel_cursor_pos = 0
                return cursor[0]
            return cursor[pos]
        if self._wheel_count and self._wheel_refill():
            return self._wheel_cursor[self._wheel_cursor_pos]
        return None

    def _wheel_take(self, level: int, index: int) -> list:
        """Detach one slot's entry list, clearing its occupancy bit."""
        slots = self._wheel_slots[level]
        batch = slots[index]
        slots[index] = []
        self._wheel_bitmaps[level] &= ~(1 << index)
        return batch

    def _wheel_refill(self) -> bool:
        """Advance the wheel position to the next populated tick and stage
        that tick's entries as the new (sorted) cursor batch.

        Per-level bitmaps jump straight to the next occupied slot; a
        populated higher-level slot is cascaded one level down when the
        position enters its lap.  Lazily-cancelled entries are dropped
        (and accounted) the first time the advance touches them — an
        acked retransmit timer costs one cascade visit in total, never a
        sort or a pop.  Returns ``False`` only when the wheel holds
        nothing at all.
        """
        overflow = self._wheel_overflow
        bitmaps = self._wheel_bitmaps
        pos = self._wheel_pos
        dropped = 0
        while True:
            ov_tick = overflow[0][0] if overflow else None
            # Level 0: one slot == one tick of the current 256-tick window.
            index = pos & WHEEL_MASK
            m = bitmaps[0] >> index
            if m:
                index += ((m & -m).bit_length() - 1)
                target = pos - (pos & WHEEL_MASK) + index
                if ov_tick is None or target <= ov_tick:
                    batch = []
                    for entry in self._wheel_take(0, index):
                        if entry[3]._cancelled:
                            dropped += 1
                        else:
                            batch.append(entry)
                    while overflow and overflow[0][0] == target:
                        entry = heappop(overflow)
                        if entry[3]._cancelled:
                            dropped += 1
                        else:
                            batch.append(entry)
                    if not batch:
                        continue  # the tick held only cancelled timers
                    batch.sort()
                    self._wheel_cursor = batch
                    self._wheel_cursor_pos = 0
                    self._wheel_pos = target
                    self._wheel_drop(dropped)
                    return True
            else:
                # Level 1..3: find the next populated slot of the current
                # lap, cascade it down one level, rescan from its start.
                t8 = pos >> WHEEL_BITS
                m = bitmaps[1] >> (t8 & WHEEL_MASK)
                if m:
                    g1 = t8 + ((m & -m).bit_length() - 1)
                    start = g1 << WHEEL_BITS
                    if ov_tick is None or start <= ov_tick:
                        slots0 = self._wheel_slots[0]
                        bit0 = 0
                        for entry in self._wheel_take(1, g1 & WHEEL_MASK):
                            if entry[3]._cancelled:
                                dropped += 1
                                continue
                            low = entry[0] & WHEEL_MASK
                            slots0[low].append(entry)
                            bit0 |= 1 << low
                        bitmaps[0] |= bit0
                        pos = start
                        continue
                else:
                    t16 = t8 >> WHEEL_BITS
                    m = bitmaps[2] >> (t16 & WHEEL_MASK)
                    if m:
                        g2 = t16 + ((m & -m).bit_length() - 1)
                        start = g2 << 16
                        if ov_tick is None or start <= ov_tick:
                            slots1 = self._wheel_slots[1]
                            bit1 = 0
                            for entry in self._wheel_take(2, g2 & WHEEL_MASK):
                                if entry[3]._cancelled:
                                    dropped += 1
                                    continue
                                mid = (entry[0] >> WHEEL_BITS) & WHEEL_MASK
                                slots1[mid].append(entry)
                                bit1 |= 1 << mid
                            bitmaps[1] |= bit1
                            pos = start
                            continue
                    else:
                        t24 = t16 >> WHEEL_BITS
                        m = bitmaps[3] >> (t24 & WHEEL_MASK)
                        if m:
                            g3 = t24 + ((m & -m).bit_length() - 1)
                            start = g3 << 24
                            if ov_tick is None or start <= ov_tick:
                                slots2 = self._wheel_slots[2]
                                bit2 = 0
                                for entry in self._wheel_take(3, g3 & WHEEL_MASK):
                                    if entry[3]._cancelled:
                                        dropped += 1
                                        continue
                                    high = (entry[0] >> 16) & WHEEL_MASK
                                    slots2[high].append(entry)
                                    bit2 |= 1 << high
                                bitmaps[2] |= bit2
                                pos = start
                                continue
            # Nothing in the levels before the overflow's head: drain the
            # overflow's earliest tick as the next batch (far-future
            # handoff), re-anchoring the wheel position there.
            if not overflow:
                self._wheel_pos = pos
                self._wheel_drop(dropped)
                return False
            batch = []
            target = overflow[0][0]
            while overflow and overflow[0][0] == target:
                entry = heappop(overflow)
                if entry[3]._cancelled:
                    dropped += 1
                else:
                    batch.append(entry)
            if not batch:
                continue  # the overflow tick held only cancelled timers
            self._wheel_cursor = batch
            self._wheel_cursor_pos = 0
            self._wheel_pos = target
            self._wheel_drop(dropped)
            return True

    def _wheel_drop(self, dropped: int) -> None:
        """Account for cancelled entries the wheel advance discarded."""
        if dropped:
            self._wheel_count -= dropped
            self._size -= dropped
            self._cancelled -= dropped

    # ------------------------------------------------------------------
    # Compaction of lazily-cancelled events
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Physically remove lazily-cancelled events; returns how many.

        Buckets and the timestamp heap are rebuilt *in place* (both keep
        their identity) so run loops holding local references observe the
        compaction.  Entries of a bucket that is being drained right now —
        and entries of the wheel's current expiry batch (the cursor) —
        have already left (or are mid-consumption of) the queue
        structures and are skipped (and accounted) by the drain loops
        themselves.
        """
        if not self._cancelled:
            return 0
        removed_wheel = self._wheel_compact()
        buckets = self._buckets
        quantised = self._tick is not None
        removed = 0
        for when in list(buckets):
            bucket = buckets[when]
            raws = self._raws.get(when) if quantised else None
            kept: list = []
            kept_raws: list[float] = []
            append = kept.append
            index = 0
            it = iter(bucket)
            for first in it:
                second = next(it)
                slot = index
                index += 1
                if first is _HANDLE and second._cancelled:
                    second._engine = None
                    removed += 1
                else:
                    append(first)
                    append(second)
                    if raws is not None:
                        kept_raws.append(raws[slot])
            if kept:
                bucket[:] = kept
                if raws is not None:
                    raws[:] = kept_raws
            else:
                del buckets[when]
                if raws is not None:
                    del self._raws[when]
        # Rebuild the timestamp index in place: one entry per surviving
        # bucket (drop times whose buckets emptied).
        self._times[:] = buckets
        heapify(self._times)
        self._hot_time = None
        self._hot_bucket = None
        removed += removed_wheel
        self._size -= removed
        self._cancelled -= removed
        # Any remainder is pinned in a mid-drain bucket or the wheel
        # cursor; back off so the next few cancels do not rescan
        # everything for nothing.  A clean sweep resets the watermark to
        # the floor.
        self._compact_watermark = max(COMPACTION_FLOOR, 2 * self._cancelled)
        return removed

    def _wheel_compact(self) -> int:
        """Sweep cancelled timers out of the wheel slots and the overflow
        (the cursor is the drain loops' to consume); returns how many."""
        removed = 0
        for level in range(WHEEL_LEVELS):
            bitmap = self._wheel_bitmaps[level]
            if not bitmap:
                continue
            slots = self._wheel_slots[level]
            m = bitmap
            while m:
                index = (m & -m).bit_length() - 1
                m &= m - 1
                slot = slots[index]
                kept = []
                for entry in slot:
                    handle = entry[3]
                    if handle._cancelled:
                        handle._engine = None
                        removed += 1
                    else:
                        kept.append(entry)
                if kept:
                    slot[:] = kept
                else:
                    del slot[:]
                    bitmap &= ~(1 << index)
            self._wheel_bitmaps[level] = bitmap
        overflow = self._wheel_overflow
        if overflow:
            kept = []
            for entry in overflow:
                handle = entry[3]
                if handle._cancelled:
                    handle._engine = None
                    removed += 1
                else:
                    kept.append(entry)
            if removed and len(kept) != len(overflow):
                overflow[:] = kept
                heapify(overflow)
        self._wheel_count -= removed
        return removed

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _salvage(self, when: float, remainder: list) -> None:
        """Re-queue the un-fired tail of a bucket whose drain raised.

        Keeps the queue consistent when a callback (or the runaway-cascade
        guard) raises mid-bucket: the remaining entries go back in front of
        anything posted at ``when`` during the partial drain.
        """
        if not remainder:
            return
        existing = self._buckets.get(when)
        if existing is None:
            self._buckets[when] = remainder
            heappush(self._times, when)
        else:
            existing[:0] = remainder  # older entries fire first
        if self._tick is not None:
            # Re-queued entries fired at ``when``; their pre-sort raw times
            # are gone, so they keep their position via raw == when (exact
            # ordering after an aborted drain is moot — the run is failing).
            raws = self._raws.setdefault(when, [])
            raws[:0] = [when] * (len(remainder) // 2)
        self._hot_time = None
        self._hot_bucket = None

    def _step_quantised(self) -> bool:
        """Quantised-mode :meth:`step`: pop the earliest tick bucket,
        stable-sort it by raw timestamp, fire its first live entry."""
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket, raws = self._take_quantised(when)
            index = 0
            count = len(raws)
            while index < count:
                first = bucket[2 * index]
                second = bucket[2 * index + 1]
                index += 1
                if first is _HANDLE:
                    if second._cancelled:
                        self._cancelled -= 1
                        self._size -= 1
                        continue
                    second._engine = None
                self._size -= 1
                remainder = bucket[2 * index:]
                if remainder:
                    buckets[when] = remainder
                    self._raws[when] = raws[index:]
                else:
                    heappop(times)
                self._now = when
                self._processed += 1
                global _fired_total
                _fired_total += 1
                if first is _HANDLE:
                    second._fire()
                else:
                    first(*second)
                return True
            heappop(times)  # entire bucket was cancelled entries
        return False

    def step(self) -> bool:
        """Fire the earliest event.  Returns ``False`` when the queue is
        empty (time does not advance in that case)."""
        if self._tick is not None:
            return self._step_quantised()
        global _fired_total
        times = self._times
        buckets = self._buckets
        while True:
            # Wheel timers due no later than the earliest bucket fire
            # first (ties go to the wheel: its entries predate the
            # bucket's — the merge-order invariant).
            if self._wheel_count:
                while True:
                    entry = self._wheel_peek()
                    if entry is None or (times and times[0] < entry[1]):
                        break
                    self._wheel_cursor_pos += 1
                    self._wheel_count -= 1
                    self._size -= 1
                    handle = entry[3]
                    if handle._cancelled:
                        self._cancelled -= 1
                        continue
                    handle._engine = None
                    self._now = entry[1]
                    self._processed += 1
                    _fired_total += 1
                    handle._fire()
                    return True
            if not times:
                return False
            when = times[0]
            bucket = buckets[when]
            index = 0
            while index < len(bucket):
                first = bucket[index]
                second = bucket[index + 1]
                index += 2
                if first is _HANDLE:
                    if second._cancelled:
                        self._cancelled -= 1
                        self._size -= 1
                        continue
                    second._engine = None
                self._size -= 1
                # Re-stash the un-fired remainder *before* the callback
                # runs, so nested posts at the same instant land after it.
                remainder = bucket[index:]
                if remainder:
                    bucket[:] = remainder
                else:
                    del buckets[when]
                    heappop(times)
                if when == self._hot_time:
                    self._hot_time = None
                    self._hot_bucket = None
                self._now = when
                self._processed += 1
                _fired_total += 1
                if first is _HANDLE:
                    second._fire()
                else:
                    first(*second)
                return True
            # Entire bucket was cancelled entries; re-check the wheel
            # against whatever bucket is now the earliest.
            del buckets[when]
            heappop(times)
            if when == self._hot_time:
                self._hot_time = None
                self._hot_bucket = None

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events fired.

        ``max_events`` guards against runaway cascades (a protocol bug that
        schedules unboundedly); exceeding it raises :class:`SimulationError`
        instead of hanging the test suite.
        """
        # The drain loop is the hottest code in the simulator: take one
        # whole bucket at a time and dispatch its entries inline.  Posts
        # from callbacks at the *same* instant open a fresh bucket, which
        # the next iteration of the outer loop picks up — preserving the
        # global (time, insertion-order) firing order exactly.  Wheel
        # timers merge in between buckets: every timer due no later than
        # the earliest bucket fires first (same-instant timers predate
        # the bucket's entries — the merge-order invariant).
        times = self._times
        buckets = self._buckets
        fired = 0
        cancelled_skipped = 0
        try:
            while True:
                if self._wheel_count:
                    while True:
                        entry = self._wheel_peek()
                        if entry is None or (times and times[0] < entry[1]):
                            break
                        self._wheel_cursor_pos += 1
                        self._wheel_count -= 1
                        handle = entry[3]
                        if handle._cancelled:
                            cancelled_skipped += 1
                            continue
                        handle._engine = None
                        self._now = entry[1]
                        fired += 1
                        handle._callback(*handle._args)
                        if max_events is not None and fired > max_events:
                            raise SimulationError(
                                f"run_until_idle exceeded {max_events} events — "
                                f"runaway cascade?"
                            )
                if not times:
                    break
                when = heappop(times)
                if self._tick is None:
                    bucket = buckets.pop(when)
                else:
                    bucket, _ = self._take_quantised(when)
                if when == self._hot_time:
                    self._hot_time = None
                    self._hot_bucket = None
                self._now = when
                it = iter(bucket)
                try:
                    for first in it:
                        second = next(it)
                        if first is _HANDLE:
                            if second._cancelled:
                                cancelled_skipped += 1
                                continue
                            second._engine = None
                            fired += 1
                            second._callback(*second._args)
                        else:
                            fired += 1
                            first(*second)
                        if max_events is not None and fired > max_events:
                            raise SimulationError(
                                f"run_until_idle exceeded {max_events} events — runaway cascade?"
                            )
                except BaseException:
                    self._salvage(when, list(it))
                    raise
        finally:
            self._processed += fired
            self._size -= fired + cancelled_skipped
            self._cancelled -= cancelled_skipped
            global _fired_total
            _fired_total += fired
        return fired

    def run_until(self, deadline: float) -> int:
        """Fire every event with timestamp <= ``deadline``, then set the
        clock to ``deadline``.  Returns the number of events fired."""
        if deadline < self._now:
            raise SimulationError(f"deadline in the past: {deadline} < {self._now}")
        times = self._times
        buckets = self._buckets
        fired = 0
        cancelled_skipped = 0
        try:
            while True:
                if self._wheel_count:
                    while True:
                        entry = self._wheel_peek()
                        if (
                            entry is None
                            or entry[1] > deadline
                            or (times and times[0] < entry[1])
                        ):
                            break
                        self._wheel_cursor_pos += 1
                        self._wheel_count -= 1
                        handle = entry[3]
                        if handle._cancelled:
                            cancelled_skipped += 1
                            continue
                        handle._engine = None
                        self._now = entry[1]
                        fired += 1
                        handle._callback(*handle._args)
                if not times:
                    break
                when = times[0]
                if when > deadline:
                    break
                heappop(times)
                if self._tick is None:
                    bucket = buckets.pop(when)
                else:
                    bucket, _ = self._take_quantised(when)
                if when == self._hot_time:
                    self._hot_time = None
                    self._hot_bucket = None
                self._now = when
                it = iter(bucket)
                try:
                    for first in it:
                        second = next(it)
                        if first is _HANDLE:
                            if second._cancelled:
                                cancelled_skipped += 1
                                continue
                            second._engine = None
                            fired += 1
                            second._callback(*second._args)
                        else:
                            fired += 1
                            first(*second)
                except BaseException:
                    self._salvage(when, list(it))
                    raise
        finally:
            self._processed += fired
            self._size -= fired + cancelled_skipped
            self._cancelled -= cancelled_skipped
            global _fired_total
            _fired_total += fired
        self._now = deadline
        return fired

    def run_for(self, duration: float) -> int:
        """Convenience: :meth:`run_until` ``now + duration``."""
        return self.run_until(self._now + duration)

    # ------------------------------------------------------------------
    # Pickling (scenario snapshots)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The hot-bucket cache is a pure accelerator; dropping it keeps
        # snapshots of otherwise-identical engines byte-identical no
        # matter which instant was posted to last.
        state = {slot: getattr(self, slot) for slot in self.__dict__}
        state["_hot_time"] = None
        state["_hot_bucket"] = None
        # The wheel pickles as its canonical content — the sorted live
        # entries — never as slots/bitmaps/cursor, whose arrangement
        # depends on how far the wheel advanced.  Lazily-cancelled wheel
        # entries are unobservable and dropped (with the books adjusted),
        # so snapshot bytes do not depend on cancellation garbage either.
        entries = list(self._wheel_cursor[self._wheel_cursor_pos:])
        for level_slots in self._wheel_slots:
            for slot in level_slots:
                entries.extend(slot)
        entries.extend(self._wheel_overflow)
        live = sorted(entry for entry in entries if not entry[3]._cancelled)
        dropped = len(entries) - len(live)
        for key in (
            "_wheel_slots", "_wheel_bitmaps", "_wheel_overflow",
            "_wheel_cursor", "_wheel_cursor_pos", "_wheel_pos",
            "_wheel_count",
        ):
            del state[key]
        state["_size"] = self._size - dropped
        state["_cancelled"] = self._cancelled - dropped
        state["_wheel_entries"] = live
        return state

    def __setstate__(self, state: dict) -> None:
        entries = state.pop("_wheel_entries", [])
        self.__dict__.update(state)
        pos = int(self._now * _TICKS_PER_SECOND)
        self._wheel_slots = [
            [[] for _ in range(WHEEL_SLOTS)] for _ in range(WHEEL_LEVELS)
        ]
        self._wheel_bitmaps = [0] * WHEEL_LEVELS
        self._wheel_overflow = []
        self._wheel_cursor = []
        self._wheel_cursor_pos = 0
        self._wheel_pos = pos
        self._wheel_count = 0
        for tick, when, seq, handle in entries:
            # Re-place each entry relative to the rebuilt position; counts
            # and the sequence counter travelled in the pickled state.
            self._wheel_count += 1
            entry = (tick, when, seq, handle)
            if tick <= pos:
                self._wheel_cursor.append(entry)  # `entries` is sorted
                continue
            level = ((tick ^ pos).bit_length() - 1) >> 3
            if level < WHEEL_LEVELS:
                slot = (tick >> (level << 3)) & WHEEL_MASK
                self._wheel_slots[level][slot].append(entry)
                self._wheel_bitmaps[level] |= 1 << slot
            else:
                heappush(self._wheel_overflow, entry)


class PeriodicTask:
    """Repeatedly invokes a callback every ``period`` seconds.

    Used for self-driven protocol cycles (live simulations and the asyncio
    runtime style); the experiment harness instead triggers cycles manually
    for lock-step control.  An optional start ``jitter`` desynchronises node
    cycles the way real deployments are desynchronised.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        if jitter < 0:
            raise SimulationError(f"jitter must be non-negative: {jitter}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._handle = self._engine.schedule(self._jitter + self._period, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:  # the callback may have stopped us
            self._handle = self._engine.schedule(self._period, self._tick)
