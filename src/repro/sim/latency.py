"""Network latency models.

The paper's PeerSim experiments use an abstract message-exchange model; we
default to a small constant latency, and provide richer models (uniform
jitter, coordinate-based wide-area delays, a zone-based planetary RTT
matrix) for the runtime-flavoured simulations and ablations.

Every model exposes two views of a link:

* :meth:`LatencyModel.delay` — the per-message delay, drawn with the
  network's RNG stream (jitter lives here);
* :meth:`LatencyModel.base_delay` — the jitter-free structural cost of the
  link, a pure function of the two node identities.  This is what a
  topology-optimisation oracle (X-BOT) reads: because it needs no shared
  state, every node can price any link locally and two nodes always agree
  on a cost.

:meth:`LatencyModel.min_delay` is the model's greatest lower bound on any
delay it can emit — the conservative cross-shard lookahead for the sharded
kernel (the engine's quantised-tick mode rounds timestamps *up*, so the
bound survives quantisation).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from ..common.errors import ConfigurationError
from ..common.ids import NodeId


class LatencyModel(ABC):
    """Maps a (src, dst) pair to a one-way message delay in seconds."""

    __slots__ = ()

    @abstractmethod
    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """One-way delay for a message from ``src`` to ``dst``."""

    @abstractmethod
    def base_delay(self, src: NodeId, dst: NodeId) -> float:
        """Jitter-free structural cost of the ``src``→``dst`` link.

        A pure function of the node identities: deterministic, symmetric,
        and computable by any node without coordination.
        """

    @abstractmethod
    def min_delay(self) -> float:
        """Greatest lower bound on any delay this model can emit."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` seconds — the PeerSim-style
    abstract model used by the paper's experiments."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.01) -> None:
        if value < 0:
            raise ConfigurationError(f"latency must be non-negative: {value}")
        self.value = value

    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        return self.value

    def base_delay(self, src: NodeId, dst: NodeId) -> float:
        return self.value

    def min_delay(self) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid latency range: [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def base_delay(self, src: NodeId, dst: NodeId) -> float:
        return (self.low + self.high) / 2.0

    def min_delay(self) -> float:
        return self.low


class CoordinateLatency(LatencyModel):
    """Wide-area model: nodes get stable synthetic 2-D coordinates and the
    delay is ``base + distance * per_unit``.

    Coordinates are derived deterministically from the node identity, so the
    model needs no registration step and is stable across runs.  This gives
    a PlanetLab-flavoured heterogeneous delay matrix for ablations.
    """

    __slots__ = ("base", "per_unit", "_cache")

    def __init__(self, base: float = 0.005, per_unit: float = 0.05) -> None:
        if base < 0 or per_unit < 0:
            raise ConfigurationError("latency parameters must be non-negative")
        self.base = base
        self.per_unit = per_unit
        self._cache: dict[NodeId, tuple[float, float]] = {}

    def _coordinate(self, node: NodeId) -> tuple[float, float]:
        coord = self._cache.get(node)
        if coord is None:
            stream = random.Random(f"{node.host}:{node.port}/coordinate")
            coord = (stream.random(), stream.random())
            self._cache[node] = coord
        return coord

    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        return self.base_delay(src, dst)

    def base_delay(self, src: NodeId, dst: NodeId) -> float:
        (x1, y1), (x2, y2) = self._coordinate(src), self._coordinate(dst)
        distance = math.hypot(x1 - x2, y1 - y2)
        return self.base + distance * self.per_unit

    def min_delay(self) -> float:
        return self.base


class ZonedLatency(LatencyModel):
    """Planetary RTT world model: nodes live in latency zones (think cloud
    regions / continents) and link cost is a zone-pair matrix.

    Each node's zone is a stable hash of its identity (the same idiom as
    :class:`CoordinateLatency`'s coordinates), and each zone pair gets a
    base one-way delay drawn once from a seeded stream keyed by the pair:
    intra-zone links land in ``intra`` (single-digit-millisecond RTTs),
    cross-zone links in ``inter`` (defaults give ~80–250 ms RTTs, i.e.
    cross-continent).  Per-message ``delay`` multiplies the base by a
    uniform jitter factor drawn from the network's RNG stream, so the
    world model is deterministic while individual messages still spread —
    the jitter-heavy workload the engine's quantised-tick mode was built
    for.

    ``base_delay`` (the zone matrix, no jitter) is the link cost the X-BOT
    oracle reads: any two nodes price any link identically with no
    coordination, which is what lets the 4-node swap evaluate its
    aggregate-gain rule at a single participant.
    """

    __slots__ = ("zones", "intra", "inter", "jitter", "_zone_cache", "_pair_cache")

    def __init__(
        self,
        zones: int = 8,
        *,
        intra: tuple[float, float] = (0.003, 0.006),
        inter: tuple[float, float] = (0.04, 0.125),
        jitter: float = 0.25,
    ) -> None:
        if zones < 1:
            raise ConfigurationError(f"zone count must be >= 1: {zones}")
        for low, high in (intra, inter):
            if low < 0 or high < low:
                raise ConfigurationError(f"invalid latency range: [{low}, {high}]")
        if not 0 <= jitter < 1:
            raise ConfigurationError(f"jitter fraction must be in [0, 1): {jitter}")
        self.zones = zones
        self.intra = intra
        self.inter = inter
        self.jitter = jitter
        self._zone_cache: dict[NodeId, int] = {}
        self._pair_cache: dict[tuple[int, int], float] = {}

    def zone_of(self, node: NodeId) -> int:
        """The node's latency zone — a stable hash of its identity."""
        zone = self._zone_cache.get(node)
        if zone is None:
            stream = random.Random(f"{node.host}:{node.port}/zone")
            zone = stream.randrange(self.zones)
            self._zone_cache[node] = zone
        return zone

    def _pair_base(self, zone_a: int, zone_b: int) -> float:
        key = (zone_a, zone_b) if zone_a <= zone_b else (zone_b, zone_a)
        base = self._pair_cache.get(key)
        if base is None:
            low, high = self.intra if key[0] == key[1] else self.inter
            stream = random.Random(f"zone-pair:{key[0]}:{key[1]}/rtt")
            base = stream.uniform(low, high)
            self._pair_cache[key] = base
        return base

    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        base = self._pair_base(self.zone_of(src), self.zone_of(dst))
        if self.jitter == 0:
            return base
        return base * (1.0 + rng.uniform(-self.jitter, self.jitter))

    def base_delay(self, src: NodeId, dst: NodeId) -> float:
        return self._pair_base(self.zone_of(src), self.zone_of(dst))

    def min_delay(self) -> float:
        return self.intra[0] * (1.0 - self.jitter)


#: Model names selectable through ``ExperimentParams.latency_model``.
LATENCY_MODEL_NAMES = ("constant", "zoned")


def build_latency_model(params) -> LatencyModel:
    """Build the latency model an experiment (or live stack) asked for.

    Duck-typed on purpose: both the frozen ``ExperimentParams`` and the
    live runtime's parameter bag work, and anything without a
    ``latency_model`` attribute keeps the historical constant model —
    which is what pins every pre-existing artifact byte.
    """
    name = str(getattr(params, "latency_model", "constant"))
    if name == "constant":
        return ConstantLatency(float(getattr(params, "latency_seconds", 0.01)))
    if name == "zoned":
        return ZonedLatency(zones=int(getattr(params, "latency_zones", 8)))
    raise ConfigurationError(
        f"unknown latency model {name!r}; expected one of {LATENCY_MODEL_NAMES}"
    )
