"""Network latency models.

The paper's PeerSim experiments use an abstract message-exchange model; we
default to a small constant latency, and provide richer models (uniform
jitter, coordinate-based wide-area delays) for the runtime-flavoured
simulations and ablations.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from ..common.errors import ConfigurationError
from ..common.ids import NodeId


class LatencyModel(ABC):
    """Maps a (src, dst) pair to a one-way message delay in seconds."""

    __slots__ = ()

    @abstractmethod
    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """One-way delay for a message from ``src`` to ``dst``."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` seconds — the PeerSim-style
    abstract model used by the paper's experiments."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.01) -> None:
        if value < 0:
            raise ConfigurationError(f"latency must be non-negative: {value}")
        self.value = value

    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid latency range: [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class CoordinateLatency(LatencyModel):
    """Wide-area model: nodes get stable synthetic 2-D coordinates and the
    delay is ``base + distance * per_unit``.

    Coordinates are derived deterministically from the node identity, so the
    model needs no registration step and is stable across runs.  This gives
    a PlanetLab-flavoured heterogeneous delay matrix for ablations.
    """

    __slots__ = ("base", "per_unit", "_cache")

    def __init__(self, base: float = 0.005, per_unit: float = 0.05) -> None:
        if base < 0 or per_unit < 0:
            raise ConfigurationError("latency parameters must be non-negative")
        self.base = base
        self.per_unit = per_unit
        self._cache: dict[NodeId, tuple[float, float]] = {}

    def _coordinate(self, node: NodeId) -> tuple[float, float]:
        coord = self._cache.get(node)
        if coord is None:
            stream = random.Random(f"{node.host}:{node.port}/coordinate")
            coord = (stream.random(), stream.random())
            self._cache[node] = coord
        return coord

    def delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        (x1, y1), (x2, y2) = self._coordinate(src), self._coordinate(dst)
        distance = math.hypot(x1 - x2, y1 - y2)
        return self.base + distance * self.per_unit
