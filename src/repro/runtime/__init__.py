"""Asyncio TCP runtime: the same protocol code over real sockets."""

from .clock import AsyncioClock, AsyncioTimerHandle
from .cluster import LocalCluster
from .delivery import DeliveryLog, DeliveryRecord, DeliveryStream
from .node import RUNTIME_CONFIG, RuntimeNode
from .transport import AsyncioTransport

__all__ = [
    "AsyncioClock",
    "AsyncioTimerHandle",
    "AsyncioTransport",
    "DeliveryLog",
    "DeliveryRecord",
    "DeliveryStream",
    "LocalCluster",
    "RUNTIME_CONFIG",
    "RuntimeNode",
]
