"""Asyncio TCP runtime: the same protocol code over real sockets."""

from .clock import AsyncioClock, AsyncioTimerHandle
from .cluster import LocalCluster
from .node import RUNTIME_CONFIG, RuntimeNode
from .transport import AsyncioTransport

__all__ = [
    "AsyncioClock",
    "AsyncioTimerHandle",
    "AsyncioTransport",
    "LocalCluster",
    "RUNTIME_CONFIG",
    "RuntimeNode",
]
