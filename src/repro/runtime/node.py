"""A runtime node: the simulator's protocol stack over real TCP sockets.

This is the paper's future-work deliverable (Section 6: "an implementation
of HyParView will be tested in the PlanetLab platform") realised with the
*same* protocol classes the simulator runs — only the :class:`Transport`
and :class:`Clock` differ.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Optional

from ..common.errors import ConfigurationError
from ..common.ids import MessageId, NodeId
from ..common.interfaces import Host
from ..common.messages import Message
from ..core.config import HyParViewConfig
from ..core.protocol import HyParView
from ..gossip.flood import FloodBroadcast
from ..gossip.plumtree import Plumtree, PlumtreeConfig
from ..gossip.tracker import BroadcastTracker
from .clock import AsyncioClock
from .transport import AsyncioTransport

#: Application delivery callback: (message id, payload).
DeliverCallback = Callable[[MessageId, Any], None]

#: Default HyParView tuning for real networks: unlike the simulator's
#: reliable transport, a real peer can accept a connection and then never
#: answer, so NEIGHBOR requests need a timeout.
RUNTIME_CONFIG = HyParViewConfig(neighbor_request_timeout=2.0, shuffle_period=5.0)


class RuntimeNode:
    """One HyParView process listening on a TCP address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        config: Optional[HyParViewConfig] = None,
        broadcast: str = "flood",
        plumtree_config: Optional[PlumtreeConfig] = None,
        on_deliver: Optional[DeliverCallback] = None,
        seed: Optional[int] = None,
        tracker: Optional[BroadcastTracker] = None,
    ) -> None:
        if broadcast not in ("flood", "plumtree"):
            raise ConfigurationError(f"unknown broadcast layer: {broadcast!r}")
        self._requested_host = host
        self._requested_port = port
        self._config = config if config is not None else RUNTIME_CONFIG
        self._broadcast_kind = broadcast
        self._plumtree_config = plumtree_config
        self._external_deliver = on_deliver
        self._seed = seed
        self._tracker = tracker
        self.delivered: list[tuple[MessageId, Any]] = []
        self.unhandled = 0
        #: Chaos hook: incoming messages whose type name is listed here are
        #: silently ignored (the misbehaving-peer model — the node stays
        #: connected and ACKs frames, it just never acts on them).
        self.drop_message_types: set[str] = set()
        self.adversary_drops = 0
        self._handlers: dict[type, Callable[[Message], None]] = {}
        self._started = False
        # Set in start():
        self.node_id: Optional[NodeId] = None
        self.transport: Optional[AsyncioTransport] = None
        self.membership: Optional[HyParView] = None
        self.broadcast_layer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> NodeId:
        """Bind the listening socket and wire the protocol stack.

        Returns the node's identity (with the real port when 0 was asked).
        """
        if self._started:
            raise ConfigurationError("node already started")
        loop = asyncio.get_running_loop()
        # Bind first so the advertised identity carries the real port.
        bootstrap = NodeId(self._requested_host, self._requested_port)
        self.transport = AsyncioTransport(bootstrap, self._dispatch, loop=loop)
        await self.transport.start_server()
        sockname = self.transport._server.sockets[0].getsockname()
        self.node_id = NodeId(self._requested_host, sockname[1])
        self.transport._local = self.node_id
        clock = AsyncioClock(loop)
        rng = random.Random(self._seed if self._seed is not None else hash(self.node_id))
        host = Host(address=self.node_id, clock=clock, transport=self.transport, rng=rng)
        self.membership = HyParView(host, self._config)
        gossip_rng = random.Random((self._seed or 0) + 1)
        gossip_host = Host(
            address=self.node_id, clock=clock, transport=self.transport, rng=gossip_rng
        )
        if self._broadcast_kind == "flood":
            self.broadcast_layer = FloodBroadcast(
                gossip_host, self.membership, self._tracker, on_deliver=self._on_deliver
            )
        else:
            self.broadcast_layer = Plumtree(
                gossip_host,
                self.membership,
                self._tracker,
                config=self._plumtree_config,
                on_deliver=self._on_deliver,
            )
        for message_type, handler in self.membership.handlers().items():
            self._handlers[message_type] = handler
        for message_type, handler in self.broadcast_layer.handlers().items():
            self._handlers[message_type] = handler
        self._started = True
        return self.node_id

    async def stop(self) -> None:
        """Leave the overlay gracefully and close all sockets."""
        if not self._started:
            return
        self._started = False
        self.membership.stop()
        self.membership.leave()
        await asyncio.sleep(0)  # let DISCONNECT frames get queued
        await self.transport.close()

    async def crash(self) -> None:
        """Close sockets abruptly *without* notifying anyone — peers must
        find out through connection resets (the failure-detection path)."""
        if not self._started:
            return
        self._started = False
        self.membership.stop()
        await self.transport.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    def join(self, contact: NodeId) -> None:
        self._require_started()
        self.membership.join(contact)

    def start_cycles(self) -> None:
        """Begin self-scheduled periodic shuffles."""
        self._require_started()
        self.membership.start()

    def broadcast(self, payload: Any = None) -> MessageId:
        self._require_started()
        return self.broadcast_layer.broadcast(payload)

    def active_view(self) -> tuple[NodeId, ...]:
        self._require_started()
        return self.membership.active_members()

    def passive_view(self) -> tuple[NodeId, ...]:
        self._require_started()
        return self.membership.passive_members()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatch(self, peer: NodeId, message: Message) -> None:
        if self.drop_message_types and type(message).__name__ in self.drop_message_types:
            self.adversary_drops += 1
            return
        handler = self._handlers.get(type(message))
        if handler is None:
            self.unhandled += 1
            return
        handler(message)

    def _on_deliver(self, message_id: MessageId, payload: Any) -> None:
        self.delivered.append((message_id, payload))
        if self._external_deliver is not None:
            self._external_deliver(message_id, payload)

    def _require_started(self) -> None:
        if not self._started:
            raise ConfigurationError("node not started; call await node.start() first")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "started" if self._started else "stopped"
        return f"<RuntimeNode {self.node_id} {state}>"
