"""A runtime node: the simulator's protocol stack over real TCP sockets.

This is the paper's future-work deliverable (Section 6: "an implementation
of HyParView will be tested in the PlanetLab platform") realised with the
*same* protocol classes the simulator runs — only the :class:`Transport`
and :class:`Clock` differ.  Stacks are built through the declarative
registry (:mod:`repro.protocols.registry`), the same construction path the
simulator's ``Scenario`` uses, so sim and live can never drift.

A node carries an **incarnation** number (its restart count).  It feeds
two places: the transport's wire-handshake epoch, so peers can tell a
restarted process from its predecessor when the address is reused, and
``Host.incarnation``, so the broadcast layer's message-id sequence range
never collides with the predecessor's.  Deliveries land in a
:class:`~repro.runtime.delivery.DeliveryLog` (shared across a cluster)
tagged with the node's identity and incarnation.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..common.errors import ConfigurationError
from ..common.ids import MessageId, NodeId
from ..common.interfaces import Host
from ..common.messages import Message
from ..core.config import HyParViewConfig
from ..gossip.plumtree import PlumtreeConfig
from ..gossip.reliable import ReliableConfig
from ..gossip.tracker import BroadcastTracker
from ..protocols.registry import get_stack, runtime_stack_names
from .clock import AsyncioClock
from .delivery import DeliveryLog, DeliveryRecord
from .transport import AsyncioTransport

#: Application delivery callback: (message id, payload).
DeliverCallback = Callable[[MessageId, Any], None]

#: Default HyParView tuning for real networks: unlike the simulator's
#: reliable transport, a real peer can accept a connection and then never
#: answer, so NEIGHBOR requests need a timeout.
RUNTIME_CONFIG = HyParViewConfig(neighbor_request_timeout=2.0, shuffle_period=5.0)

#: Legacy ``broadcast=`` names mapped onto registry stack names.  The old
#: constructor keyword predates the registry; both spellings stay valid.
_LEGACY_BROADCAST = {"flood": "hyparview", "plumtree": "plumtree"}


@dataclass(frozen=True, slots=True)
class _RuntimeParams:
    """The parameter surface registry factories read, for live stacks.

    Duck-typed against ``ExperimentParams`` — only the fields the
    runtime-capable stacks consume.
    """

    hyparview: HyParViewConfig
    plumtree: Optional[PlumtreeConfig] = None
    reliable: ReliableConfig = field(default_factory=ReliableConfig)
    fanout: int = 4


class RuntimeNode:
    """One overlay process listening on a TCP address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        config: Optional[HyParViewConfig] = None,
        protocol: Optional[str] = None,
        broadcast: str = "flood",
        plumtree_config: Optional[PlumtreeConfig] = None,
        reliable_config: Optional[ReliableConfig] = None,
        on_deliver: Optional[DeliverCallback] = None,
        seed: Optional[int] = None,
        tracker: Optional[BroadcastTracker] = None,
        incarnation: int = 0,
        delivery_log: Optional[DeliveryLog] = None,
        roster: Optional[Sequence[NodeId]] = None,
    ) -> None:
        if protocol is None:
            protocol = _LEGACY_BROADCAST.get(broadcast)
            if protocol is None:
                raise ConfigurationError(f"unknown broadcast layer: {broadcast!r}")
        if protocol not in runtime_stack_names():
            raise ConfigurationError(
                f"protocol {protocol!r} is not runtime-capable; "
                f"expected one of {runtime_stack_names()}"
            )
        if incarnation < 0:
            raise ConfigurationError(f"incarnation must be >= 0: {incarnation}")
        self._requested_host = host
        self._requested_port = port
        self._config = config if config is not None else RUNTIME_CONFIG
        self.protocol = protocol
        self._params = _RuntimeParams(
            hyparview=self._config,
            plumtree=plumtree_config,
            reliable=reliable_config if reliable_config is not None else ReliableConfig(),
        )
        self._external_deliver = on_deliver
        self._seed = seed
        # Full membership set for roster-needing (quorum) stacks; resolved
        # uniformly by StackSpec.build — same code path as the simulator.
        self._roster = list(roster) if roster is not None else None
        self._tracker = tracker
        self.incarnation = incarnation
        self.delivery_log = delivery_log if delivery_log is not None else DeliveryLog()
        self.unhandled = 0
        #: Chaos hook: incoming messages whose type name is listed here are
        #: silently ignored (the misbehaving-peer model — the node stays
        #: connected and ACKs frames, it just never acts on them).
        self.drop_message_types: set[str] = set()
        self.adversary_drops = 0
        self._handlers: dict[type, Callable[[Message], None]] = {}
        self._started = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Set in start():
        self.started_at: Optional[float] = None
        self.node_id: Optional[NodeId] = None
        self.transport: Optional[AsyncioTransport] = None
        self.membership = None
        self.broadcast_layer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> NodeId:
        """Bind the listening socket and wire the protocol stack.

        Returns the node's identity (with the real port when 0 was asked).
        """
        if self._started:
            raise ConfigurationError("node already started")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self.started_at = loop.time()
        # Bind first so the advertised identity carries the real port.
        bootstrap = NodeId(self._requested_host, self._requested_port)
        self.transport = AsyncioTransport(
            bootstrap, self._dispatch, loop=loop, epoch=self.incarnation
        )
        await self.transport.start_server()
        sockname = self.transport._server.sockets[0].getsockname()
        self.node_id = NodeId(self._requested_host, sockname[1])
        self.transport._local = self.node_id
        clock = AsyncioClock(loop)
        rng = random.Random(self._seed if self._seed is not None else hash(self.node_id))
        host = Host(
            address=self.node_id,
            clock=clock,
            transport=self.transport,
            rng=rng,
            incarnation=self.incarnation,
        )
        gossip_host = Host(
            address=self.node_id,
            clock=clock,
            transport=self.transport,
            rng=random.Random((self._seed or 0) + 1),
            incarnation=self.incarnation,
        )
        spec = get_stack(self.protocol)
        self.membership, self.broadcast_layer = spec.build(
            host,
            gossip_host,
            self._params,
            self._tracker,
            on_deliver=self._on_deliver,
            roster=self._roster,
        )
        for message_type, handler in self.membership.handlers().items():
            self._handlers[message_type] = handler
        for message_type, handler in self.broadcast_layer.handlers().items():
            self._handlers[message_type] = handler
        self._started = True
        return self.node_id

    async def stop(self) -> None:
        """Leave the overlay gracefully and close all sockets."""
        if not self._started:
            return
        self._started = False
        self.membership.stop()
        leave = getattr(self.membership, "leave", None)
        if callable(leave):
            leave()
        await asyncio.sleep(0)  # let DISCONNECT frames get queued
        await self.transport.close()

    async def crash(self) -> None:
        """Close sockets abruptly *without* notifying anyone — peers must
        find out through connection resets (the failure-detection path)."""
        if not self._started:
            return
        self._started = False
        self.membership.stop()
        await self.transport.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    @property
    def delivered(self) -> list[tuple[MessageId, Any]]:
        """This incarnation's deliveries as ``(message_id, payload)`` pairs.

        A view over the shared :attr:`delivery_log`, scoped to this node's
        identity *and* incarnation — a reborn process starts with an empty
        history even when it reuses its predecessor's address.
        """
        if self.node_id is None:
            return []
        return [
            (record.message_id, record.payload)
            for record in self.delivery_log.records_for(
                self.node_id, incarnation=self.incarnation
            )
        ]

    def join(self, contact: NodeId) -> None:
        self._require_started()
        self.membership.join(contact)

    def start_cycles(self) -> None:
        """Begin self-scheduled periodic shuffles."""
        self._require_started()
        self.membership.start()

    def broadcast(self, payload: Any = None) -> MessageId:
        self._require_started()
        return self.broadcast_layer.broadcast(payload)

    def active_view(self) -> tuple[NodeId, ...]:
        self._require_started()
        return self.membership.active_members()

    def passive_view(self) -> tuple[NodeId, ...]:
        self._require_started()
        return self.membership.passive_members()

    def set_deliver_callback(self, callback: Optional[DeliverCallback]) -> None:
        """Install (or clear) the application delivery callback.

        The service layer attaches its fan-out here; deliveries continue to
        land in :attr:`delivery_log` regardless.
        """
        self._external_deliver = callback

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatch(self, peer: NodeId, message: Message) -> None:
        if self.drop_message_types and type(message).__name__ in self.drop_message_types:
            self.adversary_drops += 1
            return
        handler = self._handlers.get(type(message))
        if handler is None:
            self.unhandled += 1
            return
        handler(message)

    def _on_deliver(self, message_id: MessageId, payload: Any) -> None:
        self.delivery_log.append(
            DeliveryRecord(
                node=self.node_id,
                incarnation=self.incarnation,
                message_id=message_id,
                payload=payload,
                at=self._loop.time(),
            )
        )
        if self._external_deliver is not None:
            self._external_deliver(message_id, payload)

    def _require_started(self) -> None:
        if not self._started:
            raise ConfigurationError("node not started; call await node.start() first")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "started" if self._started else "stopped"
        return f"<RuntimeNode {self.node_id} inc={self.incarnation} {state}>"
