"""Asyncio implementation of the sans-io :class:`Clock` interface."""

from __future__ import annotations

import asyncio
from typing import Callable

from ..common.interfaces import Clock, TimerHandle


class AsyncioTimerHandle(TimerHandle):
    """Wraps :class:`asyncio.TimerHandle` in the sans-io handle API."""

    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class AsyncioClock(Clock):
    """Clock backed by the running event loop.

    Protocol state machines receive this in their :class:`Host`, so the
    very same HyParView code that runs inside the simulator schedules its
    shuffles with ``loop.call_later`` here.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def now(self) -> float:
        return self._loop.time()

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return AsyncioTimerHandle(self._loop.call_later(delay, callback))
