"""Asyncio TCP implementation of the sans-io :class:`Transport` interface.

Wire format: newline-delimited JSON frames.  The first frame on every
connection is a hello — ``{"hello": [host, port]}`` — identifying the
*listening* address of the dialing side (TCP source ports are ephemeral
and useless as identities).  Every subsequent frame is an encoded message
(:func:`repro.common.messages.encode_message`).

Semantics mirror the simulator exactly:

* ``send(dst, msg)`` — best effort; connection errors are swallowed;
* ``send(dst, msg, on_failure=cb)`` — ``cb`` fires when the peer cannot be
  reached or the write fails (TCP reset == failure detector);
* ``probe(dst, cb)`` — connection attempt, reports success/failure;
* ``watch(dst, on_down)`` — keeps a pooled connection open to ``dst``; the
  reader hitting EOF/reset fires ``on_down``.  This is the open-TCP-
  connection-per-active-view-member of Section 4.1.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Optional

from ..common.errors import CodecError
from ..common.ids import NodeId
from ..common.interfaces import FailureCallback, ProbeCallback, Transport
from ..common.messages import Message, decode_message, encode_message

#: Handler invoked with (peer, message) for every decoded incoming frame.
IncomingHandler = Callable[[NodeId, Message], None]

#: Outbound fault injector (chaos testing): called with ``(dst, message)``
#: before every send, and with ``(dst, None)`` before every probe (a probe
#: carries no frame — injectors must tolerate the ``None``).  Verdicts:
#: ``None`` passes the frame through, ``"drop"`` discards it silently
#: (lossy link), ``"fail"`` discards it and reports a send failure to the
#: caller (partition / TCP reset; the only verdict a probe honours), and
#: a positive float delays the frame by that many seconds (jitter).
FaultInjector = Callable[[NodeId, Optional[Message]], object]


class _Connection:
    """One pooled TCP connection with its reader task."""

    __slots__ = ("peer", "reader", "writer", "reader_task", "closed")

    def __init__(self, peer: NodeId, reader, writer) -> None:
        self.peer = peer
        self.reader = reader
        self.writer = writer
        self.reader_task: Optional[asyncio.Task] = None
        self.closed = False


class AsyncioTransport(Transport):
    """Connection-pooling TCP transport for one runtime node."""

    def __init__(
        self,
        local: NodeId,
        on_message: IncomingHandler,
        *,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        connect_timeout: float = 2.0,
    ) -> None:
        self._local = local
        self._on_message = on_message
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._connect_timeout = connect_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: dict[NodeId, _Connection] = {}
        self._connecting: dict[NodeId, asyncio.Task] = {}
        self._watch_callbacks: dict[NodeId, Callable[[NodeId], None]] = {}
        self._background: set[asyncio.Task] = set()
        self._closing = False
        self.frames_sent = 0
        self.frames_received = 0
        #: Chaos hook (see :data:`FaultInjector`); ``None`` = no faults.
        self.fault_injector: Optional[FaultInjector] = None
        self.frames_faulted = 0

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    @property
    def local_address(self) -> NodeId:
        return self._local

    def send(
        self,
        dst: NodeId,
        message: Message,
        on_failure: Optional[FailureCallback] = None,
    ) -> None:
        # Encode here, synchronously: an unencodable message is a caller
        # bug and must surface in the caller, not in a detached task.
        frame = (json.dumps(encode_message(message)) + "\n").encode("utf-8")
        injector = self.fault_injector
        if injector is not None:
            verdict = injector(dst, message)
            if verdict == "drop":
                self.frames_faulted += 1
                return
            if verdict == "fail":
                self.frames_faulted += 1
                if on_failure is not None and not self._closing:
                    self._loop.call_soon(on_failure, dst, message)
                return
            if isinstance(verdict, (int, float)) and verdict > 0:
                self.frames_faulted += 1
                self._spawn(
                    self._delayed_send(float(verdict), dst, frame, message, on_failure)
                )
                return
        self._spawn(self._send_async(dst, frame, message, on_failure))

    def probe(self, dst: NodeId, on_result: ProbeCallback) -> None:
        injector = self.fault_injector
        if injector is not None and injector(dst, None) == "fail":
            # Partitioned peers are unreachable even when a pooled
            # connection still exists underneath.
            self.frames_faulted += 1
            if not self._closing:
                self._loop.call_soon(on_result, dst, False)
            return
        self._spawn(self._probe_async(dst, on_result))

    def watch(self, dst: NodeId, on_down: Callable[[NodeId], None]) -> None:
        self._watch_callbacks[dst] = on_down
        self._spawn(self._ensure_watch(dst))

    def unwatch(self, dst: NodeId) -> None:
        self._watch_callbacks.pop(dst, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start_server(self) -> None:
        """Listen on the local address (call before any protocol starts)."""
        self._server = await asyncio.start_server(
            self._handle_incoming, self._local.host, self._local.port
        )

    async def close(self) -> None:
        """Tear everything down: server, pool, background tasks."""
        self._closing = True
        self._watch_callbacks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections.values()):
            self._close_connection(connection, notify=False)
        self._connections.clear()
        for task in list(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        self._background.clear()

    # ------------------------------------------------------------------
    # Outbound path
    # ------------------------------------------------------------------
    async def _send_async(
        self,
        dst: NodeId,
        frame: bytes,
        message: Message,
        on_failure: Optional[FailureCallback],
    ) -> None:
        try:
            connection = await self._get_connection(dst)
            connection.writer.write(frame)
            await connection.writer.drain()
            self.frames_sent += 1
        except (OSError, asyncio.TimeoutError, ConnectionError):
            if on_failure is not None and not self._closing:
                on_failure(dst, message)

    async def _delayed_send(
        self,
        delay: float,
        dst: NodeId,
        frame: bytes,
        message: Message,
        on_failure: Optional[FailureCallback],
    ) -> None:
        await asyncio.sleep(delay)
        await self._send_async(dst, frame, message, on_failure)

    async def _probe_async(self, dst: NodeId, on_result: ProbeCallback) -> None:
        try:
            await self._get_connection(dst)
        except (OSError, asyncio.TimeoutError, ConnectionError):
            if not self._closing:
                on_result(dst, False)
            return
        if not self._closing:
            on_result(dst, True)

    async def _ensure_watch(self, dst: NodeId) -> None:
        """Open the held connection behind ``watch``; failure to connect is
        itself a down signal."""
        try:
            await self._get_connection(dst)
        except (OSError, asyncio.TimeoutError, ConnectionError):
            callback = self._watch_callbacks.pop(dst, None)
            if callback is not None and not self._closing:
                callback(dst)

    async def _get_connection(self, dst: NodeId) -> _Connection:
        existing = self._connections.get(dst)
        if existing is not None and not existing.closed:
            return existing
        pending = self._connecting.get(dst)
        if pending is None:
            pending = self._loop.create_task(self._dial(dst))
            self._connecting[dst] = pending
            pending.add_done_callback(self._dial_finished)
        # Shield so several queued sends can await one dial attempt.
        return await asyncio.shield(pending)

    def _dial_finished(self, task: asyncio.Task) -> None:
        for dst, pending in list(self._connecting.items()):
            if pending is task:
                del self._connecting[dst]
        if not task.cancelled():
            # Retrieve the exception even when every awaiting send was
            # cancelled mid-dial, so asyncio never logs it as unretrieved.
            task.exception()

    async def _dial(self, dst: NodeId) -> _Connection:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(dst.host, dst.port), timeout=self._connect_timeout
        )
        hello = json.dumps({"hello": self._local.to_wire()}) + "\n"
        writer.write(hello.encode("utf-8"))
        await writer.drain()
        connection = _Connection(dst, reader, writer)
        self._register(connection)
        return connection

    # ------------------------------------------------------------------
    # Inbound path
    # ------------------------------------------------------------------
    async def _handle_incoming(self, reader, writer) -> None:
        try:
            hello_line = await reader.readline()
            if not hello_line:
                writer.close()
                return
            hello = json.loads(hello_line)
            peer = NodeId.from_wire(hello["hello"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            writer.close()
            return
        connection = _Connection(peer, reader, writer)
        self._register(connection)

    def _register(self, connection: _Connection) -> None:
        previous = self._connections.get(connection.peer)
        self._connections[connection.peer] = connection
        if previous is not None and previous is not connection:
            # Simultaneous dials: keep the newest, silently retire the
            # older socket (its reader task ends without a down signal).
            previous.closed = True
            previous.writer.close()
        connection.reader_task = self._spawn(self._read_loop(connection))

    async def _read_loop(self, connection: _Connection) -> None:
        try:
            while True:
                line = await connection.reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(json.loads(line))
                except (json.JSONDecodeError, CodecError):
                    continue  # corrupt frame: drop, keep the connection
                self.frames_received += 1
                self._on_message(connection.peer, message)
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connection_lost(connection)

    def _connection_lost(self, connection: _Connection) -> None:
        if connection.closed:
            return  # intentionally retired; not a peer failure
        connection.closed = True
        if self._connections.get(connection.peer) is connection:
            del self._connections[connection.peer]
        try:
            connection.writer.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        callback = self._watch_callbacks.pop(connection.peer, None)
        if callback is not None and not self._closing:
            callback(connection.peer)

    def _close_connection(self, connection: _Connection, *, notify: bool) -> None:
        connection.closed = not notify  # suppress the down signal if asked
        if connection.reader_task is not None:
            connection.reader_task.cancel()
        try:
            connection.writer.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass

    # ------------------------------------------------------------------
    def _spawn(self, coroutine: Awaitable) -> asyncio.Task:
        task = self._loop.create_task(coroutine)
        self._background.add(task)
        task.add_done_callback(self._background.discard)
        return task
