"""Asyncio TCP implementation of the sans-io :class:`Transport` interface.

Wire format: newline-delimited JSON frames.  The first frame on every
connection is a hello — ``{"hello": [host, port], "epoch": n}`` —
identifying the *listening* address of the sending side (TCP source ports
are ephemeral and useless as identities) and its **epoch**: the restart
count of the process bound to that address.  Both sides send one: the
dialer immediately after connecting, the acceptor in reply.  Every
subsequent frame is an encoded message
(:func:`repro.common.messages.encode_message`).

The epoch is how peers distinguish a restarted node from its predecessor
when the address is reused.  The transport remembers the highest epoch it
has seen per peer address; a handshake claiming an *older* epoch is
rejected outright (a stale identity — either the dead predecessor's
half-open socket or an impostor replaying its address), and frames arriving
on a pooled connection whose epoch has since been superseded are dropped.
Both show up in :attr:`frames_stale` / :attr:`stale_handshakes`.

Outbound frames go through a **bounded per-peer outbox**: one queue and one
pump task per destination, so one slow or dead peer can only ever hold
``max_queue`` frames of memory (the bulkhead pattern) and never blocks
traffic to other peers.  When the queue is full the *new* frame is rejected
with its failure callback — backpressure surfaces at the caller, it does
not accumulate.

Semantics mirror the simulator exactly:

* ``send(dst, msg)`` — best effort; connection errors are swallowed;
* ``send(dst, msg, on_failure=cb)`` — ``cb`` fires when the peer cannot be
  reached or the write fails (TCP reset == failure detector);
* ``probe(dst, cb)`` — connection attempt, reports success/failure;
* ``watch(dst, on_down)`` — keeps a pooled connection open to ``dst``; the
  reader hitting EOF/reset fires ``on_down``.  This is the open-TCP-
  connection-per-active-view-member of Section 4.1.

Two optional hooks let a service layer wrap every peer link without
subclassing: :attr:`send_guard` (return ``False`` to reject a send before
it touches the network — the circuit breaker's fail-fast path) and
:attr:`send_observer` (called with ``(dst, ok)`` after every send attempt —
the breaker's failure counter feed).
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Optional

from ..common.errors import CodecError
from ..common.ids import NodeId
from ..common.interfaces import FailureCallback, ProbeCallback, Transport
from ..common.messages import Message, decode_message, encode_message

#: Handler invoked with (peer, message) for every decoded incoming frame.
IncomingHandler = Callable[[NodeId, Message], None]

#: Outbound fault injector (chaos testing): called with ``(dst, message)``
#: before every send, and with ``(dst, None)`` before every probe (a probe
#: carries no frame — injectors must tolerate the ``None``).  Verdicts:
#: ``None`` passes the frame through, ``"drop"`` discards it silently
#: (lossy link), ``"fail"`` discards it and reports a send failure to the
#: caller (partition / TCP reset; the only verdict a probe honours), and
#: a positive float delays the frame by that many seconds (jitter).
FaultInjector = Callable[[NodeId, Optional[Message]], object]

#: Pre-send gate: return ``False`` to reject the frame without touching the
#: network (reported to the caller as a send failure).
SendGuard = Callable[[NodeId], bool]

#: Post-send signal: ``(dst, ok)`` after every send attempt that reached
#: the network path (or was failed by the fault injector).
SendObserver = Callable[[NodeId, bool], None]


class _Connection:
    """One pooled TCP connection with its reader task.

    ``epoch`` is the epoch the *remote* side claimed in its hello:  known
    immediately for accepted connections, learned from the reply hello (the
    first frame the acceptor writes) for dialed ones.
    """

    __slots__ = ("peer", "reader", "writer", "reader_task", "closed", "epoch")

    def __init__(self, peer: NodeId, reader, writer, epoch: Optional[int] = None) -> None:
        self.peer = peer
        self.reader = reader
        self.writer = writer
        self.reader_task: Optional[asyncio.Task] = None
        self.closed = False
        self.epoch = epoch


class _Outbox:
    """Bounded send queue + pump task for one destination."""

    __slots__ = ("queue", "task")

    def __init__(self, queue: asyncio.Queue, task: asyncio.Task) -> None:
        self.queue = queue
        self.task = task


class AsyncioTransport(Transport):
    """Connection-pooling TCP transport for one runtime node."""

    def __init__(
        self,
        local: NodeId,
        on_message: IncomingHandler,
        *,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        connect_timeout: float = 2.0,
        epoch: int = 0,
        max_queue: int = 256,
    ) -> None:
        self._local = local
        self._on_message = on_message
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._connect_timeout = connect_timeout
        self._epoch = epoch
        self._max_queue = max_queue
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: dict[NodeId, _Connection] = {}
        self._connecting: dict[NodeId, asyncio.Task] = {}
        self._outboxes: dict[NodeId, _Outbox] = {}
        #: Highest epoch ever claimed by each peer address.
        self._peer_epochs: dict[NodeId, int] = {}
        self._watch_callbacks: dict[NodeId, Callable[[NodeId], None]] = {}
        self._background: set[asyncio.Task] = set()
        self._closing = False
        self.frames_sent = 0
        self.frames_received = 0
        #: Frames dropped because their connection's epoch was superseded.
        self.frames_stale = 0
        #: Inbound handshakes rejected for claiming an outdated epoch.
        self.stale_handshakes = 0
        #: Frames rejected because the destination's outbox was full.
        self.frames_overflow = 0
        #: Frames rejected by :attr:`send_guard` before reaching the network.
        self.frames_rejected = 0
        #: Chaos hook (see :data:`FaultInjector`); ``None`` = no faults.
        self.fault_injector: Optional[FaultInjector] = None
        self.frames_faulted = 0
        #: Service hooks (see :data:`SendGuard` / :data:`SendObserver`).
        self.send_guard: Optional[SendGuard] = None
        self.send_observer: Optional[SendObserver] = None
        #: Optional dissemination-trace sink with the same ``record(time,
        #: kind, src, dst, message)`` interface the simulator's Network
        #: uses (e.g. :class:`repro.obs.trace.TraceSegment`).  ``None``
        #: (the default) keeps the hot path at one ``if`` check.
        self.trace = None

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    @property
    def local_address(self) -> NodeId:
        return self._local

    @property
    def epoch(self) -> int:
        return self._epoch

    def peer_epoch(self, peer: NodeId) -> int:
        """Highest epoch this transport has seen ``peer`` claim."""
        return self._peer_epochs.get(peer, 0)

    def send(
        self,
        dst: NodeId,
        message: Message,
        on_failure: Optional[FailureCallback] = None,
    ) -> None:
        # Encode here, synchronously: an unencodable message is a caller
        # bug and must surface in the caller, not in a detached task.
        frame = (json.dumps(encode_message(message)) + "\n").encode("utf-8")
        if self.trace is not None:
            self.trace.record(self._loop.time(), "send", self._local, dst, message)
        guard = self.send_guard
        if guard is not None and not guard(dst):
            self.frames_rejected += 1
            if on_failure is not None and not self._closing:
                self._loop.call_soon(on_failure, dst, message)
            return
        injector = self.fault_injector
        if injector is not None:
            verdict = injector(dst, message)
            if verdict == "drop":
                self.frames_faulted += 1
                return
            if verdict == "fail":
                self.frames_faulted += 1
                self._observe(dst, False)
                if on_failure is not None and not self._closing:
                    self._loop.call_soon(on_failure, dst, message)
                return
            if isinstance(verdict, (int, float)) and verdict > 0:
                self.frames_faulted += 1
                self._spawn(
                    self._delayed_send(float(verdict), dst, frame, message, on_failure)
                )
                return
        self._enqueue(dst, frame, message, on_failure)

    def probe(self, dst: NodeId, on_result: ProbeCallback) -> None:
        injector = self.fault_injector
        if injector is not None and injector(dst, None) == "fail":
            # Partitioned peers are unreachable even when a pooled
            # connection still exists underneath.
            self.frames_faulted += 1
            if not self._closing:
                self._loop.call_soon(on_result, dst, False)
            return
        self._spawn(self._probe_async(dst, on_result))

    def watch(self, dst: NodeId, on_down: Callable[[NodeId], None]) -> None:
        self._watch_callbacks[dst] = on_down
        self._spawn(self._ensure_watch(dst))

    def unwatch(self, dst: NodeId) -> None:
        self._watch_callbacks.pop(dst, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start_server(self) -> None:
        """Listen on the local address (call before any protocol starts)."""
        self._server = await asyncio.start_server(
            self._handle_incoming, self._local.host, self._local.port
        )

    async def close(self) -> None:
        """Tear everything down: server, pool, outboxes, background tasks."""
        self._closing = True
        self._watch_callbacks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for outbox in self._outboxes.values():
            outbox.task.cancel()
        self._outboxes.clear()
        for connection in list(self._connections.values()):
            self._close_connection(connection, notify=False)
        self._connections.clear()
        for task in list(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        self._background.clear()

    # ------------------------------------------------------------------
    # Outbound path
    # ------------------------------------------------------------------
    def _enqueue(
        self,
        dst: NodeId,
        frame: bytes,
        message: Message,
        on_failure: Optional[FailureCallback],
    ) -> None:
        if self._closing:
            return
        outbox = self._outboxes.get(dst)
        if outbox is None or outbox.task.done():
            queue: asyncio.Queue = asyncio.Queue()
            outbox = _Outbox(queue, self._spawn(self._pump(dst, queue)))
            self._outboxes[dst] = outbox
        if outbox.queue.qsize() >= self._max_queue:
            # Bulkhead: a slow/dead peer can hold at most max_queue frames.
            # The *new* frame is the one rejected, so backpressure reaches
            # the caller immediately instead of silently shedding old load.
            self.frames_overflow += 1
            if on_failure is not None:
                self._loop.call_soon(on_failure, dst, message)
            return
        outbox.queue.put_nowait((frame, message, on_failure))

    async def _pump(self, dst: NodeId, queue: asyncio.Queue) -> None:
        """Drain one destination's outbox over its pooled connection."""
        while True:
            frame, message, on_failure = await queue.get()
            try:
                connection = await self._get_connection(dst)
            except (OSError, asyncio.TimeoutError, ConnectionError):
                # The dial failed: everything queued behind this frame
                # would have ridden the same connection, so fail the lot
                # (matches the old task-per-send behaviour where every
                # queued send awaited the one shared dial).
                self._send_failed(dst, message, on_failure)
                while not queue.empty():
                    _frame, queued_message, queued_cb = queue.get_nowait()
                    self._send_failed(dst, queued_message, queued_cb)
                continue
            try:
                connection.writer.write(frame)
                await connection.writer.drain()
            except (OSError, ConnectionError):
                self._send_failed(dst, message, on_failure)
                continue
            self.frames_sent += 1
            self._observe(dst, True)

    def _send_failed(
        self, dst: NodeId, message: Message, on_failure: Optional[FailureCallback]
    ) -> None:
        self._observe(dst, False)
        if on_failure is not None and not self._closing:
            on_failure(dst, message)

    def _observe(self, dst: NodeId, ok: bool) -> None:
        observer = self.send_observer
        if observer is not None and not self._closing:
            observer(dst, ok)

    async def _delayed_send(
        self,
        delay: float,
        dst: NodeId,
        frame: bytes,
        message: Message,
        on_failure: Optional[FailureCallback],
    ) -> None:
        await asyncio.sleep(delay)
        self._enqueue(dst, frame, message, on_failure)

    async def _probe_async(self, dst: NodeId, on_result: ProbeCallback) -> None:
        try:
            await self._get_connection(dst)
        except (OSError, asyncio.TimeoutError, ConnectionError):
            if not self._closing:
                on_result(dst, False)
            return
        if not self._closing:
            on_result(dst, True)

    async def _ensure_watch(self, dst: NodeId) -> None:
        """Open the held connection behind ``watch``; failure to connect is
        itself a down signal."""
        try:
            await self._get_connection(dst)
        except (OSError, asyncio.TimeoutError, ConnectionError):
            callback = self._watch_callbacks.pop(dst, None)
            if callback is not None and not self._closing:
                callback(dst)

    async def _get_connection(self, dst: NodeId) -> _Connection:
        existing = self._connections.get(dst)
        if existing is not None and not existing.closed:
            return existing
        pending = self._connecting.get(dst)
        if pending is None:
            pending = self._loop.create_task(self._dial(dst))
            self._connecting[dst] = pending
            pending.add_done_callback(self._dial_finished)
        # Shield so several queued sends can await one dial attempt.
        return await asyncio.shield(pending)

    def _dial_finished(self, task: asyncio.Task) -> None:
        for dst, pending in list(self._connecting.items()):
            if pending is task:
                del self._connecting[dst]
        if not task.cancelled():
            # Retrieve the exception even when every awaiting send was
            # cancelled mid-dial, so asyncio never logs it as unretrieved.
            task.exception()

    async def _dial(self, dst: NodeId) -> _Connection:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(dst.host, dst.port), timeout=self._connect_timeout
        )
        hello = json.dumps({"hello": self._local.to_wire(), "epoch": self._epoch}) + "\n"
        writer.write(hello.encode("utf-8"))
        await writer.drain()
        # The peer's epoch arrives in its reply hello — the first frame it
        # writes — and is applied by the read loop.
        connection = _Connection(dst, reader, writer)
        self._register(connection)
        return connection

    # ------------------------------------------------------------------
    # Inbound path
    # ------------------------------------------------------------------
    async def _handle_incoming(self, reader, writer) -> None:
        try:
            hello_line = await reader.readline()
            if not hello_line:
                writer.close()
                return
            hello = json.loads(hello_line)
            peer = NodeId.from_wire(hello["hello"])
            peer_epoch = int(hello.get("epoch", 0))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            writer.close()
            return
        if peer_epoch < self._peer_epochs.get(peer, 0):
            # A handshake claiming an epoch this address has already moved
            # past: the dead predecessor's half-open socket, or someone
            # replaying its identity.  Refuse the connection entirely.
            self.stale_handshakes += 1
            writer.close()
            return
        self._note_epoch(peer, peer_epoch)
        try:
            reply = json.dumps({"hello": self._local.to_wire(), "epoch": self._epoch}) + "\n"
            writer.write(reply.encode("utf-8"))
            await writer.drain()
        except (OSError, ConnectionError):
            writer.close()
            return
        connection = _Connection(peer, reader, writer, epoch=peer_epoch)
        self._register(connection)

    def _note_epoch(self, peer: NodeId, epoch: int) -> None:
        """Record a claimed epoch; a *newer* one retires stale connections."""
        known = self._peer_epochs.get(peer, 0)
        if epoch <= known:
            return
        self._peer_epochs[peer] = epoch
        pooled = self._connections.get(peer)
        if pooled is not None and pooled.epoch is not None and pooled.epoch < epoch:
            # The pool still holds a connection to the previous
            # incarnation; retire it silently — the new incarnation's
            # connection replaces it, this is not a peer failure.
            del self._connections[peer]
            pooled.closed = True
            pooled.writer.close()

    def _register(self, connection: _Connection) -> None:
        previous = self._connections.get(connection.peer)
        self._connections[connection.peer] = connection
        if previous is not None and previous is not connection:
            # Simultaneous dials: keep the newest, silently retire the
            # older socket (its reader task ends without a down signal).
            previous.closed = True
            previous.writer.close()
        connection.reader_task = self._spawn(self._read_loop(connection))

    async def _read_loop(self, connection: _Connection) -> None:
        try:
            while True:
                line = await connection.reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # corrupt frame: drop, keep the connection
                if isinstance(payload, dict) and "hello" in payload:
                    # The acceptor's reply hello on a dialed connection:
                    # learn the peer's epoch, dispatch nothing.
                    try:
                        connection.epoch = int(payload.get("epoch", 0))
                    except (TypeError, ValueError):
                        continue
                    self._note_epoch(connection.peer, connection.epoch)
                    continue
                if (
                    connection.epoch is not None
                    and connection.epoch < self._peer_epochs.get(connection.peer, 0)
                ):
                    # This connection belongs to a superseded incarnation
                    # of the peer; whatever it says is from the past.
                    self.frames_stale += 1
                    continue
                try:
                    message = decode_message(payload)
                except CodecError:
                    continue
                self.frames_received += 1
                if self.trace is not None:
                    self.trace.record(
                        self._loop.time(), "deliver", connection.peer, self._local, message
                    )
                self._on_message(connection.peer, message)
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connection_lost(connection)

    def _connection_lost(self, connection: _Connection) -> None:
        if connection.closed:
            return  # intentionally retired; not a peer failure
        connection.closed = True
        if self._connections.get(connection.peer) is connection:
            del self._connections[connection.peer]
        try:
            connection.writer.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        callback = self._watch_callbacks.pop(connection.peer, None)
        if callback is not None and not self._closing:
            callback(connection.peer)

    def _close_connection(self, connection: _Connection, *, notify: bool) -> None:
        connection.closed = not notify  # suppress the down signal if asked
        if connection.reader_task is not None:
            connection.reader_task.cancel()
        try:
            connection.writer.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass

    # ------------------------------------------------------------------
    def _spawn(self, coroutine: Awaitable) -> asyncio.Task:
        task = self._loop.create_task(coroutine)
        self._background.add(task)
        task.add_done_callback(self._background.discard)
        return task
