"""Local cluster helper: spin up several runtime nodes on loopback TCP.

Used by the integration tests, the service layer and the ``live_network``
example to stand up a real (multi-socket, single-process) overlay
deployment in a few lines.  All nodes share one
:class:`~repro.runtime.delivery.DeliveryLog`, which is the cluster's single
delivery surface: counters, event-driven waits and the async-iterator
stream all come from it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from ..common.errors import ConfigurationError
from ..common.ids import MessageId
from ..core.config import HyParViewConfig
from ..gossip.plumtree import PlumtreeConfig
from .delivery import DeliveryLog
from .node import RuntimeNode


class LocalCluster:
    """A set of :class:`RuntimeNode` instances joined into one overlay."""

    def __init__(
        self,
        size: int,
        *,
        config: Optional[HyParViewConfig] = None,
        protocol: Optional[str] = None,
        broadcast: str = "flood",
        plumtree_config: Optional[PlumtreeConfig] = None,
        base_seed: int = 1,
    ) -> None:
        if size < 2:
            raise ConfigurationError(f"cluster needs at least 2 nodes: {size}")
        self._config = config
        self._protocol = protocol
        self._broadcast = broadcast
        self._plumtree_config = plumtree_config
        self._base_seed = base_seed
        self._spawned = size
        self.delivery_log = DeliveryLog()
        #: Observers called with the replacement node after every restart
        #: (the service layer re-attaches its per-node facade here).
        self.restart_listeners: list[Callable[[int, RuntimeNode], None]] = []
        self.nodes = [
            RuntimeNode(
                config=config,
                protocol=protocol,
                broadcast=broadcast,
                plumtree_config=plumtree_config,
                seed=base_seed + index,
                delivery_log=self.delivery_log,
            )
            for index in range(size)
        ]

    async def start(self, *, join_delay: float = 0.05, settle: float = 0.3) -> None:
        """Start every node and join them through the first (the paper's
        single-contact procedure)."""
        for node in self.nodes:
            await node.start()
        contact = self.nodes[0].node_id
        for node in self.nodes[1:]:
            node.join(contact)
            await asyncio.sleep(join_delay)
        await asyncio.sleep(settle)

    async def stop(self) -> None:
        for node in self.nodes:
            await node.stop()

    # ------------------------------------------------------------------
    # Chaos operations (ChaosController drives these)
    # ------------------------------------------------------------------
    def alive_nodes(self) -> list[RuntimeNode]:
        return [node for node in self.nodes if node.started]

    async def crash_node(self, index: int) -> RuntimeNode:
        """Abruptly kill one node (sockets reset, nobody is told)."""
        node = self.nodes[index]
        await node.crash()
        return node

    async def restart_node(
        self, index: int, contact=None, *, reuse_port: bool = False
    ) -> RuntimeNode:
        """Replace a crashed node with a fresh process that re-joins.

        By default the replacement binds a fresh port and gets a fresh
        seed: a restarted process shares nothing with its predecessor but
        the slot in ``self.nodes``.  With ``reuse_port=True`` the new
        incarnation binds the *same* address the crashed process held —
        the stale-identity case, where peers still carrying the old
        NodeId in their views dial a process that has none of the old
        protocol state.  The replacement's incarnation is its
        predecessor's plus one, so the epoch handshake lets those peers
        tell the two processes apart and reject the predecessor's
        leftovers.  (The simulator models this via ``SimNode.reset``;
        this is the live-runtime equivalent.)
        """
        old = self.nodes[index]
        if old.started:
            raise ConfigurationError(f"node {index} is still running")
        if reuse_port and old.node_id is None:
            raise ConfigurationError(f"node {index} never bound a port to reuse")
        self._spawned += 1
        node = RuntimeNode(
            port=old.node_id.port if reuse_port else 0,
            config=self._config,
            protocol=self._protocol,
            broadcast=self._broadcast,
            plumtree_config=self._plumtree_config,
            seed=self._base_seed + self._spawned,
            incarnation=old.incarnation + 1,
            delivery_log=self.delivery_log,
        )
        await node.start()
        self.nodes[index] = node
        if contact is None:
            alive = [peer for peer in self.alive_nodes() if peer is not node]
            contact = alive[0].node_id if alive else None
        if contact is not None:
            node.join(contact)
        for listener in list(self.restart_listeners):
            listener(index, node)
        return node

    async def broadcast_and_settle(
        self, origin_index: int = 0, payload: Any = None, settle: float = 0.5
    ) -> MessageId:
        message_id = self.nodes[origin_index].broadcast(payload)
        await asyncio.sleep(settle)
        return message_id

    def delivery_count(self, message_id: MessageId) -> int:
        """How many distinct nodes delivered ``message_id``."""
        return self.delivery_log.count(message_id)

    async def wait_for_delivery(
        self, message_id: MessageId, expected: int, *, timeout: float = 5.0
    ) -> int:
        """Resolve once ``expected`` nodes delivered (or timeout); returns
        the final count.  Event-driven via the shared delivery log."""
        return await self.delivery_log.wait_count(message_id, expected, timeout=timeout)

    async def wait_for_views(self, minimum: int = 1, *, timeout: float = 5.0) -> bool:
        """Poll until every node has at least ``minimum`` active peers."""
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            if all(len(node.active_view()) >= minimum for node in self.nodes):
                return True
            await asyncio.sleep(0.05)
        return False
