"""The unified delivery surface of the asyncio runtime.

Before this module every consumer of "which node delivered what, when"
rolled its own: :class:`RuntimeNode` kept a ``delivered`` list,
``LocalCluster.wait_for_delivery`` polled those lists on a 50 ms timer, and
each integration test wrote its own deadline loop.  A :class:`DeliveryLog`
replaces all of that with one append-only record stream that offers three
read surfaces:

* **counters** — :meth:`count` (distinct nodes that delivered a message)
  and :meth:`records_for`;
* **event-driven waits** — :meth:`wait_count` resolves the moment the
  expected delivery count is reached, no polling;
* **an async iterator** — :meth:`subscribe` yields records as they are
  appended; the pub/sub facade fans deliveries out to topic subscribers
  through it, and live latency measurement consumes the same timestamps.

Appends are synchronous (delivery callbacks run inside the event loop);
waiters and subscribers are woken via ``call_soon``-safe primitives.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, AsyncIterator, Optional

from ..common.ids import MessageId, NodeId


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One delivery: a node (at an incarnation) delivered a payload."""

    node: NodeId
    #: Restart count of the delivering process — distinguishes a reborn
    #: node's deliveries from its predecessor's when the address is reused.
    incarnation: int
    message_id: MessageId
    payload: Any
    #: Event-loop time (``loop.time()``) at delivery.
    at: float


class DeliveryStream:
    """One subscriber's live view of a :class:`DeliveryLog`.

    Async-iterate it (``async for record in stream``) or await
    :meth:`get` directly; :meth:`close` detaches from the log and ends the
    iteration.  The internal queue is unbounded — backpressure belongs to
    the consumer built on top (the pub/sub facade bounds its per-client
    queues), not to the measurement surface.
    """

    __slots__ = ("_log", "_queue", "_closed")

    _SENTINEL = object()

    def __init__(self, log: "DeliveryLog") -> None:
        self._log = log
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False

    def _feed(self, record: DeliveryRecord) -> None:
        if not self._closed:
            self._queue.put_nowait(record)

    async def get(self) -> Optional[DeliveryRecord]:
        """Next record, or ``None`` once the stream is closed and drained."""
        if self._closed and self._queue.empty():
            return None
        item = await self._queue.get()
        if item is DeliveryStream._SENTINEL:
            return None
        return item

    def close(self) -> None:
        """Detach from the log; pending iterations finish with the queue."""
        if self._closed:
            return
        self._closed = True
        self._log._streams.discard(self)
        self._queue.put_nowait(DeliveryStream._SENTINEL)

    def __aiter__(self) -> AsyncIterator[DeliveryRecord]:
        return self

    async def __anext__(self) -> DeliveryRecord:
        record = await self.get()
        if record is None:
            raise StopAsyncIteration
        return record


class _CountWaiter:
    __slots__ = ("message_id", "expected", "future")

    def __init__(self, message_id: MessageId, expected: int, future: asyncio.Future) -> None:
        self.message_id = message_id
        self.expected = expected
        self.future = future


class DeliveryLog:
    """Append-only log of every delivery across a set of runtime nodes."""

    def __init__(self) -> None:
        self.records: list[DeliveryRecord] = []
        #: message id -> the distinct node identities that delivered it.
        self._nodes_by_message: dict[MessageId, set[NodeId]] = {}
        self._streams: set[DeliveryStream] = set()
        self._waiters: list[_CountWaiter] = []

    # ------------------------------------------------------------------
    # Write surface (delivery callbacks, inside the event loop)
    # ------------------------------------------------------------------
    def append(self, record: DeliveryRecord) -> None:
        self.records.append(record)
        nodes = self._nodes_by_message.setdefault(record.message_id, set())
        nodes.add(record.node)
        for stream in tuple(self._streams):
            stream._feed(record)
        if self._waiters:
            count = len(nodes)
            still_waiting = []
            for waiter in self._waiters:
                if (
                    waiter.message_id == record.message_id
                    and count >= waiter.expected
                    and not waiter.future.done()
                ):
                    waiter.future.set_result(count)
                elif not waiter.future.done():
                    still_waiting.append(waiter)
            self._waiters = still_waiting

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    def count(self, message_id: MessageId) -> int:
        """How many distinct nodes delivered ``message_id``."""
        return len(self._nodes_by_message.get(message_id, ()))

    def total(self) -> int:
        """Total deliveries recorded (all nodes, all messages)."""
        return len(self.records)

    def records_for(
        self, node: Optional[NodeId] = None, *, incarnation: Optional[int] = None
    ) -> list[DeliveryRecord]:
        """Records filtered by delivering node and/or incarnation."""
        return [
            record
            for record in self.records
            if (node is None or record.node == node)
            and (incarnation is None or record.incarnation == incarnation)
        ]

    async def wait_count(
        self, message_id: MessageId, expected: int, *, timeout: float = 5.0
    ) -> int:
        """Resolve when ``expected`` distinct nodes delivered ``message_id``.

        Event-driven (no polling): the append path completes the wait the
        moment the threshold is crossed.  On timeout the *current* count is
        returned rather than raising, matching the old polling helper so
        tests can assert on the final number either way.
        """
        count = self.count(message_id)
        if count >= expected:
            return count
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        waiter = _CountWaiter(message_id, expected, future)
        self._waiters.append(waiter)
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            return self.count(message_id)
        finally:
            if waiter in self._waiters:
                self._waiters.remove(waiter)

    def subscribe(self) -> DeliveryStream:
        """A live stream of records appended from now on."""
        stream = DeliveryStream(self)
        self._streams.add(stream)
        return stream


__all__ = ["DeliveryLog", "DeliveryRecord", "DeliveryStream"]
