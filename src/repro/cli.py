"""Command-line interface: run any of the paper's experiments directly.

Examples::

    repro quickstart --n 200
    repro figure 2 --n 500 --messages 100
    repro figure table1
    repro healing --n 300 --failures 0.5 0.8
    repro ablation passive --n 300
    repro compare --n 300 --failures 0.3 0.6 0.8
    repro bench --tier smoke --workers 2 --out benchmarks/results
    repro bench --tier paper --scenario fig2_reliability
    repro bench --list

Every command prints the same plain-text reports the benchmark harness
writes to ``benchmarks/results/``; scale and seed are flags, so the full
paper-scale run is ``--n 10000 --messages 1000 --paper-params``.  The
``bench`` subcommand drives the parallel orchestrator over the tiered
scenario registry and persists ``BENCH_<scenario>.json`` artifacts.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from .common.errors import ConfigurationError
from .experiments.ablations import (
    default_passive_sizes,
    run_passive_size_ablation,
    run_resend_ablation,
    run_shuffle_ttl_ablation,
)
from .experiments.failures import (
    FIGURE2_FRACTIONS,
    FIGURE3_FRACTIONS,
    PAPER_PROTOCOLS,
    run_failure_experiment,
    stabilized_scenario,
)
from .experiments.fanout import FIGURE1_FANOUTS, hyparview_reference_point, run_fanout_sweep
from .experiments.graphprops import TABLE1_PROTOCOLS, run_graph_properties
from .experiments.healing import FIGURE4_PROTOCOLS, run_healing_experiment
from .experiments.params import ExperimentParams
from .experiments.registry import REGISTRY, TIER_NAMES, get_scenario
from .experiments.reporting import (
    format_histogram,
    format_series,
    format_table,
    sparkline,
)
from .experiments.scenario import Scenario


def _params(args: argparse.Namespace) -> ExperimentParams:
    if getattr(args, "paper_params", False):
        return ExperimentParams.paper(n=args.n, seed=args.seed)
    return ExperimentParams.scaled(args.n, seed=args.seed)


def _add_scale_flags(parser: argparse.ArgumentParser, default_n: int = 500) -> None:
    parser.add_argument("--n", type=int, default=default_n, help="system size")
    parser.add_argument("--seed", type=int, default=42, help="root random seed")
    parser.add_argument(
        "--paper-params",
        action="store_true",
        help="use the exact Section 5.1 view sizes regardless of --n",
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_quickstart(args: argparse.Namespace) -> int:
    params = _params(args)
    print(f"building a {params.n}-node HyParView overlay (seed {params.seed}) ...")
    scenario = Scenario("hyparview", params)
    scenario.build_overlay()
    scenario.stabilize()
    summaries = scenario.send_broadcasts(args.messages)
    snapshot = scenario.snapshot()
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes", params.n],
                ["avg reliability", sum(s.reliability for s in summaries) / len(summaries)],
                ["max hops", max(s.max_hops for s in summaries)],
                ["connected", str(snapshot.is_connected())],
                ["symmetry", snapshot.symmetry_fraction()],
                ["avg clustering", snapshot.average_clustering()],
            ],
            title="quickstart",
        )
    )
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    params = _params(args)
    name = args.which
    if name in ("1a", "1b"):
        protocol = "cyclon" if name == "1a" else "scamp"
        points = run_fanout_sweep(protocol, FIGURE1_FANOUTS, params, messages=args.messages)
        reference = hyparview_reference_point(params, messages=args.messages)
        rows = [[p.fanout, p.average_reliability, p.atomic_fraction] for p in points]
        rows.append(["flood", reference.average_reliability, reference.atomic_fraction])
        print(
            format_table(
                ["fanout", "avg reliability", "atomic"],
                rows,
                title=f"Figure {name} — {protocol} fanout sweep (n={params.n})",
            )
        )
        return 0
    if name == "1c":
        for protocol in ("cyclon", "scamp"):
            result = run_failure_experiment(protocol, params, 0.5, args.messages)
            print(f"\n{protocol}: avg={result.average:.3f}  {sparkline(result.series)}")
            print(format_series(result.series))
        return 0
    if name == "2":
        rows = []
        for fraction in FIGURE2_FRACTIONS:
            rows.append([f"{fraction:.0%}"])
        for protocol in PAPER_PROTOCOLS:
            base = stabilized_scenario(protocol, params)
            print(f"  measured {protocol}", file=sys.stderr)
            for index, fraction in enumerate(FIGURE2_FRACTIONS):
                result = run_failure_experiment(
                    protocol, params, fraction, args.messages, base=base
                )
                rows[index].append(result.average)
        print(
            format_table(
                ["failure %"] + list(PAPER_PROTOCOLS),
                rows,
                title=f"Figure 2 — avg reliability (n={params.n}, {args.messages} msgs)",
            )
        )
        return 0
    if name == "3":
        for protocol in PAPER_PROTOCOLS:
            base = stabilized_scenario(protocol, params)
            for fraction in FIGURE3_FRACTIONS:
                result = run_failure_experiment(
                    protocol, params, fraction, args.messages, base=base
                )
                print(
                    f"{protocol:13s} {fraction:4.0%}  avg={result.average:.3f} "
                    f"tail={result.tail_average():.3f}  {sparkline(result.series)}"
                )
        return 0
    if name == "5":
        for protocol in TABLE1_PROTOCOLS:
            result = run_graph_properties(protocol, params, messages=5)
            print()
            print(format_histogram(result.in_degree_histogram, title=f"{protocol}:"))
        return 0
    if name == "table1":
        rows = []
        for protocol in TABLE1_PROTOCOLS:
            result = run_graph_properties(protocol, params, messages=args.messages)
            rows.append(
                [
                    protocol,
                    f"{result.average_clustering:.6f}",
                    f"{result.path_stats.average:.4f}",
                    f"{result.max_hops_to_delivery:.1f}",
                ]
            )
        print(
            format_table(
                ["protocol", "avg clustering", "avg shortest path", "max hops"],
                rows,
                title=f"Table 1 (n={params.n})",
            )
        )
        return 0
    print(f"unknown figure: {name}", file=sys.stderr)
    return 2


def cmd_healing(args: argparse.Namespace) -> int:
    params = _params(args)
    rows = []
    for protocol in FIGURE4_PROTOCOLS:
        base = stabilized_scenario(protocol, params)
        for fraction in args.failures:
            result = run_healing_experiment(
                protocol, params, fraction, max_cycles=args.max_cycles, base=base
            )
            healed = result.cycles_to_heal
            rows.append(
                [
                    protocol,
                    f"{fraction:.0%}",
                    str(healed) if healed is not None else f">{args.max_cycles}",
                    result.baseline_reliability,
                ]
            )
    print(
        format_table(
            ["protocol", "failure %", "cycles to heal", "baseline"],
            rows,
            title=f"Figure 4 — healing time (n={params.n})",
        )
    )
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    params = _params(args)
    if args.which == "passive":
        points = run_passive_size_ablation(
            params, default_passive_sizes(params.hyparview),
            failure_fraction=args.failure, messages=args.messages,
        )
        print(
            format_table(
                ["passive capacity", "avg reliability", "tail", "largest component"],
                [
                    [p.passive_capacity, p.average_reliability, p.tail_reliability,
                     p.largest_component_fraction]
                    for p in points
                ],
                title=f"passive view size ablation ({args.failure:.0%} failures)",
            )
        )
        return 0
    if args.which == "shuffle-ttl":
        points = run_shuffle_ttl_ablation(
            params, (1, 3, 6, 9), failure_fraction=args.failure, messages=args.messages
        )
        print(
            format_table(
                ["shuffle TTL", "clustering", "passive in-degree CV", "recovery avg"],
                [
                    [p.shuffle_ttl, p.average_clustering, p.passive_balance,
                     p.recovery_average]
                    for p in points
                ],
                title="shuffle TTL ablation",
            )
        )
        return 0
    if args.which == "resend":
        points = run_resend_ablation(
            params, failure_fraction=args.failure, messages=args.messages
        )
        print(
            format_table(
                ["resend", "avg reliability", "first-10", "payload msgs"],
                [
                    [str(p.resend_on_repair), p.average_reliability, p.first10_average,
                     p.data_transmissions]
                    for p in points
                ],
                title=f"flood resend ablation ({args.failure:.0%} failures)",
            )
        )
        return 0
    print(f"unknown ablation: {args.which}", file=sys.stderr)
    return 2


def cmd_compare(args: argparse.Namespace) -> int:
    params = _params(args)
    rows = [[f"{fraction:.0%}"] for fraction in args.failures]
    for protocol in PAPER_PROTOCOLS:
        base = stabilized_scenario(protocol, params)
        print(f"  measured {protocol}", file=sys.stderr)
        for index, fraction in enumerate(args.failures):
            result = run_failure_experiment(
                protocol, params, fraction, args.messages, base=base
            )
            rows[index].append(result.average)
    print(
        format_table(
            ["failure %"] + list(PAPER_PROTOCOLS),
            rows,
            title=f"protocol comparison (n={params.n}, {args.messages} msgs)",
        )
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the runner pulls in multiprocessing machinery the
    # lightweight figure commands never need.
    from .experiments.runner import profile_unit, run_and_report

    if args.list:
        rows = [
            [spec.id, spec.group, ", ".join(sorted(spec.tiers)), spec.title]
            for spec in sorted(REGISTRY.values(), key=lambda s: s.id)
        ]
        print(format_table(["scenario", "group", "tiers", "title"], rows,
                           title="registered scenarios"))
        return 0
    if args.estimate is not None:
        from .experiments.estimate import run_estimate

        return run_estimate(args.estimate, args.scenario)
    if args.scenario:
        scenario_ids = []
        for scenario_id in args.scenario:
            spec = get_scenario(scenario_id)  # raises with the available ids
            if args.tier not in spec.tiers:
                raise ConfigurationError(
                    f"scenario {scenario_id!r} has no {args.tier!r} tier "
                    f"(available: {', '.join(sorted(spec.tiers))})"
                )
            if scenario_id not in scenario_ids:
                scenario_ids.append(scenario_id)
    else:
        # An unfiltered run takes whatever provides the requested tier.
        scenario_ids = [
            scenario_id
            for scenario_id in sorted(REGISTRY)
            if args.tier in get_scenario(scenario_id).tiers
        ]
    if not scenario_ids:
        print(f"no scenario provides tier {args.tier!r}", file=sys.stderr)
        return 2
    if args.profile:
        # One work unit under cProfile, in-process; no artifacts.
        profile_unit(
            scenario_ids[0],
            args.tier,
            root_seed=args.seed,
            n=args.n,
            messages=args.messages,
            kernel=args.kernel,
            shards=args.shards,
            unit_index=args.profile_unit,
        )
        return 0
    runs = run_and_report(
        scenario_ids,
        args.tier,
        workers=args.workers,
        root_seed=args.seed,
        n=args.n,
        messages=args.messages,
        replicates=args.replicates,
        cells=args.cells != "off",
        snapshot_cache=not args.no_snapshot_cache,
        kernel=args.kernel,
        shards=args.shards,
        trace=args.trace,
        trace_dir=args.trace_out,
        out_dir=None if args.no_artifacts else args.out,
        timings_dir=args.timings_out,
        check=args.check,
    )
    for run in runs.values():
        print(f"\n===== {run.spec.id} =====")
        print(run.render())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one scenario with dissemination tracing and inspect the result.

    Summary mode (default) prints one row per traced message: deliveries,
    tree depth, fan-out, redundancy, time-to-full-delivery.  With
    ``--message`` it dumps the reconstructed broadcast tree of one message
    as Chrome trace-event JSON (``chrome://tracing`` / Perfetto).
    """
    import json

    # Imported lazily, mirroring cmd_bench: the orchestrator pulls in
    # multiprocessing machinery the figure commands never need.
    from .experiments.runner import run_scenarios
    from .obs.trace import DisseminationTrace

    spec = get_scenario(args.scenario)  # raises with the available ids
    if args.tier not in spec.tiers:
        raise ConfigurationError(
            f"scenario {args.scenario!r} has no {args.tier!r} tier "
            f"(available: {', '.join(sorted(spec.tiers))})"
        )
    traces: dict[str, list] = {}
    run_scenarios(
        [args.scenario],
        args.tier,
        workers=args.workers,
        root_seed=args.seed,
        n=args.n,
        messages=args.messages,
        replicates=args.replicates,
        cells=args.cells != "off",
        snapshot_cache=not args.no_snapshot_cache,
        kernel=args.kernel,
        shards=args.shards,
        trace=True,
        traces=traces,
        progress=lambda note: print(f"  [{args.tier}] {note}", file=sys.stderr),
    )
    entries = traces.get(args.scenario, [])
    entry = next((e for e in entries if e["replicate"] == args.replicate), None)
    if entry is None:
        raise ConfigurationError(
            f"replicate {args.replicate} not traced "
            f"(have {[e['replicate'] for e in entries]})"
        )
    view = DisseminationTrace(entry["segments"])
    if args.message is not None:
        try:
            message = view.message(args.message)
        except KeyError as error:
            raise ConfigurationError(
                f"{error.args[0]} — run without --message for the id list"
            ) from error
        payload = json.dumps(message.chrome_trace(), indent=2, sort_keys=True) + "\n"
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(payload)
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(payload, end="")
        return 0
    print(
        format_table(
            [
                "message",
                "deliveries",
                "depth",
                "max fanout",
                "redundant",
                "acks",
                "drops",
                "t_full (s)",
            ],
            view.summary_rows(),
            title=(
                f"dissemination trace: {args.scenario} tier={args.tier} "
                f"replicate={args.replicate}"
            ),
        )
    )
    print(
        f"{view.segment_count} segment(s), {view.record_count} record(s), "
        f"{view.dropped_records} dropped"
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Live-cluster chaos demo: one fault plan against loopback TCP.

    Spins up a real :class:`LocalCluster`, replays a partition / crash /
    flash-restart plan through :class:`ChaosController`, and probes
    delivery before, during and after the faults — the same plan
    vocabulary the ``faults_*`` simulator scenarios use.
    """
    # Imported lazily: asyncio runtime machinery that the simulator
    # commands never need.
    import asyncio

    from .faults.chaos import ChaosController, reject_simulator_only
    from .faults.plan import (
        CrashEvent,
        FaultPlan,
        PartitionEvent,
        RestartEvent,
        plan_from_file,
    )
    from .runtime.cluster import LocalCluster

    if args.plan is not None:
        plan = plan_from_file(args.plan)
    else:
        plan = FaultPlan(
            events=(
                PartitionEvent(at=0.0, weights=(0.5, 0.5), heal_at=1.0, rejoin=3),
                CrashEvent(at=1.5, fraction=0.25),
                RestartEvent(at=2.0, fraction=1.0),
            ),
            label="chaos-demo",
        )
    # Reject impossible plans before a single socket is opened — the
    # structured ConfigurationError surfaces as `error: ...`, exit 2.
    plan.validate_for(args.nodes)
    reject_simulator_only(plan)

    async def demo() -> list[list[object]]:
        cluster = LocalCluster(args.nodes, base_seed=args.seed)
        await cluster.start()
        rows: list[list[object]] = []

        async def probe(label: str) -> None:
            origin = cluster.alive_nodes()[0]
            message_id = origin.broadcast(label)
            await asyncio.sleep(args.settle)
            rows.append(
                [label, cluster.delivery_count(message_id),
                 len(cluster.alive_nodes())]
            )

        controller = ChaosController(
            cluster, plan, time_scale=args.time_scale, seed=args.seed
        )
        await probe("before")
        chaos = asyncio.create_task(controller.run())
        await asyncio.sleep(0.4 * args.time_scale)
        await probe("partitioned")
        await chaos
        await asyncio.sleep(args.settle)
        await probe("after")
        await cluster.stop()
        for at, description in controller.applied:
            print(f"  t={at:g}  {description}", file=sys.stderr)
        return rows

    budget = (plan.horizon + 1.0) * args.time_scale + 4 * args.settle + 30.0
    rows = asyncio.run(asyncio.wait_for(demo(), timeout=budget))
    print(
        format_table(
            ["probe", "delivered", "alive"],
            rows,
            title=f"repro chaos — {args.nodes} loopback-TCP nodes, plan: "
            f"{'; '.join(plan.describe())}",
        )
    )
    return 0


def cmd_service_bench(args: argparse.Namespace) -> int:
    """Sustained-throughput live benchmark of the pub/sub service layer.

    Many multiplexed clients publish on a few topics over a loopback-TCP
    cluster while (by default) one node crashes mid-run and restarts on
    the *same* port — exercising the epoch handshake, circuit breakers
    and per-phase latency measurement end to end.
    """
    # Imported lazily: asyncio runtime machinery that the simulator
    # commands never need.
    import asyncio

    from .service.bench import format_report, run_service_bench, write_artifacts

    budget = args.duration * 3.0 + 60.0
    report = asyncio.run(
        asyncio.wait_for(
            run_service_bench(
                nodes=args.nodes,
                clients=args.clients,
                topics=args.topics,
                duration=args.duration,
                rate=args.rate,
                seed=args.seed,
                chaos=not args.no_chaos,
                metrics_port=args.metrics_port,
            ),
            timeout=budget,
        )
    )
    print(format_report(report))
    if args.out is not None:
        for path in write_artifacts(report, args.out):
            print(f"wrote {path}", file=sys.stderr)
    if report["staleness"]["stale_deliveries"]:
        print(
            f"error: {report['staleness']['stale_deliveries']} stale-incarnation "
            "deliveries reached clients",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HyParView (DSN 2007) reproduction — experiments CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="build an overlay, broadcast, report")
    _add_scale_flags(p, default_n=200)
    p.add_argument("--messages", type=int, default=10)
    p.set_defaults(func=cmd_quickstart)

    p = sub.add_parser("figure", help="reproduce a figure/table of the paper")
    p.add_argument("which", choices=["1a", "1b", "1c", "2", "3", "5", "table1"])
    _add_scale_flags(p)
    p.add_argument("--messages", type=int, default=50)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("healing", help="Figure 4 — healing time")
    _add_scale_flags(p)
    p.add_argument("--failures", type=float, nargs="+", default=[0.3, 0.6, 0.9])
    p.add_argument("--max-cycles", type=int, default=30)
    p.set_defaults(func=cmd_healing)

    p = sub.add_parser("ablation", help="design-choice ablations")
    p.add_argument("which", choices=["passive", "shuffle-ttl", "resend"])
    _add_scale_flags(p, default_n=300)
    p.add_argument("--failure", type=float, default=0.8)
    p.add_argument("--messages", type=int, default=30)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("compare", help="head-to-head reliability comparison")
    _add_scale_flags(p, default_n=300)
    p.add_argument("--failures", type=float, nargs="+", default=[0.3, 0.6, 0.8])
    p.add_argument("--messages", type=int, default=30)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "bench",
        help="run registered scenarios through the parallel orchestrator",
    )
    p.add_argument(
        "--tier", choices=list(TIER_NAMES), default="smoke",
        help="scale tier: smoke (CI), paper (DSN'07 figures) or full",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to shard replicates across",
    )
    p.add_argument(
        "--scenario", action="append", metavar="ID",
        help="run only this scenario (repeatable); default: all registered",
    )
    p.add_argument("--seed", type=int, default=42, help="sweep root seed")
    p.add_argument(
        "--n", type=int, default=None,
        help="override the tier's system size (disables paper params)",
    )
    p.add_argument(
        "--messages", type=int, default=None,
        help="override the tier's messages per measurement batch",
    )
    p.add_argument(
        "--replicates", type=int, default=None,
        help="override the tier's replicate count",
    )
    p.add_argument(
        "--cells", choices=["auto", "off"], default="auto",
        help="auto (default): shard grid scenarios into per-cell work "
        "units; off: one work unit per replicate (PR-1 behaviour). "
        "Artifacts are byte-identical either way.",
    )
    p.add_argument(
        "--no-snapshot-cache", action="store_true",
        help="rebuild every stabilised base overlay instead of serving "
        "frozen snapshots from the per-worker cache (slower, identical "
        "artifacts; for debugging/verification)",
    )
    p.add_argument(
        "--kernel", choices=["single", "sharded"], default=None,
        help="override the simulation kernel: single (bucket-queue "
        "engine) or sharded (space-partitioned coordinator). Artifacts "
        "are byte-identical either way; default: the tier's setting",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="shard count for --kernel sharded (default: the tier's "
        "setting, normally 2)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run one work unit under cProfile and print the top 20 "
        "functions by cumulative time (combine with --scenario/--tier; "
        "no artifacts are written)",
    )
    p.add_argument(
        "--profile-unit", type=int, default=0, metavar="INDEX",
        help="which work unit --profile profiles (default: the first)",
    )
    p.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("benchmarks/results"),
        help="directory for BENCH_<scenario>.json artifacts",
    )
    p.add_argument(
        "--no-artifacts", action="store_true",
        help="print reports without writing JSON artifacts (suppresses "
        "TIMINGS files too unless --timings-out is given)",
    )
    p.add_argument(
        "--timings-out", type=pathlib.Path, default=None, metavar="DIR",
        help="directory for TIMINGS_<scenario>.json wall-clock records "
        "(default: the --out directory; these are intentionally "
        "non-deterministic and uploaded separately by CI)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="run each scenario's shape assertions on the results",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="collect dissemination traces and write TRACE_/METRICS_ "
        "files alongside (never into) the BENCH artifacts; traces are "
        "deterministic but live in their own files",
    )
    p.add_argument(
        "--trace-out", type=pathlib.Path, default=None, metavar="DIR",
        help="directory for TRACE_/METRICS_ files (default: the --out "
        "directory)",
    )
    p.add_argument(
        "--list", action="store_true",
        help="list registered scenarios and exit",
    )
    p.add_argument(
        "--estimate", type=pathlib.Path, default=None, metavar="DIR",
        help="dry run: project each scenario's paper-tier wall-clock from "
        "the smoke-tier TIMINGS_*.json under DIR and print a 6-hour "
        "budget verdict; nothing is executed (combine with --scenario "
        "to restrict the projection)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help="trace one scenario's dissemination and reconstruct broadcast trees",
    )
    p.add_argument(
        "--scenario", default="fig2_reliability", metavar="ID",
        help="scenario to trace (default: fig2_reliability)",
    )
    p.add_argument(
        "--tier", choices=list(TIER_NAMES), default="smoke",
        help="scale tier (default: smoke)",
    )
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (traces are identical at any count)")
    p.add_argument("--seed", type=int, default=42, help="sweep root seed")
    p.add_argument("--n", type=int, default=None,
                   help="override the tier's system size")
    p.add_argument("--messages", type=int, default=None,
                   help="override the tier's messages per measurement batch")
    p.add_argument("--replicates", type=int, default=None,
                   help="override the tier's replicate count")
    p.add_argument("--replicate", type=int, default=0,
                   help="which replicate to inspect (default: 0)")
    p.add_argument("--cells", choices=["auto", "off"], default="auto",
                   help="cell sharding (traces are identical either way)")
    p.add_argument("--no-snapshot-cache", action="store_true",
                   help="rebuild stabilised bases instead of thawing cached "
                   "snapshots (traces are identical either way)")
    p.add_argument("--kernel", choices=["single", "sharded"], default=None,
                   help="simulation kernel override")
    p.add_argument("--shards", type=int, default=None, metavar="K",
                   help="shard count for --kernel sharded")
    p.add_argument(
        "--message", default=None, metavar="KEY",
        help="dump one message's broadcast tree as Chrome trace JSON; KEY "
        "is a 'segment/origin#seq' id from the summary table (a bare id "
        "works when unique)",
    )
    p.add_argument(
        "--out", type=pathlib.Path, default=None, metavar="FILE",
        help="write the Chrome trace JSON here instead of stdout "
        "(only with --message)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "chaos",
        help="live-cluster fault-plan demo (loopback TCP + ChaosController)",
    )
    p.add_argument("--nodes", type=int, default=8, help="cluster size")
    p.add_argument(
        "--plan", type=pathlib.Path, default=None, metavar="FILE",
        help="JSON fault plan to replay (default: the built-in demo plan)",
    )
    p.add_argument(
        "--time-scale", type=float, default=1.0,
        help="wall seconds per plan second (stretch for slow machines)",
    )
    p.add_argument(
        "--settle", type=float, default=0.5,
        help="seconds to let each probe broadcast disseminate",
    )
    p.add_argument("--seed", type=int, default=7, help="chaos RNG seed")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "service-bench",
        help="sustained-throughput pub/sub benchmark on a live cluster",
    )
    p.add_argument("--nodes", type=int, default=3, help="cluster size")
    p.add_argument("--clients", type=int, default=100, help="multiplexed clients")
    p.add_argument("--topics", type=int, default=2, help="topic count")
    p.add_argument(
        "--duration", type=float, default=6.0,
        help="seconds of sustained publish load (split into phases)",
    )
    p.add_argument(
        "--rate", type=float, default=60.0,
        help="aggregate publish rate (messages/second across all clients)",
    )
    p.add_argument("--seed", type=int, default=7, help="base seed")
    p.add_argument(
        "--no-chaos", action="store_true",
        help="skip the mid-run crash/restart (steady-state baseline)",
    )
    p.add_argument(
        "--out", type=pathlib.Path, default=None, metavar="DIR",
        help="write BENCH_service_live.json / TIMINGS_service_live.json here",
    )
    p.add_argument(
        "--metrics-port", type=int, default=0, metavar="PORT",
        help="TCP port for the Prometheus exposition endpoint the bench "
        "serves and self-scrapes (default: an ephemeral port)",
    )
    p.set_defaults(func=cmd_service_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
