"""Test-support helpers: a small wired world for protocol unit tests.

Lives inside the package (rather than in a ``conftest.py``) so both the
test suite and the benchmark harness can import it without relying on
pytest's ``sys.path`` insertion — two ``conftest.py`` files with the same
basename shadow each other when the whole repository is collected at once.
"""

from __future__ import annotations

from .common.ids import NodeId
from .common.rng import SeedSequence
from .core.config import HyParViewConfig
from .core.protocol import HyParView
from .gossip.eager import EagerGossip
from .gossip.flood import FloodBroadcast
from .gossip.plumtree import Plumtree, PlumtreeConfig
from .gossip.tracker import BroadcastTracker
from .protocols.cyclon import Cyclon, CyclonConfig
from .protocols.cyclon_acked import CyclonAcked
from .protocols.scamp import Scamp, ScampConfig
from .protocols.xbot import CostOracle, XBot, XBotConfig
from .sim.engine import Engine
from .sim.network import Network
from .sim.node import SimNode


class World:
    """A small simulated network with helpers to wire protocol stacks.

    Unit tests use this instead of the full experiment Scenario so they can
    mix protocols, drive single messages, and inspect everything.
    """

    def __init__(self, seed: int = 7) -> None:
        self.engine = Engine()
        self.seeds = SeedSequence(seed)
        self.network = Network(self.engine, seeds=self.seeds)
        self.tracker = BroadcastTracker()
        self._counter = 0

    # ------------------------------------------------------------------
    def new_node(self, name: str | None = None) -> SimNode:
        if name is None:
            name = f"n{self._counter}"
            self._counter += 1
        return SimNode(NodeId(name, 9000), self.network)

    def hyparview(self, name: str | None = None, config: HyParViewConfig | None = None):
        node = self.new_node(name)
        protocol = HyParView(node.host("membership"), config or HyParViewConfig())
        node.wire("membership", protocol)
        return node, protocol

    def hyparview_many(self, count: int, config: HyParViewConfig | None = None):
        return [self.hyparview(config=config) for _ in range(count)]

    def xbot(
        self,
        name: str | None = None,
        config: HyParViewConfig | None = None,
        *,
        oracle: CostOracle | None = None,
        xbot: XBotConfig | None = None,
        cls: type[XBot] = XBot,
    ):
        node = self.new_node(name)
        protocol = cls(
            node.host("membership"), config or HyParViewConfig(), oracle=oracle, xbot=xbot
        )
        node.wire("membership", protocol)
        return node, protocol

    def cyclon(self, name: str | None = None, config: CyclonConfig | None = None):
        node = self.new_node(name)
        protocol = Cyclon(node.host("membership"), config or CyclonConfig(view_size=8, shuffle_length=4))
        node.wire("membership", protocol)
        return node, protocol

    def cyclon_acked(self, name: str | None = None, config: CyclonConfig | None = None):
        node = self.new_node(name)
        protocol = CyclonAcked(
            node.host("membership"), config or CyclonConfig(view_size=8, shuffle_length=4)
        )
        node.wire("membership", protocol)
        return node, protocol

    def scamp(self, name: str | None = None, config: ScampConfig | None = None):
        node = self.new_node(name)
        protocol = Scamp(node.host("membership"), config or ScampConfig())
        node.wire("membership", protocol)
        return node, protocol

    def with_flood(self, node: SimNode, membership: HyParView) -> FloodBroadcast:
        layer = FloodBroadcast(node.host("gossip"), membership, self.tracker)
        node.wire("gossip", layer)
        return layer

    def with_eager(self, node: SimNode, membership, *, fanout: int = 3, acked: bool = False):
        layer = EagerGossip(
            node.host("gossip"), membership, self.tracker, fanout=fanout, acked=acked
        )
        node.wire("gossip", layer)
        return layer

    def with_plumtree(
        self, node: SimNode, membership: HyParView, config: PlumtreeConfig | None = None
    ) -> Plumtree:
        layer = Plumtree(node.host("gossip"), membership, self.tracker, config=config)
        node.wire("gossip", layer)
        return layer

    # ------------------------------------------------------------------
    def drain(self, max_events: int = 2_000_000) -> int:
        return self.engine.run_until_idle(max_events)

    def join_chain(self, protocols) -> None:
        """First protocol is the contact; the rest join through it."""
        contact = protocols[0].address
        for protocol in protocols[1:]:
            protocol.join(contact)
            self.drain()
