"""repro — a full reproduction of *HyParView: a membership protocol for
reliable gossip-based broadcast* (Leitão, Pereira & Rodrigues, DSN 2007).

Public surface:

* :mod:`repro.core` — the HyParView protocol (sans-io state machine);
* :mod:`repro.protocols` — the peer-sampling contract and the paper's
  baselines (Cyclon, CyclonAcked, Scamp);
* :mod:`repro.gossip` — broadcast layers (eager gossip, HyParView flood,
  Plumtree) and delivery tracking;
* :mod:`repro.sim` — discrete-event simulation substrate;
* :mod:`repro.metrics` — overlay analytics (Section 2.3 properties);
* :mod:`repro.experiments` — the evaluation harness (one driver per
  table/figure);
* :mod:`repro.runtime` — asyncio TCP runtime driving the same protocol
  code over real sockets.
"""

from .common.ids import MessageId, NodeId
from .core.config import HyParViewConfig
from .core.protocol import HyParView
from .experiments.params import ExperimentParams
from .experiments.scenario import Scenario
from .gossip.eager import EagerGossip
from .gossip.flood import FloodBroadcast
from .gossip.plumtree import Plumtree, PlumtreeConfig
from .gossip.tracker import BroadcastTracker
from .metrics.graph import OverlaySnapshot
from .protocols.cyclon import Cyclon, CyclonConfig
from .protocols.cyclon_acked import CyclonAcked
from .protocols.scamp import Scamp, ScampConfig

__version__ = "1.0.0"

__all__ = [
    "BroadcastTracker",
    "Cyclon",
    "CyclonAcked",
    "CyclonConfig",
    "EagerGossip",
    "ExperimentParams",
    "FloodBroadcast",
    "HyParView",
    "HyParViewConfig",
    "MessageId",
    "NodeId",
    "OverlaySnapshot",
    "Plumtree",
    "PlumtreeConfig",
    "Scamp",
    "ScampConfig",
    "Scenario",
    "__version__",
]
