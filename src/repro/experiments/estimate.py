"""Paper-tier wall-clock projection from smoke-tier timing records.

``repro bench --estimate DIR`` answers "can the paper tier finish inside
the CI budget?" without running it: every smoke run already writes
``TIMINGS_<scenario>.json`` (worker-seconds per scenario at smoke scale),
and the registry knows both tiers' configurations, so each scenario's
paper-tier cost can be projected from its measured smoke cost::

    projected = smoke_worker_seconds
                * (n_paper / n_smoke) ** EXPONENT      # system size
                * (messages_paper / messages_smoke)    # measurement batch
                * (replicates_paper / replicates_smoke)

The size exponent is slightly superlinear (:data:`DEFAULT_EXPONENT`):
event counts grow with n while per-broadcast hop counts and view sizes
grow with log n, and the paper configuration also runs more stabilisation
cycles.  This is a *planning* estimate, not a benchmark — it is expected
to be wrong by tens of percent, and the verdict line says so; its job is
to catch the order-of-magnitude case where a new scenario quietly pushes
the nightly paper sweep past its budget
(:data:`PAPER_BUDGET_HOURS`), *before* six hours of CI discover it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from .registry import REGISTRY
from .reporting import format_table

#: The nightly paper-tier wall-clock budget the verdict is judged against.
PAPER_BUDGET_HOURS = 6.0

#: Size-scaling exponent of the projection (events per node grow ~log n;
#: 1.1 matches the observed smoke->full scaling within ~20%).
DEFAULT_EXPONENT = 1.1


def load_timings(directory: pathlib.Path) -> dict[str, dict]:
    """All ``TIMINGS_*.json`` records under ``directory``, by scenario id.

    Unreadable or schema-less files are skipped — the estimate works off
    whatever subset of a timings artifact is usable.
    """
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("TIMINGS_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        scenario = data.get("scenario")
        if scenario and str(data.get("schema", "")).startswith("repro-timings/"):
            records[str(scenario)] = data
    return records


def estimate_paper_tier(
    timings: dict[str, dict],
    *,
    exponent: float = DEFAULT_EXPONENT,
    budget_hours: float = PAPER_BUDGET_HOURS,
) -> dict:
    """Project every measured scenario's paper-tier worker-seconds.

    Scenarios without a registry entry, a paper tier, or usable smoke
    worker-seconds (e.g. the kernel microbench records, which carry no
    wall total) are listed under ``skipped`` rather than guessed at.
    """
    rows: list[dict] = []
    skipped: list[str] = []
    total = 0.0
    for scenario_id, record in sorted(timings.items()):
        spec = REGISTRY.get(scenario_id)
        seconds = (record.get("totals") or {}).get("worker_seconds")
        if (
            spec is None
            or "paper" not in spec.tiers
            or "smoke" not in spec.tiers
            or not isinstance(seconds, (int, float))
            or seconds <= 0
        ):
            skipped.append(scenario_id)
            continue
        smoke, paper = spec.tiers["smoke"], spec.tiers["paper"]
        factor = (
            (paper.n / smoke.n) ** exponent
            * (paper.messages / smoke.messages)
            * (paper.replicates / smoke.replicates)
        )
        projected = float(seconds) * factor
        total += projected
        rows.append(
            {
                "scenario": scenario_id,
                "smoke_seconds": float(seconds),
                "factor": factor,
                "paper_seconds": projected,
            }
        )
    return {
        "rows": rows,
        "skipped": skipped,
        "total_seconds": total,
        "budget_hours": budget_hours,
        "within_budget": total <= budget_hours * 3600.0,
        "exponent": exponent,
    }


def render_estimate(estimate: dict) -> str:
    """The plain-text report (CI step logs and job summaries)."""
    rows = [
        [
            row["scenario"],
            f"{row['smoke_seconds']:.2f}s",
            f"x{row['factor']:,.0f}",
            f"{row['paper_seconds'] / 3600.0:.2f}h",
        ]
        for row in estimate["rows"]
    ]
    blocks = [
        format_table(
            ["scenario", "smoke", "scale factor", "projected paper"],
            rows,
            title=(
                f"Paper-tier projection from smoke timings "
                f"(size exponent {estimate['exponent']:.1f})"
            ),
        )
    ]
    total_hours = estimate["total_seconds"] / 3600.0
    budget = estimate["budget_hours"]
    verdict = (
        f"WITHIN the {budget:.0f}h budget"
        if estimate["within_budget"]
        else f"EXCEEDS the {budget:.0f}h budget"
    )
    blocks.append(
        f"\nprojected paper-tier total: {total_hours:.2f} worker-hours — "
        f"{verdict} (planning estimate; expect tens-of-percent error)"
    )
    if estimate["skipped"]:
        blocks.append(
            "not projected (no paper tier or no usable smoke timing): "
            + ", ".join(estimate["skipped"])
        )
    return "\n".join(blocks)


def run_estimate(directory: pathlib.Path, scenario_ids: Optional[list[str]] = None) -> int:
    """The ``repro bench --estimate`` entry point; returns an exit code.

    Informational by design: an over-budget projection prints a loud
    verdict (and a ``::warning`` annotation for CI) but exits 0 — the
    estimate is too crude to gate a merge on.
    """
    timings = load_timings(directory)
    if scenario_ids:
        timings = {k: v for k, v in timings.items() if k in set(scenario_ids)}
    if not timings:
        print(f"no usable TIMINGS_*.json under {directory}")
        return 2
    estimate = estimate_paper_tier(timings)
    print(render_estimate(estimate))
    if not estimate["within_budget"]:
        print(
            f"::warning title=paper-tier budget::projected "
            f"{estimate['total_seconds'] / 3600.0:.2f} worker-hours exceeds "
            f"the {estimate['budget_hours']:.0f}h budget"
        )
    return 0


__all__ = [
    "DEFAULT_EXPONENT",
    "PAPER_BUDGET_HOURS",
    "estimate_paper_tier",
    "load_timings",
    "render_estimate",
    "run_estimate",
]
