"""Healing time: Figure 4 of the paper.

Section 5.3's procedure: stabilise, measure the protocol's own pre-failure
reliability baseline, induce failures, then run membership cycles; after
each cycle 10 random correct nodes broadcast and the cycle count at which
average reliability returns to the baseline is the healing time.

HyParView heals in 1–2 cycles for failure rates below 80% (the paper's
headline "recovers from 90% failures in as few as 4 membership rounds");
Cyclon's healing grows almost linearly with the failure percentage; Scamp
is excluded because its healing hinges on the (long) lease time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..metrics.reliability import average_reliability, healing_cycles
from .failures import stabilized_scenario
from .params import ExperimentParams
from .scenario import Scenario


@dataclass(frozen=True, slots=True)
class HealingResult:
    """Outcome of one (protocol, failure fraction) healing run."""

    protocol: str
    n: int
    failure_fraction: float
    baseline_reliability: float
    #: average probe reliability after each membership cycle
    per_cycle: tuple[float, ...]
    #: 1-based cycle count to regain the baseline, None if not within budget
    cycles_to_heal: Optional[int]
    max_cycles: int


def measure_healing(
    scenario: Scenario,
    failure_fraction: float,
    *,
    probes_per_cycle: int = 10,
    max_cycles: int = 30,
    baseline_probes: int = 10,
    tolerance: float = 0.001,
) -> HealingResult:
    """The Figure 4 measurement on a scenario the caller hands over.

    The scenario is consumed (mutated); see
    :func:`~repro.experiments.failures.measure_failure` for the ownership
    convention.
    """
    baseline = average_reliability(scenario.send_broadcasts(baseline_probes))
    scenario.fail_fraction(failure_fraction)
    per_cycle: list[float] = []
    for _cycle in range(max_cycles):
        scenario.run_cycles(1)
        probes = scenario.send_broadcasts(probes_per_cycle)
        per_cycle.append(average_reliability(probes))
        if per_cycle[-1] >= baseline - tolerance:
            break
    return HealingResult(
        protocol=scenario.protocol,
        n=scenario.params.n,
        failure_fraction=failure_fraction,
        baseline_reliability=baseline,
        per_cycle=tuple(per_cycle),
        cycles_to_heal=healing_cycles(baseline, per_cycle, tolerance=tolerance),
        max_cycles=max_cycles,
    )


def run_healing_experiment(
    protocol: str,
    params: ExperimentParams,
    failure_fraction: float,
    *,
    probes_per_cycle: int = 10,
    max_cycles: int = 30,
    baseline_probes: int = 10,
    tolerance: float = 0.001,
    base: Optional[Scenario] = None,
) -> HealingResult:
    """Count membership cycles until reliability returns to the protocol's
    own pre-failure level (Figure 4)."""
    scenario = base.clone() if base is not None else stabilized_scenario(protocol, params)
    return measure_healing(
        scenario,
        failure_fraction,
        probes_per_cycle=probes_per_cycle,
        max_cycles=max_cycles,
        baseline_probes=baseline_probes,
        tolerance=tolerance,
    )


def run_healing_sweep(
    protocols: Sequence[str],
    fractions: Sequence[float],
    params: ExperimentParams,
    **kwargs,
) -> dict[tuple[str, float], HealingResult]:
    """The Figure 4 grid (protocol x failure percentage)."""
    results: dict[tuple[str, float], HealingResult] = {}
    for protocol in protocols:
        base = stabilized_scenario(protocol, params)
        for fraction in fractions:
            results[(protocol, fraction)] = run_healing_experiment(
                protocol, params, fraction, base=base, **kwargs
            )
    return results


#: Failure levels plotted in Figure 4.
FIGURE4_FRACTIONS = (0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90)

#: Figure 4 compares the protocols with healing mechanisms.
FIGURE4_PROTOCOLS = ("hyparview", "cyclon-acked", "cyclon")
