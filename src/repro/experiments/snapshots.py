"""Per-worker cache of frozen, stabilised base overlays.

Building and stabilising an overlay is by far the most expensive prefix of
every failure/healing/fanout experiment — at paper scale (n = 10 000) it
dominates wall-clock.  Grid scenarios measure many cells against the *same*
stabilised base (one per protocol), so each worker process keeps a small
LRU of ``Scenario.freeze()`` blobs keyed by ``(protocol, params)`` and
rehydrates a private copy per cell with one ``pickle.loads``.

Determinism: a cache *hit* and a cache *miss* hand out byte-identical
state — the miss path freezes the freshly stabilised scenario and thaws it
back, so every checkout (first or hundredth, cached or not) passes through
the same pickle round trip.  A scenario's measured results therefore never
depend on cache occupancy, worker identity or checkout order, which is
what keeps ``BENCH_*.json`` artifacts byte-identical across ``--workers``
and ``--no-snapshot-cache`` settings.

The cache is bounded (default 4 blobs).  Blobs used to be tens of
megabytes at paper scale — dominated by per-node ``random.Random`` state
(~2.5 KB per stream, three streams per node) — until the compact
``(seed, words_consumed)`` stream encoding (:class:`~repro.common.rng.
StreamRandom`) cut them by roughly 10x; the bound now mostly guards
against configuration-sweep scenarios that key many distinct params.
``stats()`` reports the cached byte total so sweep logs can watch it.
"""

from __future__ import annotations

from collections import OrderedDict

from ..common.errors import ConfigurationError
from .failures import stabilized_scenario
from .params import ExperimentParams
from .scenario import Scenario

#: Default number of frozen bases kept per worker process.
DEFAULT_CAPACITY = 4


class SnapshotCache:
    """LRU of frozen stabilised overlays, keyed by ``(protocol, params)``.

    ``params`` (an :class:`ExperimentParams`, frozen and hashable) includes
    the seed, so two replicates — or two scenarios — never share a base
    unless their entire configuration matches exactly.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(f"snapshot cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._blobs: OrderedDict[tuple[str, ExperimentParams], bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blobs)

    def frozen(self, protocol: str, params: ExperimentParams) -> bytes:
        """The frozen base blob for ``(protocol, params)``.

        On a miss the base is built, stabilised and frozen; always the
        same bytes for the same key, regardless of hit/miss history.
        """
        key = (protocol, params)
        frozen = self._blobs.get(key)
        if frozen is None:
            self.misses += 1
            frozen = stabilized_scenario(protocol, params).freeze()
            self._blobs[key] = frozen
            while len(self._blobs) > self.capacity:
                self._blobs.popitem(last=False)
                self.evictions += 1
        else:
            self.hits += 1
            self._blobs.move_to_end(key)
        return frozen

    def checkout(self, protocol: str, params: ExperimentParams) -> Scenario:
        """A private, ready-to-mutate stabilised scenario.

        A fresh thaw of :meth:`frozen`; the caller owns it outright (no
        cloning needed before mutating).
        """
        return Scenario.thaw(self.frozen(protocol, params))

    def clear(self) -> None:
        self._blobs.clear()

    def stats(self) -> dict:
        """Counters for logging (never for artifacts)."""
        return {
            "entries": len(self._blobs),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_bytes": sum(len(blob) for blob in self._blobs.values()),
        }
