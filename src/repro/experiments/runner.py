"""Parallel experiment orchestrator.

Shards replicate runs of registered scenarios across worker processes and
aggregates them into versioned JSON artifacts.  The unit of work is one
``(scenario, replicate)`` cell; each cell derives its own root seed from
the sweep seed via :meth:`SeedSequence.derive_seed`, so the result of a
cell depends only on ``(root_seed, scenario_id, tier, replicate,
overrides)`` — never on scheduling.  A run with ``--workers 8`` therefore
produces byte-identical artifacts to a serial run, which is asserted in CI.

The multiprocessing entry point (:func:`_execute_unit`) is a module-level
function resolving scenarios by id from the registry, so it works under
both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import sys
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from ..common.errors import ConfigurationError
from ..common.rng import SeedSequence
from .registry import (
    RunContext,
    ScenarioSpec,
    TierConfig,
    get_scenario,
)
from .reporting import ARTIFACT_SCHEMA, write_artifact

#: Default root seed of a sweep (matches the experiment default).
DEFAULT_ROOT_SEED = 42


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One replicate of one scenario — the schedulable atom.

    Everything a worker needs travels in this (picklable) record; the
    scenario's code is resolved from the registry inside the worker.
    """

    scenario_id: str
    tier: str
    replicate: int
    root_seed: int
    n: Optional[int] = None
    messages: Optional[int] = None

    def resolve(self) -> tuple[ScenarioSpec, RunContext]:
        spec = get_scenario(self.scenario_id)
        config = _apply_overrides(spec.tier(self.tier), self.n, self.messages)
        seed = replicate_seed(self.root_seed, self.scenario_id, self.replicate)
        context = RunContext(
            scenario_id=self.scenario_id,
            tier=self.tier,
            config=config,
            replicate=self.replicate,
            seed=seed,
        )
        return spec, context


def replicate_seed(root_seed: int, scenario_id: str, replicate: int) -> int:
    """The deterministic seed of one replicate cell (scheduling-independent)."""
    return SeedSequence(root_seed).derive_seed(
        f"bench/{scenario_id}/replicate/{replicate}"
    )


def _apply_overrides(
    config: TierConfig, n: Optional[int], messages: Optional[int]
) -> TierConfig:
    if n is not None:
        config = replace(config, n=n, paper_params=False)
    if messages is not None:
        config = replace(config, messages=messages)
    return config


def _execute_unit(unit: WorkUnit) -> tuple[str, int, int, dict]:
    """Worker entry point: run one replicate, return its keyed result."""
    spec, context = unit.resolve()
    result = spec.run(context)
    return unit.scenario_id, unit.replicate, context.seed, result


@dataclass(frozen=True, slots=True)
class ScenarioRun:
    """Aggregated outcome of one scenario at one tier."""

    spec: ScenarioSpec
    tier: str
    config: TierConfig
    root_seed: int
    #: per-replicate ``{"replicate", "seed", "result"}`` records, in order.
    replicates: tuple[dict, ...]

    def first_result(self) -> dict:
        return self.replicates[0]["result"]

    def artifact(self) -> dict:
        """The versioned JSON artifact for this run.

        Deliberately contains no timestamps, durations or host identity:
        the artifact is a pure function of ``(root_seed, scenario, tier,
        overrides)``, so parallel and serial runs encode identically and
        CI can diff artifacts across commits.
        """
        return {
            "schema": ARTIFACT_SCHEMA,
            "scenario": self.spec.id,
            "group": self.spec.group,
            "title": self.spec.title,
            "tier": self.tier,
            "root_seed": self.root_seed,
            "config": {
                "n": self.config.n,
                "messages": self.config.messages,
                "replicates": self.config.replicates,
                "stabilization_cycles": self.config.stabilization_cycles,
                "paper_params": self.config.paper_params,
                "extra": dict(self.config.extra),
            },
            "replicates": list(self.replicates),
        }

    def render(self) -> str:
        return self.spec.render(self.first_result(), self.config.n)

    def check(self) -> None:
        if self.spec.check is None:
            return
        for record in self.replicates:
            self.spec.check(record["result"], self.config.n)


def build_units(
    scenario_ids: Sequence[str],
    tier: str,
    *,
    root_seed: int = DEFAULT_ROOT_SEED,
    n: Optional[int] = None,
    messages: Optional[int] = None,
    replicates: Optional[int] = None,
) -> list[WorkUnit]:
    """Expand scenarios into the flat, deterministic work-unit list."""
    units: list[WorkUnit] = []
    for scenario_id in scenario_ids:
        spec = get_scenario(scenario_id)
        config = spec.tier(tier)
        count = replicates if replicates is not None else config.replicates
        if count < 1:
            raise ConfigurationError(f"replicates must be >= 1: {count}")
        for replicate in range(count):
            units.append(
                WorkUnit(
                    scenario_id=scenario_id,
                    tier=tier,
                    replicate=replicate,
                    root_seed=root_seed,
                    n=n,
                    messages=messages,
                )
            )
    return units


def run_scenarios(
    scenario_ids: Sequence[str],
    tier: str,
    *,
    workers: int = 1,
    root_seed: int = DEFAULT_ROOT_SEED,
    n: Optional[int] = None,
    messages: Optional[int] = None,
    replicates: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, ScenarioRun]:
    """Run scenarios at ``tier``, sharding replicates over ``workers``.

    Returns runs keyed by scenario id, replicates ordered by index —
    identical regardless of worker count or completion order.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    units = build_units(
        scenario_ids, tier,
        root_seed=root_seed, n=n, messages=messages, replicates=replicates,
    )
    completed: list[tuple[str, int, int, dict]] = []
    if workers == 1 or len(units) == 1:
        for unit in units:
            completed.append(_execute_unit(unit))
            if progress is not None:
                progress(f"{unit.scenario_id} replicate {unit.replicate} done")
    else:
        context = multiprocessing.get_context(_start_method())
        with context.Pool(processes=min(workers, len(units))) as pool:
            for outcome in pool.imap_unordered(_execute_unit, units):
                completed.append(outcome)
                if progress is not None:
                    progress(f"{outcome[0]} replicate {outcome[1]} done")
    # Reassemble deterministically: completion order is scheduling noise.
    by_cell = {
        (scenario_id, replicate): (seed, result)
        for scenario_id, replicate, seed, result in completed
    }
    runs: dict[str, ScenarioRun] = {}
    for scenario_id in scenario_ids:
        spec = get_scenario(scenario_id)
        config = _apply_overrides(spec.tier(tier), n, messages)
        count = replicates if replicates is not None else config.replicates
        if replicates is not None:
            config = replace(config, replicates=replicates)
        records = []
        for replicate in range(count):
            seed, result = by_cell[(scenario_id, replicate)]
            records.append({"replicate": replicate, "seed": seed, "result": result})
        runs[scenario_id] = ScenarioRun(
            spec=spec,
            tier=tier,
            config=config,
            root_seed=root_seed,
            replicates=tuple(records),
        )
    return runs


def _start_method() -> str:
    """Prefer ``fork`` on Linux (cheap, and the CI platform); elsewhere
    keep the platform default — macOS lists fork as available but made
    spawn the default because forking after framework init is unsafe."""
    if sys.platform.startswith("linux"):
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


def write_artifacts(
    runs: dict[str, ScenarioRun], directory: pathlib.Path | str
) -> list[pathlib.Path]:
    """Persist every run as ``BENCH_<scenario>.json`` under ``directory``."""
    return [write_artifact(directory, run.artifact()) for run in runs.values()]


def run_and_report(
    scenario_ids: Sequence[str],
    tier: str,
    *,
    workers: int = 1,
    root_seed: int = DEFAULT_ROOT_SEED,
    n: Optional[int] = None,
    messages: Optional[int] = None,
    replicates: Optional[int] = None,
    out_dir: Optional[pathlib.Path | str] = None,
    check: bool = False,
    stream=None,
) -> dict[str, ScenarioRun]:
    """The CLI's whole job: run, render, optionally check and persist.

    Timing is reported to ``stream`` (default stderr) only — it never
    enters the artifacts, which must stay deterministic.
    """
    stream = stream if stream is not None else sys.stderr
    started = time.perf_counter()
    runs = run_scenarios(
        scenario_ids, tier,
        workers=workers, root_seed=root_seed,
        n=n, messages=messages, replicates=replicates,
        progress=lambda note: print(f"  [{tier}] {note}", file=stream),
    )
    elapsed = time.perf_counter() - started
    print(
        f"ran {len(scenario_ids)} scenario(s) at tier {tier!r} with "
        f"{workers} worker(s) in {elapsed:.1f}s",
        file=stream,
    )
    if out_dir is not None:
        for path in write_artifacts(runs, out_dir):
            print(f"  wrote {path}", file=stream)
    if check:
        for run in runs.values():
            run.check()
    return runs
