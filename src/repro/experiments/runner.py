"""Parallel experiment orchestrator.

Shards work across worker processes and aggregates results into versioned
JSON artifacts.  The schedulable atom is a :class:`WorkUnit`:

* for scenarios with a **cell decomposition** (grid sweeps — see
  :mod:`repro.experiments.registry`), one unit is one ``(scenario,
  replicate, cell)`` — e.g. one (protocol, failure-fraction) pair of
  Figure 2 — so a single replicate's grid fans out over every worker;
* for monolithic scenarios, one unit is one ``(scenario, replicate)``.

Each replicate derives its root seed from the sweep seed via
:meth:`SeedSequence.derive_seed`; all cells of a replicate share that seed,
and a cell's result depends only on ``(root_seed, scenario_id, tier,
replicate, overrides, cell key)`` — never on scheduling, worker identity or
cache state.  A run with ``--workers 8`` therefore produces byte-identical
artifacts to a serial run, with or without cells or the snapshot cache,
which is asserted in CI.

Workers keep a per-process :class:`~repro.experiments.snapshots.
SnapshotCache` of frozen stabilised base overlays, so a worker that
executes many cells of one protocol stabilises the base once and
rehydrates per cell with a single ``pickle.loads`` — the dominant cost at
paper scale.  To make that cache effective, the pool's scheduling atom is
an **affinity chunk**: a run of consecutive cells sharing one stabilised
base (e.g. every fraction of one protocol in a Figure 2 replicate).
Chunks are dispatched dynamically, so heterogeneous scenarios still
balance; when there are fewer chunks than workers, chunks are split so no
worker idles.  Each base is then stabilised once per worker that touches
it — usually once per sweep — restoring the session-wide sharing the old
ScenarioCache provided, but across process boundaries.

Per-unit and per-scenario wall-clock (plus kernel events/s, sampled from
the engine's process-wide fired-event counter) is reported to the progress
stream and persisted as ``TIMINGS_<scenario>.json`` — a separate,
openly non-deterministic artifact family that CI uploads and trends
across commits.  Timings never enter the ``BENCH_*`` artifacts, which
must stay deterministic.

The multiprocessing entry point (:func:`_execute_unit`) is a module-level
function resolving scenarios by id from the registry, so it works under
both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..common.errors import ConfigurationError
from ..common.rng import SeedSequence
from ..obs.context import activate_collector, deactivate_collector
from ..obs.trace import DisseminationTrace, TraceCollector
from ..sim.engine import events_fired_total
from .registry import (
    CellKey,
    RunContext,
    ScenarioSpec,
    TierConfig,
    get_scenario,
)
from .reporting import (
    ARTIFACT_SCHEMA,
    TIMINGS_SCHEMA,
    format_timings,
    metrics_artifact,
    trace_artifact,
    write_artifact,
    write_metrics_file,
    write_timings_file,
    write_trace_file,
)
from .snapshots import SnapshotCache

#: Default root seed of a sweep (matches the experiment default).
DEFAULT_ROOT_SEED = 42

#: Per-worker-process cache of frozen stabilised overlays, created lazily
#: on first use inside each worker (and shared by serial in-process runs).
_WORKER_SNAPSHOTS: Optional[SnapshotCache] = None


def _worker_snapshots() -> SnapshotCache:
    global _WORKER_SNAPSHOTS
    if _WORKER_SNAPSHOTS is None:
        _WORKER_SNAPSHOTS = SnapshotCache()
    return _WORKER_SNAPSHOTS


_EMPTY_CACHE_STATS = {
    "entries": 0, "hits": 0, "misses": 0, "evictions": 0, "cached_bytes": 0,
}


def _cache_stats() -> dict:
    """This process's snapshot-cache counters (zeros when never used)."""
    if _WORKER_SNAPSHOTS is None:
        return dict(_EMPTY_CACHE_STATS)
    return _WORKER_SNAPSHOTS.stats()


def _cache_delta(before: dict, after: dict) -> dict:
    """Counter growth across one chunk, plus the cache's current size.

    Counters are deltas (summable across chunks and workers without double
    counting); ``entries`` / ``cached_bytes`` are the absolute cache size
    after the chunk, aggregated as a per-worker peak.
    """
    return {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "evictions": after["evictions"] - before["evictions"],
        "entries": after["entries"],
        "cached_bytes": after["cached_bytes"],
    }


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One schedulable atom: a whole replicate, or one cell of it.

    Everything a worker needs travels in this (picklable) record; the
    scenario's code is resolved from the registry inside the worker.
    """

    scenario_id: str
    tier: str
    replicate: int
    root_seed: int
    n: Optional[int] = None
    messages: Optional[int] = None
    #: ``None`` runs the whole replicate; otherwise one cell key from the
    #: scenario's ``cells`` enumeration.
    cell: Optional[CellKey] = None
    #: whether the executing worker may serve stabilised bases from its
    #: snapshot cache (results are identical either way; this is purely
    #: a speed/memory knob).
    snapshot_cache: bool = True
    #: Simulation kernel override (``"single"``/``"sharded"``); ``None``
    #: keeps the tier's default.  Never part of the artifact.
    kernel: Optional[str] = None
    #: Shard-count override for the sharded kernel.
    shards: Optional[int] = None
    #: Collect a dissemination trace while the unit runs.  Never part of
    #: the BENCH artifact: trace output travels in ``UnitOutcome.trace``
    #: and lands in the separate ``TRACE_*``/``METRICS_*`` files.
    trace: bool = False

    def resolve(
        self, snapshots: Optional[SnapshotCache] = None
    ) -> tuple[ScenarioSpec, RunContext]:
        spec = get_scenario(self.scenario_id)
        config = _apply_overrides(
            spec.tier(self.tier), self.n, self.messages, self.kernel, self.shards
        )
        seed = replicate_seed(self.root_seed, self.scenario_id, self.replicate)
        context = RunContext(
            scenario_id=self.scenario_id,
            tier=self.tier,
            config=config,
            replicate=self.replicate,
            seed=seed,
            snapshots=snapshots,
        )
        return spec, context

    def describe(self) -> str:
        label = f"{self.scenario_id} replicate {self.replicate}"
        if self.cell is not None:
            label += f" cell {_cell_label(self.cell)}"
        return label


def _cell_label(cell: CellKey) -> str:
    return "/".join(str(part) for part in cell)


def replicate_seed(root_seed: int, scenario_id: str, replicate: int) -> int:
    """The deterministic seed of one replicate (scheduling-independent).

    Cells of one replicate share the seed: the monolithic run and the
    sharded cells must observe identical randomness.
    """
    return SeedSequence(root_seed).derive_seed(
        f"bench/{scenario_id}/replicate/{replicate}"
    )


def _apply_overrides(
    config: TierConfig,
    n: Optional[int],
    messages: Optional[int],
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
) -> TierConfig:
    if n is not None:
        config = replace(config, n=n, paper_params=False)
    if messages is not None:
        config = replace(config, messages=messages)
    if kernel is not None:
        config = replace(config, kernel=kernel)
    if shards is not None:
        config = replace(config, kernel_shards=shards)
    return config


@dataclass(frozen=True, slots=True)
class UnitOutcome:
    """What a worker sends back for one unit.

    ``elapsed`` and ``events`` are observability only (logged and written
    to ``TIMINGS_*.json``, never into ``BENCH_*``): artifacts are
    assembled exclusively from ``result`` and the deterministic keys.
    ``events`` counts simulation-kernel events fired while the unit ran
    in its worker — elapsed and events together give per-unit kernel
    throughput.
    """

    scenario_id: str
    replicate: int
    cell: Optional[CellKey]
    seed: int
    result: dict
    elapsed: float
    events: int = 0
    #: JSON-safe trace segments collected while the unit ran (``None``
    #: unless the unit asked for tracing); assembled into ``TRACE_*``
    #: artifacts by the orchestrator, never into ``BENCH_*``.
    trace: Optional[list] = None


def _affinity_key(unit: WorkUnit) -> tuple:
    """Units with equal keys reuse one stabilised base (cache affinity).

    The first cell component is the protocol for grid scenarios — the
    component that selects the base overlay.  Scenarios whose cells all
    share one base (fanout sweeps) declare ``cell_affinity`` in their spec
    to collapse the whole replicate into one chunk.
    """
    if unit.cell is None:
        return (unit.scenario_id, unit.replicate, None)
    spec = get_scenario(unit.scenario_id)
    if spec.cell_affinity is not None:
        return (unit.scenario_id, unit.replicate, spec.cell_affinity(unit.cell))
    return (unit.scenario_id, unit.replicate, unit.cell[0])


def build_chunks(units: Sequence[WorkUnit], workers: int) -> list[list[WorkUnit]]:
    """Partition units into the pool's scheduling atoms.

    Consecutive units sharing an affinity key form one chunk, executed
    serially by one worker against one cached base.  If that yields fewer
    chunks than workers (a single-grid sweep on a wide pool), chunks are
    split evenly — extra base stabilisations, but no idle workers.
    """
    chunks: list[list[WorkUnit]] = []
    previous: Optional[tuple] = None
    for unit in units:
        key = _affinity_key(unit)
        if previous is not None and key == previous:
            chunks[-1].append(unit)
        else:
            chunks.append([unit])
        previous = key
    pieces = -(-workers // len(chunks)) if 0 < len(chunks) < workers else 1
    if pieces > 1:
        split: list[list[WorkUnit]] = []
        for chunk in chunks:
            size = -(-len(chunk) // pieces)  # ceil division
            split.extend(chunk[i:i + size] for i in range(0, len(chunk), size))
        chunks = split
    return chunks


def _execute_chunk(chunk: list[WorkUnit]) -> tuple[list[UnitOutcome], dict]:
    """Worker entry point for one affinity chunk (units run in order).

    Returns the outcomes plus the chunk's snapshot-cache stats delta, so
    the orchestrator can surface cache behaviour (hits/misses/bytes) in
    the stderr timing summary without the cache leaving its worker.
    """
    before = _cache_stats()
    outcomes = [_execute_unit(unit) for unit in chunk]
    return outcomes, _cache_delta(before, _cache_stats())


def _execute_unit(unit: WorkUnit) -> UnitOutcome:
    """Worker entry point: run one unit, return its keyed result."""
    started = time.perf_counter()
    events_before = events_fired_total()
    snapshots = _worker_snapshots() if unit.snapshot_cache else None
    spec, context = unit.resolve(snapshots)
    collector = TraceCollector() if unit.trace else None
    if collector is not None:
        activate_collector(collector)
    try:
        if unit.cell is None:
            result = spec.run(context)
        else:
            assert spec.run_cell is not None  # build_units only emits cells for celled specs
            result = spec.run_cell(context, unit.cell)
    finally:
        if collector is not None:
            deactivate_collector()
    return UnitOutcome(
        scenario_id=unit.scenario_id,
        replicate=unit.replicate,
        cell=unit.cell,
        seed=context.seed,
        result=result,
        elapsed=time.perf_counter() - started,
        events=events_fired_total() - events_before,
        trace=collector.export() if collector is not None else None,
    )


@dataclass(frozen=True, slots=True)
class ScenarioRun:
    """Aggregated outcome of one scenario at one tier."""

    spec: ScenarioSpec
    tier: str
    config: TierConfig
    root_seed: int
    #: per-replicate ``{"replicate", "seed", "result"}`` records, in order.
    replicates: tuple[dict, ...]

    def first_result(self) -> dict:
        return self.replicates[0]["result"]

    def artifact(self) -> dict:
        """The versioned JSON artifact for this run.

        Deliberately contains no timestamps, durations or host identity:
        the artifact is a pure function of ``(root_seed, scenario, tier,
        overrides)``, so parallel and serial runs encode identically and
        CI can diff artifacts across commits.
        """
        return {
            "schema": ARTIFACT_SCHEMA,
            "scenario": self.spec.id,
            "group": self.spec.group,
            "title": self.spec.title,
            "tier": self.tier,
            "root_seed": self.root_seed,
            "config": {
                "n": self.config.n,
                "messages": self.config.messages,
                "replicates": self.config.replicates,
                "stabilization_cycles": self.config.stabilization_cycles,
                "paper_params": self.config.paper_params,
                "extra": dict(self.config.extra),
            },
            "replicates": list(self.replicates),
        }

    def render(self) -> str:
        return self.spec.render(self.first_result(), self.config.n)

    def check(self) -> None:
        if self.spec.check is None:
            return
        for record in self.replicates:
            self.spec.check(record["result"], self.config.n)


@dataclass
class SweepTimings:
    """Wall-clock accounting for one orchestrator sweep.

    Collected from :class:`UnitOutcome`; deliberately kept outside
    :class:`ScenarioRun` so nothing timing-shaped can leak into ``BENCH_*``
    artifacts.  Serialised separately as ``TIMINGS_<scenario>.json`` via
    :func:`write_timings_artifacts` for the CI perf-trend job.
    """

    #: scenario id -> summed worker-seconds over its units.
    scenario_seconds: dict[str, float] = field(default_factory=dict)
    #: scenario id -> unit count.
    scenario_units: dict[str, int] = field(default_factory=dict)
    #: scenario id -> summed kernel events fired over its units.
    scenario_events: dict[str, int] = field(default_factory=dict)
    #: scenario id -> per-unit records, in completion order.
    unit_records: dict[str, list[dict]] = field(default_factory=dict)
    #: snapshot-cache behaviour summed over chunks: hit/miss/eviction
    #: counters plus per-worker peak entries/bytes (logs only, never in
    #: BENCH artifacts).
    snapshot_cache: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    def record(self, outcome: UnitOutcome) -> None:
        scenario_id = outcome.scenario_id
        self.scenario_seconds[scenario_id] = (
            self.scenario_seconds.get(scenario_id, 0.0) + outcome.elapsed
        )
        self.scenario_units[scenario_id] = self.scenario_units.get(scenario_id, 0) + 1
        self.scenario_events[scenario_id] = (
            self.scenario_events.get(scenario_id, 0) + outcome.events
        )
        self.unit_records.setdefault(scenario_id, []).append(
            {
                "replicate": outcome.replicate,
                "cell": None if outcome.cell is None else _cell_label(outcome.cell),
                "elapsed_seconds": outcome.elapsed,
                "events": outcome.events,
                "events_per_second": (
                    outcome.events / outcome.elapsed if outcome.elapsed > 0 else None
                ),
            }
        )

    def record_cache(self, delta: dict) -> None:
        cache = self.snapshot_cache
        for key in ("hits", "misses", "evictions"):
            cache[key] = cache.get(key, 0) + delta[key]
        for key in ("entries", "cached_bytes"):
            cache[key] = max(cache.get(key, 0), delta[key])

    def format_cache(self) -> str:
        """One stderr line summarising snapshot-cache behaviour."""
        cache = self.snapshot_cache
        if not cache:
            return "snapshot cache: (unused)"
        return (
            f"snapshot cache: {cache.get('hits', 0)} hits, "
            f"{cache.get('misses', 0)} misses, "
            f"{cache.get('evictions', 0)} evictions; peak "
            f"{cache.get('entries', 0)} entries / "
            f"{cache.get('cached_bytes', 0):,} bytes per worker"
        )

    def timings_artifact(self, scenario_id: str, *, tier: str, workers: int) -> dict:
        """The ``TIMINGS_<scenario>.json`` payload for one scenario.

        Unit records are sorted by ``(replicate, cell)`` so the layout is
        stable across scheduling orders even though the *values* are
        wall-clock and change every run.
        """
        units = sorted(
            self.unit_records.get(scenario_id, []),
            key=lambda record: (record["replicate"], record["cell"] or ""),
        )
        seconds = self.scenario_seconds.get(scenario_id, 0.0)
        events = self.scenario_events.get(scenario_id, 0)
        return {
            "schema": TIMINGS_SCHEMA,
            "scenario": scenario_id,
            "tier": tier,
            "workers": workers,
            "units": units,
            "totals": {
                "units": self.scenario_units.get(scenario_id, 0),
                "worker_seconds": seconds,
                "events": events,
                "events_per_second": events / seconds if seconds > 0 else None,
            },
            "sweep_wall_seconds": self.wall_seconds,
        }


def build_units(
    scenario_ids: Sequence[str],
    tier: str,
    *,
    root_seed: int = DEFAULT_ROOT_SEED,
    n: Optional[int] = None,
    messages: Optional[int] = None,
    replicates: Optional[int] = None,
    cells: bool = True,
    snapshot_cache: bool = True,
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
    trace: bool = False,
) -> list[WorkUnit]:
    """Expand scenarios into the flat, deterministic work-unit list.

    With ``cells`` (the default), scenarios that expose a cell
    decomposition are expanded to one unit per ``(replicate, cell)``, in
    the scenario's own enumeration order — protocol-major for grid sweeps,
    which the pool's chunking turns into per-worker cache affinity.
    """
    units: list[WorkUnit] = []
    for scenario_id in scenario_ids:
        spec = get_scenario(scenario_id)
        config = spec.tier(tier)
        count = replicates if replicates is not None else config.replicates
        if count < 1:
            raise ConfigurationError(f"replicates must be >= 1: {count}")
        for replicate in range(count):
            whole = WorkUnit(
                scenario_id=scenario_id,
                tier=tier,
                replicate=replicate,
                root_seed=root_seed,
                n=n,
                messages=messages,
                snapshot_cache=snapshot_cache,
                kernel=kernel,
                shards=shards,
                trace=trace,
            )
            if cells and spec.supports_cells:
                assert spec.cells is not None
                _, context = whole.resolve()
                units.extend(
                    replace(whole, cell=key) for key in spec.cells(context)
                )
            else:
                units.append(whole)
    return units


def run_scenarios(
    scenario_ids: Sequence[str],
    tier: str,
    *,
    workers: int = 1,
    root_seed: int = DEFAULT_ROOT_SEED,
    n: Optional[int] = None,
    messages: Optional[int] = None,
    replicates: Optional[int] = None,
    cells: bool = True,
    snapshot_cache: bool = True,
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
    trace: bool = False,
    traces: Optional[dict[str, list]] = None,
    progress: Optional[Callable[[str], None]] = None,
    timings: Optional[SweepTimings] = None,
) -> dict[str, ScenarioRun]:
    """Run scenarios at ``tier``, sharding work units over ``workers``.

    Returns runs keyed by scenario id, replicates ordered by index —
    identical regardless of worker count, cell splitting, snapshot
    caching or completion order.  The ``kernel``/``shards`` overrides
    select the simulation kernel; artifacts are byte-identical across
    them (the sharded determinism pins depend on it).

    With ``trace``, workers collect dissemination-trace segments; pass a
    dict as ``traces`` to receive, per scenario id, one
    ``{"replicate", "segments"}`` record per replicate with segments
    flattened in cell-enumeration order (the same order a monolithic run
    produces, so the collected trace is identical across the workers ×
    cells × snapshot-cache matrix).  ``BENCH_*`` artifacts are unaffected.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    started = time.perf_counter()
    units = build_units(
        scenario_ids, tier,
        root_seed=root_seed, n=n, messages=messages, replicates=replicates,
        cells=cells, snapshot_cache=snapshot_cache, kernel=kernel, shards=shards,
        trace=trace,
    )
    unit_by_key = {(u.scenario_id, u.replicate, u.cell): u for u in units}
    completed: list[UnitOutcome] = []

    def note(outcome: UnitOutcome) -> None:
        completed.append(outcome)
        if timings is not None:
            timings.record(outcome)
        if progress is not None:
            unit = unit_by_key[(outcome.scenario_id, outcome.replicate, outcome.cell)]
            progress(f"{unit.describe()} done in {outcome.elapsed:.2f}s")

    if workers == 1 or len(units) == 1:
        cache_before = _cache_stats()
        for unit in units:
            note(_execute_unit(unit))
        if timings is not None:
            timings.record_cache(_cache_delta(cache_before, _cache_stats()))
    else:
        context = multiprocessing.get_context(_start_method())
        chunks = build_chunks(units, workers)
        with context.Pool(processes=min(workers, len(chunks))) as pool:
            for outcomes, cache_delta in pool.imap_unordered(_execute_chunk, chunks):
                for outcome in outcomes:
                    note(outcome)
                if timings is not None:
                    timings.record_cache(cache_delta)
    if timings is not None:
        timings.wall_seconds += time.perf_counter() - started

    # Reassemble deterministically: completion order is scheduling noise.
    whole_results: dict[tuple[str, int], tuple[int, dict]] = {}
    cell_results: dict[tuple[str, int], dict[CellKey, dict]] = {}
    cell_seeds: dict[tuple[str, int], int] = {}
    unit_traces: dict[tuple[str, int], dict[Optional[CellKey], list]] = {}
    for outcome in completed:
        key = (outcome.scenario_id, outcome.replicate)
        if outcome.cell is None:
            whole_results[key] = (outcome.seed, outcome.result)
        else:
            cell_results.setdefault(key, {})[outcome.cell] = outcome.result
            cell_seeds[key] = outcome.seed
        if outcome.trace is not None:
            unit_traces.setdefault(key, {})[outcome.cell] = outcome.trace

    runs: dict[str, ScenarioRun] = {}
    for scenario_id in scenario_ids:
        spec = get_scenario(scenario_id)
        config = _apply_overrides(spec.tier(tier), n, messages, kernel, shards)
        count = replicates if replicates is not None else config.replicates
        if replicates is not None:
            config = replace(config, replicates=replicates)
        records = []
        trace_records = []
        for replicate in range(count):
            key = (scenario_id, replicate)
            context = None
            if key in whole_results:
                seed, result = whole_results[key]
            else:
                assert spec.merge_cells is not None
                seed = cell_seeds[key]
                _, context = WorkUnit(
                    scenario_id=scenario_id, tier=tier, replicate=replicate,
                    root_seed=root_seed, n=n, messages=messages,
                    kernel=kernel, shards=shards,
                ).resolve()
                result = spec.merge_cells(context, cell_results[key])
            records.append({"replicate": replicate, "seed": seed, "result": result})
            if traces is not None and trace:
                cell_map = unit_traces.get(key, {})
                if None in cell_map:
                    segments = list(cell_map[None])
                elif spec.cells is not None and cell_map:
                    # Flatten per-cell segments in the scenario's own cell
                    # enumeration order — the order the monolithic path
                    # produces them in — so scheduling never shows.
                    if context is None:
                        _, context = WorkUnit(
                            scenario_id=scenario_id, tier=tier, replicate=replicate,
                            root_seed=root_seed, n=n, messages=messages,
                            kernel=kernel, shards=shards,
                        ).resolve()
                    segments = []
                    for cell_key in spec.cells(context):
                        segments.extend(cell_map.get(cell_key, ()))
                else:
                    segments = []
                trace_records.append({"replicate": replicate, "segments": segments})
        if traces is not None and trace:
            traces[scenario_id] = trace_records
        runs[scenario_id] = ScenarioRun(
            spec=spec,
            tier=tier,
            config=config,
            root_seed=root_seed,
            replicates=tuple(records),
        )
    return runs


def _start_method() -> str:
    """Prefer ``fork`` on Linux (cheap, and the CI platform); elsewhere
    keep the platform default — macOS lists fork as available but made
    spawn the default because forking after framework init is unsafe."""
    if sys.platform.startswith("linux"):
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


def write_artifacts(
    runs: dict[str, ScenarioRun], directory: pathlib.Path | str
) -> list[pathlib.Path]:
    """Persist every run as ``BENCH_<scenario>.json`` under ``directory``."""
    return [write_artifact(directory, run.artifact()) for run in runs.values()]


def write_timings_artifacts(
    timings: SweepTimings,
    directory: pathlib.Path | str,
    *,
    tier: str,
    workers: int,
) -> list[pathlib.Path]:
    """Persist per-scenario ``TIMINGS_<scenario>.json`` under ``directory``.

    Kept strictly apart from :func:`write_artifacts`: BENCH files must be
    byte-stable across runs, TIMINGS files never are.
    """
    return [
        write_timings_file(
            directory, timings.timings_artifact(scenario_id, tier=tier, workers=workers)
        )
        for scenario_id in sorted(timings.scenario_units)
    ]


def write_trace_artifacts(
    traces: dict[str, list],
    directory: pathlib.Path | str,
    *,
    tier: str,
    root_seed: int,
) -> list[pathlib.Path]:
    """Persist ``TRACE_*`` and trace-derived ``METRICS_*`` files.

    Both families are deterministic (pure functions of the seed, like
    ``BENCH_*``) but live strictly apart so tracing can never perturb a
    benchmark artifact byte.
    """
    paths: list[pathlib.Path] = []
    for scenario_id in sorted(traces):
        replicates = traces[scenario_id]
        paths.append(
            write_trace_file(
                directory,
                trace_artifact(
                    scenario_id, tier=tier, root_seed=root_seed, replicates=replicates
                ),
            )
        )
        metric_rows = []
        for entry in replicates:
            view = DisseminationTrace(entry["segments"])
            metric_rows.append(
                {
                    "replicate": entry["replicate"],
                    "segments": view.segment_count,
                    "records": view.record_count,
                    "dropped_records": view.dropped_records,
                    "messages": len(view.message_keys()),
                    "counters": view.kind_counts(),
                }
            )
        paths.append(
            write_metrics_file(
                directory,
                metrics_artifact(
                    scenario_id, tier=tier, root_seed=root_seed, replicates=metric_rows
                ),
            )
        )
    return paths


def run_and_report(
    scenario_ids: Sequence[str],
    tier: str,
    *,
    workers: int = 1,
    root_seed: int = DEFAULT_ROOT_SEED,
    n: Optional[int] = None,
    messages: Optional[int] = None,
    replicates: Optional[int] = None,
    cells: bool = True,
    snapshot_cache: bool = True,
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
    trace: bool = False,
    trace_dir: Optional[pathlib.Path | str] = None,
    out_dir: Optional[pathlib.Path | str] = None,
    timings_dir: Optional[pathlib.Path | str] = None,
    check: bool = False,
    stream=None,
) -> dict[str, ScenarioRun]:
    """The CLI's whole job: run, render, optionally check and persist.

    Timing (per unit, per scenario, total) is reported to ``stream``
    (default stderr) and — when ``timings_dir`` (default: ``out_dir``) is
    set — persisted as ``TIMINGS_<scenario>.json`` for CI trending.  It
    never enters the ``BENCH_*`` artifacts, which must stay deterministic.

    With ``trace``, dissemination traces are collected and written as
    ``TRACE_*``/``METRICS_*`` files to ``trace_dir`` (default:
    ``out_dir``); a stderr summary surfaces record and drop counts so
    silent trace truncation is visible.
    """
    stream = stream if stream is not None else sys.stderr
    timings = SweepTimings()
    traces: Optional[dict[str, list]] = {} if trace else None
    runs = run_scenarios(
        scenario_ids, tier,
        workers=workers, root_seed=root_seed,
        n=n, messages=messages, replicates=replicates,
        cells=cells, snapshot_cache=snapshot_cache,
        kernel=kernel, shards=shards,
        trace=trace, traces=traces,
        progress=lambda note: print(f"  [{tier}] {note}", file=stream),
        timings=timings,
    )
    print(
        f"ran {len(scenario_ids)} scenario(s) at tier {tier!r} with "
        f"{workers} worker(s) in {timings.wall_seconds:.1f}s",
        file=stream,
    )
    print(
        format_timings(
            timings.scenario_seconds, timings.scenario_units, timings.scenario_events
        ),
        file=stream,
    )
    print(timings.format_cache(), file=stream)
    if traces is not None:
        for scenario_id in sorted(traces):
            views = [
                DisseminationTrace(entry["segments"]) for entry in traces[scenario_id]
            ]
            records = sum(view.record_count for view in views)
            dropped = sum(view.dropped_records for view in views)
            segments = sum(view.segment_count for view in views)
            print(
                f"trace [{scenario_id}]: {segments} segment(s), "
                f"{records} record(s), {dropped} dropped",
                file=stream,
            )
    if out_dir is not None:
        for path in write_artifacts(runs, out_dir):
            print(f"  wrote {path}", file=stream)
    if traces is not None:
        trace_target = trace_dir if trace_dir is not None else out_dir
        if trace_target is not None:
            for path in write_trace_artifacts(
                traces, trace_target, tier=tier, root_seed=root_seed
            ):
                print(f"  wrote {path}", file=stream)
    if timings_dir is None:
        timings_dir = out_dir
    if timings_dir is not None:
        for path in write_timings_artifacts(
            timings, timings_dir, tier=tier, workers=workers
        ):
            print(f"  wrote {path}", file=stream)
    if check:
        for run in runs.values():
            run.check()
    return runs


def profile_unit(
    scenario_id: str,
    tier: str,
    *,
    root_seed: int = DEFAULT_ROOT_SEED,
    n: Optional[int] = None,
    messages: Optional[int] = None,
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
    unit_index: int = 0,
    top: int = 20,
    stream=None,
) -> None:
    """Run one work unit under ``cProfile`` and print the top entries.

    ``repro bench --profile``'s backend: profiles the first cell (or the
    whole replicate for monolithic scenarios) of ``scenario_id`` at
    ``tier`` scale, in-process, and prints the ``top`` functions by
    cumulative time to ``stream`` (default stdout).
    """
    import cProfile
    import pstats

    stream = stream if stream is not None else sys.stdout
    units = build_units(
        [scenario_id], tier, root_seed=root_seed, n=n, messages=messages,
        replicates=1, kernel=kernel, shards=shards,
    )
    if not 0 <= unit_index < len(units):
        raise ConfigurationError(
            f"unit index {unit_index} out of range: {scenario_id!r} at tier "
            f"{tier!r} has {len(units)} unit(s)"
        )
    unit = units[unit_index]
    print(f"profiling {unit.describe()} at tier {tier!r} ...", file=stream)
    profiler = cProfile.Profile()
    profiler.enable()
    outcome = _execute_unit(unit)
    profiler.disable()
    print(f"unit finished in {outcome.elapsed:.2f}s; top {top} by cumulative time:",
          file=stream)
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(top)
