"""Ablations beyond the paper's figures.

Three studies that interrogate the design choices DESIGN.md calls out:

* **passive view size vs. resilience** — the paper's own future-work item
  ("experiment ... the relation between the passive view size and the
  resilience level of the protocol", Section 6);
* **shuffle TTL** — the paper leaves the shuffle walk length unspecified;
  the sweep shows its effect on passive-view freshness and repair quality;
* **flood resend-on-repair** — an extension where a failed flood copy is
  retransmitted towards the repaired active view, trading extra traffic
  for reliability during the repair transient.

Each study is split into a per-point ``measure_*_point`` helper operating
on a stabilised scenario the caller hands over (consumed, like
:func:`~repro.experiments.failures.measure_failure`) and a ``run_*``
sweep that loops the helper.  The registry's cell decompositions call the
helpers directly, so one ablation point is one schedulable cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..core.config import HyParViewConfig
from ..gossip.flood import FloodBroadcast
from ..metrics.reliability import average_reliability
from .failures import stabilized_scenario
from .params import ExperimentParams
from .scenario import Scenario


@dataclass(frozen=True, slots=True)
class PassiveSizePoint:
    """Resilience of HyParView at one passive-view capacity."""

    passive_capacity: int
    failure_fraction: float
    average_reliability: float
    tail_reliability: float
    largest_component_fraction: float


def passive_size_params(params: ExperimentParams, capacity: int) -> ExperimentParams:
    """``params`` with the passive view capacity replaced (one sweep point)."""
    return replace(params, hyparview=replace(params.hyparview, passive_view_capacity=capacity))


def measure_passive_size_point(
    scenario: Scenario,
    *,
    failure_fraction: float = 0.8,
    messages: int = 50,
) -> PassiveSizePoint:
    """Crash, broadcast and measure one passive-capacity point.

    ``scenario`` must be stabilised with :func:`passive_size_params` and is
    consumed (mutated).
    """
    capacity = scenario.params.hyparview.passive_view_capacity
    scenario.fail_fraction(failure_fraction)
    summaries = scenario.send_paced_broadcasts(messages)
    series = [summary.reliability for summary in summaries]
    tail = series[-10:]
    snapshot = scenario.snapshot()
    return PassiveSizePoint(
        passive_capacity=capacity,
        failure_fraction=failure_fraction,
        average_reliability=average_reliability(summaries),
        tail_reliability=sum(tail) / len(tail) if tail else 0.0,
        largest_component_fraction=snapshot.largest_component_fraction(),
    )


def run_passive_size_ablation(
    params: ExperimentParams,
    passive_sizes: Sequence[int],
    *,
    failure_fraction: float = 0.8,
    messages: int = 50,
) -> list[PassiveSizePoint]:
    """Sweep the passive view capacity at a fixed (heavy) failure level."""
    return [
        measure_passive_size_point(
            stabilized_scenario("hyparview", passive_size_params(params, capacity)),
            failure_fraction=failure_fraction,
            messages=messages,
        )
        for capacity in passive_sizes
    ]


@dataclass(frozen=True, slots=True)
class ShuffleTtlPoint:
    """Overlay quality at one shuffle walk TTL.

    ``passive_balance`` is the coefficient of variation of the passive
    in-degree (how many passive views each node appears in): short walks
    exchange views with nearby nodes only, concentrating representation;
    longer walks mix the system and flatten it (lower is more uniform).
    """

    shuffle_ttl: int
    average_clustering: float
    passive_balance: float
    recovery_average: float


def shuffle_ttl_params(params: ExperimentParams, ttl: int) -> ExperimentParams:
    """``params`` with the shuffle walk TTL replaced (one sweep point)."""
    return replace(params, hyparview=replace(params.hyparview, shuffle_ttl=ttl))


def measure_shuffle_ttl_point(
    scenario: Scenario,
    *,
    failure_fraction: float = 0.6,
    messages: int = 30,
) -> ShuffleTtlPoint:
    """Measure overlay quality and recovery for one shuffle-TTL point.

    ``scenario`` must be stabilised with :func:`shuffle_ttl_params` and is
    consumed (mutated).
    """
    ttl = scenario.params.hyparview.shuffle_ttl
    snapshot = scenario.snapshot()
    passive_in_degree: dict = {}
    for node_id in scenario.node_ids:
        for peer in scenario.membership(node_id).passive_members():
            passive_in_degree[peer] = passive_in_degree.get(peer, 0) + 1
    counts = [float(passive_in_degree.get(n, 0)) for n in scenario.node_ids]
    mean_count = sum(counts) / len(counts) if counts else 0.0
    if mean_count > 0:
        variance = sum((c - mean_count) ** 2 for c in counts) / len(counts)
        balance = variance**0.5 / mean_count
    else:
        balance = 0.0
    scenario.fail_fraction(failure_fraction)
    summaries = scenario.send_paced_broadcasts(messages)
    return ShuffleTtlPoint(
        shuffle_ttl=ttl,
        average_clustering=snapshot.average_clustering(),
        passive_balance=balance,
        recovery_average=average_reliability(summaries),
    )


def run_shuffle_ttl_ablation(
    params: ExperimentParams,
    ttls: Sequence[int],
    *,
    failure_fraction: float = 0.6,
    messages: int = 30,
) -> list[ShuffleTtlPoint]:
    """Sweep the shuffle random-walk TTL (unspecified in the paper)."""
    return [
        measure_shuffle_ttl_point(
            stabilized_scenario("hyparview", shuffle_ttl_params(params, ttl)),
            failure_fraction=failure_fraction,
            messages=messages,
        )
        for ttl in ttls
    ]


@dataclass(frozen=True, slots=True)
class ResendPoint:
    """Reliability/traffic trade of the flood resend extension."""

    resend_on_repair: bool
    failure_fraction: float
    average_reliability: float
    first10_average: float
    data_transmissions: int


#: The two arms of the resend study: the paper's flood, then the extension.
RESEND_VARIANTS = (False, True)


def measure_resend_point(
    scenario: Scenario,
    resend: bool,
    *,
    failure_fraction: float = 0.8,
    messages: int = 50,
) -> ResendPoint:
    """Measure one arm of the resend study on a stabilised HyParView
    scenario (consumed); both arms fork the same base."""
    for node_id in scenario.node_ids:
        layer = scenario.broadcast_layer(node_id)
        assert isinstance(layer, FloodBroadcast)
        layer.resend_on_repair = resend
    before = scenario.network.stats.messages_by_type.get("GossipData", 0)
    scenario.fail_fraction(failure_fraction)
    summaries = scenario.send_paced_broadcasts(messages)
    after = scenario.network.stats.messages_by_type.get("GossipData", 0)
    series = [summary.reliability for summary in summaries]
    head = series[:10]
    return ResendPoint(
        resend_on_repair=resend,
        failure_fraction=failure_fraction,
        average_reliability=average_reliability(summaries),
        first10_average=sum(head) / len(head) if head else 0.0,
        data_transmissions=after - before,
    )


def run_resend_ablation(
    params: ExperimentParams,
    *,
    failure_fraction: float = 0.8,
    messages: int = 50,
) -> list[ResendPoint]:
    """Compare the paper's no-resend flood with the resend extension."""
    base = stabilized_scenario("hyparview", params)
    return [
        measure_resend_point(
            base.clone(), resend,
            failure_fraction=failure_fraction, messages=messages,
        )
        for resend in RESEND_VARIANTS
    ]


#: The payload message class each broadcast layer of the Plumtree study
#: counts (tree dissemination vs flood over the same overlay).
PLUMTREE_PAYLOADS = {"hyparview": "GossipData", "plumtree": "PlumtreeGossip"}


def measure_plumtree_point(
    scenario: Scenario,
    *,
    warmup: int = 5,
    messages: int = 20,
) -> dict[str, object]:
    """Payload traffic and reliability of one broadcast layer (consumed).

    ``warmup`` broadcasts converge Plumtree's tree (a no-op for the flood)
    before the measured batch, mirroring a long-running deployment.
    """
    payload_type = PLUMTREE_PAYLOADS[scenario.protocol]
    scenario.send_broadcasts(warmup)  # converge the tree / no-op for flood
    before = scenario.network.stats.messages_by_type.get(payload_type, 0)
    summaries = scenario.send_broadcasts(messages)
    after = scenario.network.stats.messages_by_type.get(payload_type, 0)
    return {
        "reliability": average_reliability(summaries),
        "payloads_per_broadcast": (after - before) / messages,
    }


def default_passive_sizes(config: HyParViewConfig) -> tuple[int, ...]:
    """A sweep bracketing the configured passive capacity."""
    anchor = config.passive_view_capacity
    return tuple(sorted({max(2, anchor // 4), max(3, anchor // 2), anchor, anchor * 2}))
