"""Ablations beyond the paper's figures.

Three studies that interrogate the design choices DESIGN.md calls out:

* **passive view size vs. resilience** — the paper's own future-work item
  ("experiment ... the relation between the passive view size and the
  resilience level of the protocol", Section 6);
* **shuffle TTL** — the paper leaves the shuffle walk length unspecified;
  the sweep shows its effect on passive-view freshness and repair quality;
* **flood resend-on-repair** — an extension where a failed flood copy is
  retransmitted towards the repaired active view, trading extra traffic
  for reliability during the repair transient.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..core.config import HyParViewConfig
from ..gossip.flood import FloodBroadcast
from ..metrics.reliability import average_reliability
from .failures import stabilized_scenario
from .params import ExperimentParams


@dataclass(frozen=True, slots=True)
class PassiveSizePoint:
    """Resilience of HyParView at one passive-view capacity."""

    passive_capacity: int
    failure_fraction: float
    average_reliability: float
    tail_reliability: float
    largest_component_fraction: float


def run_passive_size_ablation(
    params: ExperimentParams,
    passive_sizes: Sequence[int],
    *,
    failure_fraction: float = 0.8,
    messages: int = 50,
) -> list[PassiveSizePoint]:
    """Sweep the passive view capacity at a fixed (heavy) failure level."""
    points = []
    for capacity in passive_sizes:
        config = replace(params.hyparview, passive_view_capacity=capacity)
        point_params = replace(params, hyparview=config)
        scenario = stabilized_scenario("hyparview", point_params)
        scenario.fail_fraction(failure_fraction)
        summaries = scenario.send_paced_broadcasts(messages)
        series = [summary.reliability for summary in summaries]
        tail = series[-10:]
        snapshot = scenario.snapshot()
        points.append(
            PassiveSizePoint(
                passive_capacity=capacity,
                failure_fraction=failure_fraction,
                average_reliability=average_reliability(summaries),
                tail_reliability=sum(tail) / len(tail) if tail else 0.0,
                largest_component_fraction=snapshot.largest_component_fraction(),
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class ShuffleTtlPoint:
    """Overlay quality at one shuffle walk TTL.

    ``passive_balance`` is the coefficient of variation of the passive
    in-degree (how many passive views each node appears in): short walks
    exchange views with nearby nodes only, concentrating representation;
    longer walks mix the system and flatten it (lower is more uniform).
    """

    shuffle_ttl: int
    average_clustering: float
    passive_balance: float
    recovery_average: float


def run_shuffle_ttl_ablation(
    params: ExperimentParams,
    ttls: Sequence[int],
    *,
    failure_fraction: float = 0.6,
    messages: int = 30,
) -> list[ShuffleTtlPoint]:
    """Sweep the shuffle random-walk TTL (unspecified in the paper)."""
    points = []
    for ttl in ttls:
        config = replace(params.hyparview, shuffle_ttl=ttl)
        point_params = replace(params, hyparview=config)
        scenario = stabilized_scenario("hyparview", point_params)
        snapshot = scenario.snapshot()
        passive_in_degree: dict = {}
        for node_id in scenario.node_ids:
            for peer in scenario.membership(node_id).passive_members():
                passive_in_degree[peer] = passive_in_degree.get(peer, 0) + 1
        counts = [float(passive_in_degree.get(n, 0)) for n in scenario.node_ids]
        mean_count = sum(counts) / len(counts) if counts else 0.0
        if mean_count > 0:
            variance = sum((c - mean_count) ** 2 for c in counts) / len(counts)
            balance = variance**0.5 / mean_count
        else:
            balance = 0.0
        scenario.fail_fraction(failure_fraction)
        summaries = scenario.send_paced_broadcasts(messages)
        points.append(
            ShuffleTtlPoint(
                shuffle_ttl=ttl,
                average_clustering=snapshot.average_clustering(),
                passive_balance=balance,
                recovery_average=average_reliability(summaries),
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class ResendPoint:
    """Reliability/traffic trade of the flood resend extension."""

    resend_on_repair: bool
    failure_fraction: float
    average_reliability: float
    first10_average: float
    data_transmissions: int


def run_resend_ablation(
    params: ExperimentParams,
    *,
    failure_fraction: float = 0.8,
    messages: int = 50,
) -> list[ResendPoint]:
    """Compare the paper's no-resend flood with the resend extension."""
    points = []
    base = stabilized_scenario("hyparview", params)
    for resend in (False, True):
        scenario = base.clone()
        for node_id in scenario.node_ids:
            layer = scenario.broadcast_layer(node_id)
            assert isinstance(layer, FloodBroadcast)
            layer.resend_on_repair = resend
        before = scenario.network.stats.messages_by_type.get("GossipData", 0)
        scenario.fail_fraction(failure_fraction)
        summaries = scenario.send_paced_broadcasts(messages)
        after = scenario.network.stats.messages_by_type.get("GossipData", 0)
        series = [summary.reliability for summary in summaries]
        head = series[:10]
        points.append(
            ResendPoint(
                resend_on_repair=resend,
                failure_fraction=failure_fraction,
                average_reliability=average_reliability(summaries),
                first10_average=sum(head) / len(head) if head else 0.0,
                data_transmissions=after - before,
            )
        )
    return points


def default_passive_sizes(config: HyParViewConfig) -> tuple[int, ...]:
    """A sweep bracketing the configured passive capacity."""
    anchor = config.passive_view_capacity
    return tuple(sorted({max(2, anchor // 4), max(3, anchor // 2), anchor, anchor * 2}))
