"""Rendering and persistence of experiment results.

Two halves:

* **Plain text** — the benchmark harness prints the same rows and series
  the paper's tables and figures report; these helpers keep that output
  aligned, stable and diff-friendly (EXPERIMENTS.md quotes it verbatim).
* **JSON artifacts** — the experiment orchestrator persists every scenario
  run as a versioned ``BENCH_<scenario>.json`` file.  Artifacts are
  canonically encoded (sorted keys, fixed indentation, no timestamps or
  host identity), so a parallel run is byte-identical to a serial run of
  the same seed and CI can diff benchmark trajectories across commits.

A third, deliberately *non*-deterministic artifact family rides alongside:
``TIMINGS_<scenario>.json`` records per-unit wall-clock and kernel
events/s so CI can trend performance across commits (the ``perf-trend``
job).  Timings never share a file with results — ``BENCH_*`` stays a pure
function of the seed, ``TIMINGS_*`` is openly host- and load-dependent.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import Iterable, Mapping, Optional, Sequence

#: Version tag embedded in every artifact; bump on breaking layout changes.
ARTIFACT_SCHEMA = "repro-bench/1"

#: Version tag of the wall-clock trending artifacts (``TIMINGS_*.json``).
TIMINGS_SCHEMA = "repro-timings/1"

#: Version tag of the dissemination-trace artifacts (``TRACE_*.json``).
#: Traces are deterministic (pure functions of the seed, like ``BENCH_*``)
#: but live in their own files: tracing must never touch a BENCH byte.
TRACE_SCHEMA = "repro-trace/1"

#: Version tag of the metrics-snapshot artifacts (``METRICS_*.json``),
#: derived from the trace and equally deterministic.
METRICS_SCHEMA = "repro-metrics/1"


# ----------------------------------------------------------------------
# JSON artifacts
# ----------------------------------------------------------------------
def json_safe(value: object) -> object:
    """Recursively convert an experiment result into JSON-encodable data.

    Dataclasses become dicts, mappings get string keys (sorted encoding
    needs homogeneous keys — degree histograms are keyed by ints), tuples
    become lists, and non-finite floats become ``None`` rather than the
    non-standard ``NaN``/``Infinity`` tokens.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: json_safe(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [json_safe(item) for item in items]
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def encode_artifact(artifact: Mapping[str, object]) -> str:
    """Canonical text encoding: sorted keys, two-space indent, newline EOF.

    Byte-for-byte stability of this encoding is what the parallel-vs-serial
    determinism guarantee (and its CI check) is stated in terms of.
    """
    return json.dumps(json_safe(artifact), sort_keys=True, indent=2) + "\n"


def artifact_filename(scenario_id: str) -> str:
    """The on-disk name for one scenario's results."""
    return f"BENCH_{scenario_id}.json"


def write_artifact(
    directory: pathlib.Path | str, artifact: Mapping[str, object]
) -> pathlib.Path:
    """Persist one scenario artifact under ``directory``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / artifact_filename(str(artifact["scenario"]))
    path.write_text(encode_artifact(artifact))
    return path


def timings_filename(scenario_id: str) -> str:
    """The on-disk name for one scenario's wall-clock record."""
    return f"TIMINGS_{scenario_id}.json"


def write_timings_file(
    directory: pathlib.Path | str, timings: Mapping[str, object]
) -> pathlib.Path:
    """Persist one scenario's ``TIMINGS_*.json`` record; returns the path.

    Same canonical encoding as :func:`write_artifact` for diffability —
    but the *content* is wall-clock, so these files are expected to change
    on every run and must never be byte-compared like ``BENCH_*`` files.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / timings_filename(str(timings["scenario"]))
    path.write_text(encode_artifact(timings))
    return path


def load_timings(path: pathlib.Path | str) -> dict:
    """Read a timings record back; raises ``ValueError`` on schema mismatch."""
    data = json.loads(pathlib.Path(path).read_text())
    schema = data.get("schema")
    if schema != TIMINGS_SCHEMA:
        raise ValueError(
            f"unsupported timings schema {schema!r} in {path} "
            f"(expected {TIMINGS_SCHEMA!r})"
        )
    return data


def load_artifact(path: pathlib.Path | str) -> dict:
    """Read an artifact back; raises ``ValueError`` on schema mismatch."""
    data = json.loads(pathlib.Path(path).read_text())
    schema = data.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"unsupported artifact schema {schema!r} in {path} "
            f"(expected {ARTIFACT_SCHEMA!r})"
        )
    return data


def trace_filename(scenario_id: str) -> str:
    """The on-disk name for one scenario's dissemination trace."""
    return f"TRACE_{scenario_id}.json"


def metrics_filename(scenario_id: str) -> str:
    """The on-disk name for one scenario's metrics snapshot."""
    return f"METRICS_{scenario_id}.json"


def trace_artifact(
    scenario_id: str,
    *,
    tier: str,
    root_seed: int,
    replicates: Sequence[Mapping[str, object]],
) -> dict:
    """The ``TRACE_<scenario>.json`` payload.

    ``replicates`` entries are ``{"replicate": i, "segments": [...]}``
    with segments flattened in cell-enumeration order, so the trace is
    byte-identical across the workers × cells × snapshot-cache matrix.
    """
    return {
        "schema": TRACE_SCHEMA,
        "scenario": scenario_id,
        "tier": tier,
        "root_seed": root_seed,
        "replicates": list(replicates),
    }


def metrics_artifact(
    scenario_id: str,
    *,
    tier: str,
    root_seed: int,
    replicates: Sequence[Mapping[str, object]],
) -> dict:
    """The ``METRICS_<scenario>.json`` payload: per-replicate counter
    snapshots derived from the dissemination trace (deterministic)."""
    return {
        "schema": METRICS_SCHEMA,
        "scenario": scenario_id,
        "tier": tier,
        "root_seed": root_seed,
        "replicates": list(replicates),
    }


def write_trace_file(
    directory: pathlib.Path | str, trace: Mapping[str, object]
) -> pathlib.Path:
    """Persist one scenario's ``TRACE_*.json``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / trace_filename(str(trace["scenario"]))
    path.write_text(encode_artifact(trace))
    return path


def write_metrics_file(
    directory: pathlib.Path | str, metrics: Mapping[str, object]
) -> pathlib.Path:
    """Persist one scenario's ``METRICS_*.json``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / metrics_filename(str(metrics["scenario"]))
    path.write_text(encode_artifact(metrics))
    return path


def load_trace(path: pathlib.Path | str) -> dict:
    """Read a trace artifact back; raises ``ValueError`` on schema mismatch."""
    data = json.loads(pathlib.Path(path).read_text())
    schema = data.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(
            f"unsupported trace schema {schema!r} in {path} "
            f"(expected {TRACE_SCHEMA!r})"
        )
    return data


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_timings(
    scenario_seconds: Mapping[str, float],
    scenario_units: Mapping[str, int],
    scenario_events: Optional[Mapping[str, int]] = None,
) -> str:
    """Render per-scenario wall-clock totals for job logs.

    Strictly observability: this output goes to stderr/CI logs (and, in
    machine-readable form, to ``TIMINGS_*.json``) and must never be
    embedded in ``BENCH_*.json`` artifacts, which are required to be
    deterministic.
    """
    if not scenario_seconds:
        return "per-scenario timings: (none)"
    events = scenario_events or {}
    rows = []
    for scenario_id, seconds in sorted(scenario_seconds.items()):
        fired = events.get(scenario_id, 0)
        rows.append(
            [
                scenario_id,
                scenario_units.get(scenario_id, 0),
                f"{seconds:.2f}s",
                f"{fired / seconds:,.0f}" if fired and seconds > 0 else "-",
            ]
        )
    return format_table(
        ["scenario", "units", "worker seconds", "kernel events/s"],
        rows,
        title="per-scenario timings (TIMINGS_*.json / logs, never in BENCH artifacts)",
    )


def format_phases(
    phases: Sequence[Mapping[str, object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render per-fault-phase aggregates (the ``faults_*`` scenarios).

    Each row is one named window of a fault-plan timeline with its message
    count and reliability aggregates, as produced by
    :func:`repro.faults.measure.measure_fault_plan`.
    """
    rows = []
    for phase in phases:
        rows.append(
            [
                phase["phase"],
                f"{phase['start']:g}..{phase['end']:g}s",
                phase["messages"],
                "-" if phase["average"] is None else f"{phase['average']:.4f}",
                "-" if phase["min"] is None else f"{phase['min']:.4f}",
                "-" if phase["atomic"] is None else f"{phase['atomic']:.4f}",
            ]
        )
    return format_table(
        ["phase", "window", "msgs", "avg reliability", "min", "atomic"],
        rows,
        title=title,
    )


def format_percent(value: float) -> str:
    """Render a [0, 1] ratio as a one-decimal percentage string."""
    return f"{100.0 * value:.1f}%"


def format_series(series: Sequence[float], *, per_line: int = 20) -> str:
    """Render a reliability series as wrapped rows of percentages."""
    chunks = []
    for start in range(0, len(series), per_line):
        chunk = series[start : start + per_line]
        chunks.append(
            f"  msgs {start:>4}-{start + len(chunk) - 1:<4} "
            + " ".join(f"{100 * value:5.1f}" for value in chunk)
        )
    return "\n".join(chunks)


def sparkline(series: Sequence[float], *, low: float = 0.0, high: float = 1.0) -> str:
    """One-character-per-point rendering of a series, for quick eyeballs."""
    blocks = " ▁▂▃▄▅▆▇█"
    if high <= low:
        return " " * len(series)
    out = []
    for value in series:
        normalized = (min(max(value, low), high) - low) / (high - low)
        out.append(blocks[round(normalized * (len(blocks) - 1))])
    return "".join(out)


def format_histogram(
    histogram: Mapping[int, int],
    *,
    max_width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Render a degree histogram (Figure 5 style) with proportional bars."""
    if not histogram:
        return "(empty histogram)"
    peak = max(histogram.values())
    lines = [title] if title else []
    for degree in sorted(histogram):
        count = histogram[degree]
        bar = "#" * max(1, round(max_width * count / peak)) if count else ""
        lines.append(f"  in-degree {degree:>4}: {count:>6} {bar}")
    return "\n".join(lines)
