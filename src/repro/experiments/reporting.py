"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output aligned, stable and
diff-friendly (EXPERIMENTS.md quotes it verbatim).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_percent(value: float) -> str:
    """Render a [0, 1] ratio as a one-decimal percentage string."""
    return f"{100.0 * value:.1f}%"


def format_series(series: Sequence[float], *, per_line: int = 20) -> str:
    """Render a reliability series as wrapped rows of percentages."""
    chunks = []
    for start in range(0, len(series), per_line):
        chunk = series[start : start + per_line]
        chunks.append(
            f"  msgs {start:>4}-{start + len(chunk) - 1:<4} "
            + " ".join(f"{100 * value:5.1f}" for value in chunk)
        )
    return "\n".join(chunks)


def sparkline(series: Sequence[float], *, low: float = 0.0, high: float = 1.0) -> str:
    """One-character-per-point rendering of a series, for quick eyeballs."""
    blocks = " ▁▂▃▄▅▆▇█"
    if high <= low:
        return " " * len(series)
    out = []
    for value in series:
        normalized = (min(max(value, low), high) - low) / (high - low)
        out.append(blocks[round(normalized * (len(blocks) - 1))])
    return "".join(out)


def format_histogram(
    histogram: Mapping[int, int],
    *,
    max_width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Render a degree histogram (Figure 5 style) with proportional bars."""
    if not histogram:
        return "(empty histogram)"
    peak = max(histogram.values())
    lines = [title] if title else []
    for degree in sorted(histogram):
        count = histogram[degree]
        bar = "#" * max(1, round(max_width * count / peak)) if count else ""
        lines.append(f"  in-degree {degree:>4}: {count:>6} {bar}")
    return "\n".join(lines)
