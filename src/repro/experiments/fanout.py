"""Fanout sweep: Figures 1a and 1b of the paper.

Section 3.1 motivates HyParView by showing how much fanout plain gossip
needs for high reliability: Cyclon requires 5–6 and Scamp 6 to cross 99%
on 10 000 nodes, while HyParView floods a fanout-4-sized active view and
reaches 100% deterministically.

The sweep stabilises one overlay per protocol and clones it per fanout
value — the membership structure does not depend on the gossip fanout, so
every fanout sees the identical overlay, exactly like re-running the
paper's dissemination over one stabilised PeerSim network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.errors import ConfigurationError
from ..gossip.eager import EagerGossip
from ..metrics.reliability import atomic_fraction, average_reliability
from .failures import stabilized_scenario
from .params import ExperimentParams
from .scenario import Scenario


@dataclass(frozen=True, slots=True)
class FanoutPoint:
    """Reliability of one (protocol, fanout) cell (no failures)."""

    protocol: str
    fanout: int
    messages: int
    average_reliability: float
    atomic_fraction: float
    min_reliability: float


def run_fanout_sweep(
    protocol: str,
    fanouts: Sequence[int],
    params: ExperimentParams,
    messages: int = 50,
    *,
    base: Optional[Scenario] = None,
) -> list[FanoutPoint]:
    """Reliability as a function of fanout (Figure 1a/1b).

    Only meaningful for probabilistic gossip protocols — HyParView ignores
    the fanout by design (its flood uses the whole active view), so asking
    for its sweep raises.
    """
    if protocol in ("hyparview", "plumtree"):
        raise ConfigurationError(
            f"{protocol} floods its active view; a fanout sweep does not apply (Section 4.1)"
        )
    stabilized = base if base is not None else stabilized_scenario(protocol, params)
    frozen = stabilized.freeze()
    return [
        measure_fanout_point(Scenario.thaw(frozen), fanout, messages) for fanout in fanouts
    ]


def measure_fanout_point(scenario: Scenario, fanout: int, messages: int) -> FanoutPoint:
    """One (protocol, fanout) point on a scenario the caller hands over.

    The scenario is consumed (its gossip fanout is rewired); see
    :func:`~repro.experiments.failures.measure_failure` for the ownership
    convention.
    """
    for node_id in scenario.node_ids:
        layer = scenario.broadcast_layer(node_id)
        assert isinstance(layer, EagerGossip)
        layer.fanout = fanout
    summaries = scenario.send_broadcasts(messages)
    return FanoutPoint(
        protocol=scenario.protocol,
        fanout=fanout,
        messages=messages,
        average_reliability=average_reliability(summaries),
        atomic_fraction=atomic_fraction(summaries),
        min_reliability=min(summary.reliability for summary in summaries),
    )


def hyparview_reference_point(
    params: ExperimentParams, messages: int = 50, *, base: Optional[Scenario] = None
) -> FanoutPoint:
    """HyParView's single point for the Figure 1 comparison: flooding a
    ``fanout + 1`` active view in a stable overlay delivers atomically."""
    scenario = base.clone() if base is not None else stabilized_scenario("hyparview", params)
    summaries = scenario.send_broadcasts(messages)
    return FanoutPoint(
        protocol="hyparview",
        fanout=params.hyparview.fanout,
        messages=messages,
        average_reliability=average_reliability(summaries),
        atomic_fraction=atomic_fraction(summaries),
        min_reliability=min(summary.reliability for summary in summaries),
    )


#: Fanout range plotted in Figure 1.
FIGURE1_FANOUTS = (1, 2, 3, 4, 5, 6, 7, 8)
