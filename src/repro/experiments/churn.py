"""Continuous churn — an extension beyond the paper's one-shot failures.

The paper evaluates catastrophic *simultaneous* failures; real deployments
also face continuous churn: processes crash, leave gracefully, and
restart.  This driver interleaves such events with broadcasts and checks
that the overlay's reliability and structure hold up — the property that
made HyParView the membership layer of choice for long-lived systems
(Partisan, libp2p).

Event mix per churn step (weights configurable): crash a live node, leave
gracefully, or revive a dead node as a fresh process that re-joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import ConfigurationError
from ..metrics.reliability import average_reliability
from .failures import stabilized_scenario
from .params import ExperimentParams
from .scenario import Scenario


@dataclass(frozen=True, slots=True)
class ChurnResult:
    """Outcome of one churn run."""

    protocol: str
    n: int
    steps: int
    crashes: int
    leaves: int
    revives: int
    #: reliability of the probe messages sent after each churn step
    series: tuple[float, ...]
    average: float
    final_alive: int
    final_largest_component: float
    final_symmetry: float
    stale_active_entries: int


def run_churn_experiment(
    protocol: str,
    params: ExperimentParams,
    *,
    steps: int = 60,
    crash_weight: float = 0.4,
    leave_weight: float = 0.2,
    revive_weight: float = 0.4,
    probes_per_step: int = 1,
    min_alive_fraction: float = 0.3,
    base: Optional[Scenario] = None,
) -> ChurnResult:
    """Subject a stabilised overlay to ``steps`` churn events.

    Each step applies one event (crash / graceful leave / revive, weighted)
    and then probes reliability with ``probes_per_step`` broadcasts.  The
    live population never drops below ``min_alive_fraction`` — below that,
    crash events are replaced by revives (if anyone is dead).
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1: {steps}")
    total = crash_weight + leave_weight + revive_weight
    if total <= 0:
        raise ConfigurationError("at least one churn weight must be positive")
    scenario = base.clone() if base is not None else stabilized_scenario(protocol, params)
    rng = scenario.seeds.stream("churn")
    crashes = leaves = revives = 0
    summaries = []
    floor = max(2, int(min_alive_fraction * params.n))
    for _step in range(steps):
        alive = scenario.alive_ids()
        dead = [node_id for node_id in scenario.node_ids if node_id not in set(alive)]
        roll = rng.random() * total
        if roll < crash_weight:
            action = "crash"
        elif roll < crash_weight + leave_weight:
            action = "leave"
        else:
            action = "revive"
        if action in ("crash", "leave") and len(alive) <= floor:
            action = "revive" if dead else "none"
        if action == "revive" and not dead:
            action = "crash" if len(alive) > floor else "none"
        if action == "crash":
            scenario.fail_nodes([rng.choice(alive)])
            crashes += 1
        elif action == "leave":
            scenario.leave_gracefully(rng.choice(alive))
            leaves += 1
        elif action == "revive":
            scenario.revive_node(rng.choice(dead))
            revives += 1
        summaries.extend(scenario.send_paced_broadcasts(probes_per_step))
    snapshot = scenario.snapshot()
    alive_set = set(scenario.alive_ids())
    stale = sum(
        1
        for node_id in alive_set
        for peer in scenario.membership(node_id).out_neighbors()
        if peer not in alive_set
    )
    return ChurnResult(
        protocol=protocol,
        n=params.n,
        steps=steps,
        crashes=crashes,
        leaves=leaves,
        revives=revives,
        series=tuple(s.reliability for s in summaries),
        average=average_reliability(summaries),
        final_alive=len(alive_set),
        final_largest_component=snapshot.largest_component_fraction(),
        final_symmetry=snapshot.symmetry_fraction(),
        stale_active_entries=stale,
    )
