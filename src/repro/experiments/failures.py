"""Failure experiments: Figures 1c, 2 and 3 of the paper.

Procedure (Section 5.2): build the overlay by sequential joins, run 50
stabilisation cycles, crash a random fraction of nodes, then send a batch
of messages from random correct nodes *before any further membership
cycle* — reactive steps (failure detection, passive-view promotion) still
run, concurrently with the paced message stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..metrics.reliability import atomic_fraction, average_reliability, reliability_series
from .params import ExperimentParams
from .scenario import Scenario


@dataclass(frozen=True, slots=True)
class FailureExperimentResult:
    """Outcome of one (protocol, failure-fraction) cell."""

    protocol: str
    n: int
    failure_fraction: float
    messages: int
    #: per-message reliability in send order (Figures 1c / 3)
    series: tuple[float, ...]
    #: batch average (Figure 2)
    average: float
    #: fraction of messages that reached every correct node
    atomic: float
    #: survivors at measurement time
    correct_nodes: int

    def tail_average(self, k: int = 10) -> float:
        """Average of the last ``k`` messages — the healed steady state."""
        tail = self.series[-k:]
        return sum(tail) / len(tail) if tail else 0.0


def measure_failure(
    scenario: Scenario,
    failure_fraction: float,
    messages: int,
    *,
    paced: bool = True,
) -> FailureExperimentResult:
    """Crash, broadcast, measure — on a scenario the caller hands over.

    The scenario is consumed (mutated): callers keep a reusable base by
    passing a :meth:`~repro.experiments.scenario.Scenario.clone` or a
    snapshot-cache checkout instead of the base itself.
    """
    scenario.fail_fraction(failure_fraction)
    if paced:
        summaries = scenario.send_paced_broadcasts(messages)
    else:
        summaries = scenario.send_broadcasts(messages)
    return FailureExperimentResult(
        protocol=scenario.protocol,
        n=scenario.params.n,
        failure_fraction=failure_fraction,
        messages=messages,
        series=tuple(reliability_series(summaries)),
        average=average_reliability(summaries),
        atomic=atomic_fraction(summaries),
        correct_nodes=len(scenario.alive_ids()),
    )


def run_failure_experiment(
    protocol: str,
    params: ExperimentParams,
    failure_fraction: float,
    messages: int,
    *,
    base: Optional[Scenario] = None,
    paced: bool = True,
) -> FailureExperimentResult:
    """One cell of Figure 2 / one curve of Figure 3.

    ``base`` may carry a pre-stabilised scenario (it is cloned, never
    mutated); building one per call is the slow path.
    """
    scenario = base.clone() if base is not None else stabilized_scenario(protocol, params)
    return measure_failure(scenario, failure_fraction, messages, paced=paced)


def stabilized_scenario(protocol: str, params: ExperimentParams) -> Scenario:
    """Build + join + stabilise (the reusable expensive prefix)."""
    scenario = Scenario(protocol, params)
    scenario.build_overlay()
    scenario.stabilize()
    return scenario


def run_failure_sweep(
    protocols: Sequence[str],
    fractions: Sequence[float],
    params: ExperimentParams,
    messages: int,
) -> dict[tuple[str, float], FailureExperimentResult]:
    """The full Figure 2 grid: every protocol at every failure level.

    Each protocol is stabilised once and cloned per failure level, so the
    sweep cost is dominated by the message batches, not by re-building
    overlays.
    """
    results: dict[tuple[str, float], FailureExperimentResult] = {}
    for protocol in protocols:
        base = stabilized_scenario(protocol, params)
        for fraction in fractions:
            results[(protocol, fraction)] = run_failure_experiment(
                protocol, params, fraction, messages, base=base
            )
    return results


#: The failure levels of Figure 2.
FIGURE2_FRACTIONS = (0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95)

#: The panels of Figure 3.
FIGURE3_FRACTIONS = (0.20, 0.40, 0.60, 0.70, 0.80, 0.95)

#: The protocols compared throughout Section 5.
PAPER_PROTOCOLS = ("hyparview", "cyclon-acked", "cyclon", "scamp")
