"""The evaluation harness: one driver per table/figure of the paper."""

from .churn import ChurnResult, run_churn_experiment
from .ablations import (
    PassiveSizePoint,
    ResendPoint,
    ShuffleTtlPoint,
    default_passive_sizes,
    run_passive_size_ablation,
    run_resend_ablation,
    run_shuffle_ttl_ablation,
)
from .failures import (
    FIGURE2_FRACTIONS,
    FIGURE3_FRACTIONS,
    PAPER_PROTOCOLS,
    FailureExperimentResult,
    run_failure_experiment,
    run_failure_sweep,
    stabilized_scenario,
)
from .fanout import (
    FIGURE1_FANOUTS,
    FanoutPoint,
    hyparview_reference_point,
    run_fanout_sweep,
)
from .graphprops import (
    TABLE1_PROTOCOLS,
    GraphPropertiesResult,
    run_graph_properties,
    run_table1,
)
from .healing import (
    FIGURE4_FRACTIONS,
    FIGURE4_PROTOCOLS,
    HealingResult,
    run_healing_experiment,
    run_healing_sweep,
)
from .params import ExperimentParams, bench_message_count, bench_params
from .reporting import (
    format_histogram,
    format_percent,
    format_series,
    format_table,
    sparkline,
)
from .scenario import Scenario

__all__ = [
    "FIGURE1_FANOUTS",
    "FIGURE2_FRACTIONS",
    "FIGURE3_FRACTIONS",
    "FIGURE4_FRACTIONS",
    "FIGURE4_PROTOCOLS",
    "PAPER_PROTOCOLS",
    "TABLE1_PROTOCOLS",
    "ChurnResult",
    "ExperimentParams",
    "FailureExperimentResult",
    "FanoutPoint",
    "GraphPropertiesResult",
    "HealingResult",
    "PassiveSizePoint",
    "ResendPoint",
    "Scenario",
    "ShuffleTtlPoint",
    "bench_message_count",
    "bench_params",
    "default_passive_sizes",
    "format_histogram",
    "format_percent",
    "format_series",
    "format_table",
    "hyparview_reference_point",
    "run_failure_experiment",
    "run_failure_sweep",
    "run_fanout_sweep",
    "run_graph_properties",
    "run_healing_experiment",
    "run_healing_sweep",
    "run_churn_experiment",
    "run_passive_size_ablation",
    "run_resend_ablation",
    "run_shuffle_ttl_ablation",
    "run_table1",
    "sparkline",
    "stabilized_scenario",
]
