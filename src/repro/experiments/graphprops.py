"""Graph properties after stabilisation: Table 1 and Figure 5.

Table 1 reports, per protocol, the average clustering coefficient, the
average shortest path and the maximum hops to delivery (averaged across
messages) after 50 membership cycles.  Figure 5 shows the in-degree
distribution of the same overlays.  HyParView's numbers concern its active
view (footnote 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..metrics.graph import OverlaySnapshot, PathStats
from ..metrics.reliability import max_hops
from ..metrics.stats import SummaryStats, summarize
from .failures import stabilized_scenario
from .params import ExperimentParams
from .scenario import Scenario


@dataclass(frozen=True, slots=True)
class GraphPropertiesResult:
    """Table 1 row plus the Figure 5 histogram for one protocol."""

    protocol: str
    n: int
    average_clustering: float
    path_stats: PathStats
    #: mean over messages of the per-message maximum delivery hop count
    max_hops_to_delivery: float
    in_degree_histogram: dict[int, int]
    in_degree_stats: SummaryStats
    out_degree_stats: SummaryStats
    symmetry_fraction: float
    connected: bool


def run_graph_properties(
    protocol: str,
    params: ExperimentParams,
    *,
    messages: int = 50,
    path_sample_sources: Optional[int] = 100,
    base: Optional[Scenario] = None,
) -> GraphPropertiesResult:
    """Measure one protocol's Table 1 row / Figure 5 distribution."""
    scenario = base.clone() if base is not None else stabilized_scenario(protocol, params)
    snapshot: OverlaySnapshot = scenario.snapshot()
    in_degrees = snapshot.in_degrees()
    out_degrees = snapshot.out_degrees()
    summaries = scenario.send_broadcasts(messages)
    return GraphPropertiesResult(
        protocol=protocol,
        n=params.n,
        average_clustering=snapshot.average_clustering(),
        path_stats=snapshot.shortest_paths(sample_sources=path_sample_sources),
        max_hops_to_delivery=max_hops(summaries),
        in_degree_histogram=snapshot.in_degree_histogram(),
        in_degree_stats=summarize(float(v) for v in in_degrees.values()),
        out_degree_stats=summarize(float(v) for v in out_degrees.values()),
        symmetry_fraction=snapshot.symmetry_fraction(),
        connected=snapshot.is_connected(),
    )


def run_table1(
    protocols: Sequence[str],
    params: ExperimentParams,
    *,
    messages: int = 50,
    path_sample_sources: Optional[int] = 100,
) -> dict[str, GraphPropertiesResult]:
    """All Table 1 rows (the paper compares Cyclon, Scamp and HyParView)."""
    return {
        protocol: run_graph_properties(
            protocol, params, messages=messages, path_sample_sources=path_sample_sources
        )
        for protocol in protocols
    }


#: The protocols of Table 1 / Figure 5.
TABLE1_PROTOCOLS = ("cyclon", "scamp", "hyparview")
