"""Experiment parameters (Section 5.1) and the protocol stack registry.

``ExperimentParams.paper()`` is the exact published configuration at
n = 10 000.  ``ExperimentParams.scaled(n)`` keeps every protocol relation
intact (Cyclon view = HyParView active + passive; shuffle length ≈ 40% of
the view; fanout fixed at 4) while shrinking the log-sized views for a
smaller system, so laptop-scale runs preserve the comparisons the paper
makes.  Benchmarks read their scale from the environment:

* ``REPRO_BENCH_N`` — system size (default 500),
* ``REPRO_BENCH_MESSAGES`` — messages per measurement batch,
* ``REPRO_BENCH_PAPER=1`` — use the exact paper parameters/scale.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Optional

from ..common.errors import ConfigurationError
from ..core.config import HyParViewConfig
from ..gossip.byzantine import BRBConfig
from ..gossip.plumtree import PlumtreeConfig
from ..gossip.reliable import ReliableConfig
from ..protocols.cyclon import CyclonConfig
from ..protocols.registry import stack_names
from ..protocols.scamp import ScampConfig
from ..protocols.xbot import XBotConfig
from ..sim.latency import LATENCY_MODEL_NAMES

#: Protocol names accepted by the scenario builder, derived from the
#: declarative stack registry (:mod:`repro.protocols.registry`) so the
#: simulator, the asyncio runtime and this tuple can never disagree.  The
#: ``*-reliable`` stacks run the ack+retransmit broadcast layer (datagrams
#: + per-copy acks + cancellable retransmit timers) over the named overlay.
PROTOCOL_NAMES = stack_names()

#: Simulation kernels a scenario can run on: the single-process
#: bucket-queue :class:`~repro.sim.engine.Engine` and the space-sharded
#: :class:`~repro.sim.sharded.ShardedEngine` coordinator.  Both fire the
#: same events in the same order (the fig2 pin asserts it to the byte).
KERNEL_NAMES = ("single", "sharded")


@dataclass(frozen=True, slots=True)
class ExperimentParams:
    """Everything a scenario needs to be reproducible."""

    n: int = 1_000
    seed: int = 42
    fanout: int = 4
    stabilization_cycles: int = 50
    hyparview: HyParViewConfig = field(default_factory=HyParViewConfig)
    cyclon: CyclonConfig = field(default_factory=CyclonConfig)
    scamp: ScampConfig = field(default_factory=ScampConfig)
    reliable: ReliableConfig = field(default_factory=ReliableConfig)
    #: Byzantine broadcast tuning (quorum mode, assumed fault fraction,
    #: phase ack/retransmit knobs) for the ``*-brb`` stacks.
    brb: BRBConfig = field(default_factory=BRBConfig)
    #: Plumtree tuning; ``None`` uses the layer's defaults (the published
    #: setting).  Carried here so the stack registry can build plumtree
    #: stacks from one parameter object in both substrates.
    plumtree: Optional[PlumtreeConfig] = None
    #: X-BOT topology-optimisation tuning (swap rounds, unbiased slots)
    #: for the ``hyparview-xbot`` stack.
    xbot: XBotConfig = field(default_factory=XBotConfig)
    latency_seconds: float = 0.01
    #: Which latency world model prices the links (``LATENCY_MODEL_NAMES``):
    #: ``"constant"`` is the paper's abstract model and the historical
    #: default (every pre-existing artifact is pinned with it); ``"zoned"``
    #: is the planetary RTT zone matrix the ``topo_*`` scenarios run on.
    latency_model: str = "constant"
    #: Zone count for the ``"zoned"`` model; ignored by ``"constant"``.
    latency_zones: int = 8
    #: Engine timestamp quantisation (seconds); ``None`` keeps exact float
    #: bucketing.  Set by scenarios whose latency is continuous (WAN-jitter
    #: fault plans) so deliveries share buckets instead of degenerating to
    #: one event per bucket.  Off by default: artifacts are pinned with
    #: exact timestamps.
    engine_tick: Optional[float] = None
    max_events_per_drain: Optional[int] = 50_000_000
    #: Which simulation kernel runs the scenario (see ``KERNEL_NAMES``).
    #: The choice never changes measured results — it is deliberately
    #: excluded from artifact serialisation so byte-identity across
    #: kernels is checkable.
    kernel: str = "single"
    #: Shard count for the sharded kernel; ignored by ``"single"``.
    kernel_shards: int = 2

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"system size must be >= 2: {self.n}")
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1: {self.fanout}")
        if self.stabilization_cycles < 0:
            raise ConfigurationError(
                f"stabilisation cycles must be >= 0: {self.stabilization_cycles}"
            )
        if self.latency_seconds < 0:
            raise ConfigurationError(f"latency must be >= 0: {self.latency_seconds}")
        if self.engine_tick is not None and self.engine_tick <= 0:
            raise ConfigurationError(f"engine tick must be positive: {self.engine_tick}")
        if self.latency_model not in LATENCY_MODEL_NAMES:
            raise ConfigurationError(
                f"unknown latency model {self.latency_model!r}; "
                f"expected one of {LATENCY_MODEL_NAMES}"
            )
        if self.latency_zones < 1:
            raise ConfigurationError(f"zone count must be >= 1: {self.latency_zones}")
        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNEL_NAMES}"
            )
        if self.kernel_shards < 1:
            raise ConfigurationError(f"shard count must be >= 1: {self.kernel_shards}")

    @classmethod
    def paper(
        cls,
        n: int = 10_000,
        seed: int = 42,
        *,
        kernel: str = "single",
        kernel_shards: int = 2,
    ) -> "ExperimentParams":
        """The exact Section 5.1 setting (10 000 nodes by default)."""
        return cls(
            n=n,
            seed=seed,
            fanout=4,
            stabilization_cycles=50,
            kernel=kernel,
            kernel_shards=kernel_shards,
            hyparview=HyParViewConfig(
                active_view_capacity=5,
                passive_view_capacity=30,
                arwl=6,
                prwl=3,
                shuffle_ka=3,
                shuffle_kp=4,
            ),
            cyclon=CyclonConfig(view_size=35, shuffle_length=14, walk_ttl=5),
            scamp=ScampConfig(c=4),
        )

    @classmethod
    def scaled(
        cls,
        n: int,
        seed: int = 42,
        stabilization_cycles: int = 50,
        *,
        kernel: str = "single",
        kernel_shards: int = 2,
    ) -> "ExperimentParams":
        """Paper relations at system size ``n`` (views scale with log n)."""
        if n < 2:
            raise ConfigurationError(f"system size must be >= 2: {n}")
        hyparview = HyParViewConfig().scaled(n)
        cyclon_view = hyparview.active_view_capacity + hyparview.passive_view_capacity
        cyclon_view = min(cyclon_view, n - 1)
        shuffle_length = max(2, min(cyclon_view, round(0.4 * cyclon_view)))
        return cls(
            n=n,
            seed=seed,
            fanout=4,
            stabilization_cycles=stabilization_cycles,
            kernel=kernel,
            kernel_shards=kernel_shards,
            hyparview=hyparview,
            cyclon=CyclonConfig(
                view_size=cyclon_view,
                shuffle_length=shuffle_length,
                walk_ttl=5,
            ),
            scamp=ScampConfig(c=4),
        )

    def with_seed(self, seed: int) -> "ExperimentParams":
        return replace(self, seed=seed)

    def expected_passive_floor(self) -> int:
        """The "larger than log(n)" requirement from Section 4.1."""
        return math.ceil(math.log(self.n))


def bench_params() -> ExperimentParams:
    """Parameters for the benchmark harness, controlled by environment
    variables (see module docstring)."""
    if os.environ.get("REPRO_BENCH_PAPER", "") == "1":
        return ExperimentParams.paper()
    n = int(os.environ.get("REPRO_BENCH_N", "500"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    return ExperimentParams.scaled(n, seed=seed)


def bench_message_count(default: int = 100) -> int:
    """Messages per benchmark measurement batch (``REPRO_BENCH_MESSAGES``)."""
    return int(os.environ.get("REPRO_BENCH_MESSAGES", str(default)))
