"""Scenario: a fully wired simulated deployment of one protocol stack.

A scenario owns the engine, the network, ``n`` nodes each running a
membership protocol plus a broadcast layer, and a shared delivery tracker.
It exposes exactly the operations the paper's evaluation is written in
terms of: build the overlay by sequential joins, run membership cycles,
inject failures, send message batches, snapshot the overlay graph.

Building and stabilising a large overlay dominates experiment cost, so a
stabilised scenario can be :meth:`frozen <Scenario.freeze>` to bytes once
and :meth:`rehydrated <Scenario.thaw>` per measurement — the sweep drivers
and the orchestrator's snapshot cache rely on this.  :meth:`Scenario.clone`
is the freeze+thaw round trip; it replaced the original ``copy.deepcopy``,
which re-walked the whole object graph per clone and was ~3x slower than
``pickle.loads`` of a pre-frozen blob.
"""

from __future__ import annotations

import pickle
from typing import Optional

from ..common.errors import ConfigurationError, SimulationError
from ..common.ids import NodeId, simulated_node_ids
from ..common.rng import SeedSequence
from ..gossip.tracker import BroadcastSummary, BroadcastTracker
from ..metrics.graph import OverlaySnapshot
from ..obs.context import current_collector
from ..protocols.base import PeerSamplingService
from ..protocols.registry import get_stack
from ..sim.engine import Engine
from ..sim.latency import build_latency_model
from ..sim.network import Network
from ..sim.node import SimNode
from ..sim.sharded import ShardedEngine
from .params import PROTOCOL_NAMES, ExperimentParams


class _RecorderCallback:
    """Per-node ``on_deliver`` shim feeding a scenario-wide recorder."""

    __slots__ = ("recorder", "node_id")

    def __init__(self, recorder, node_id: NodeId) -> None:
        self.recorder = recorder
        self.node_id = node_id

    def __call__(self, message_id, payload) -> None:
        self.recorder.note(self.node_id, message_id, payload)


class Scenario:
    """One simulated deployment of ``params.n`` nodes running ``protocol``."""

    def __init__(
        self,
        protocol: str,
        params: Optional[ExperimentParams] = None,
        *,
        loss_rate: float = 0.0,
    ) -> None:
        if protocol not in PROTOCOL_NAMES:
            raise ConfigurationError(
                f"unknown protocol {protocol!r}; expected one of {PROTOCOL_NAMES}"
            )
        self.protocol = protocol
        self.params = params if params is not None else ExperimentParams()
        self.seeds = SeedSequence(self.params.seed)
        self.node_ids: list[NodeId] = simulated_node_ids(self.params.n)
        # The latency world model prices every link; ``params.latency_model``
        # selects it (constant by default — the historical, pinned setting).
        self.latency = build_latency_model(self.params)
        self.engine = self._build_kernel()
        self.network = Network(
            self.engine,
            latency=self.latency,
            seeds=self.seeds,
            loss_rate=loss_rate,
        )
        self.tracker = BroadcastTracker()
        # Dissemination tracing: when a collector is active (the runner's
        # --trace mode), every scenario lifetime records into its own
        # segment.  One module-global read at construction time; with
        # tracing off this stays None and the network pays one if-check.
        collector = current_collector()
        if collector is not None:
            self.network.trace = collector.new_segment()
        self._rng = self.seeds.stream("harness")
        # Optional per-delivery recorder (see set_delivery_recorder); set
        # before the node loop so _build_stack can consult it.
        self._delivery_recorder = None
        self.nodes: dict[NodeId, SimNode] = {}
        for node_id in self.node_ids:
            node = SimNode(node_id, self.network)
            self._build_stack(node)
            self.nodes[node_id] = node
        self.population: frozenset[NodeId] = frozenset(self.node_ids)
        self._overlay_built = False

    # ------------------------------------------------------------------
    # Kernel and stack construction
    # ------------------------------------------------------------------
    def _build_kernel(self):
        """The event kernel ``params.kernel`` asks for.

        ``"single"`` is the bucket-queue :class:`Engine`; ``"sharded"``
        partitions the node space into contiguous blocks across
        ``params.kernel_shards`` shard queues with the latency model's
        ``min_delay()`` — its greatest lower bound on any link delay — as
        the conservative lookahead window.  The bound is a static property
        of the model (no RNG), so it is exact for ConstantLatency and
        safely conservative for jittered models; quantised ticks round
        timestamps *up* and can never shrink a delay below it.  Both
        kernels fire the same events in the same order.
        """
        params = self.params
        if params.kernel == "single":
            return Engine(tick=params.engine_tick)
        engine = ShardedEngine(
            params.kernel_shards,
            tick=params.engine_tick,
            lookahead=self.latency.min_delay(),
        )
        engine.partition(self.node_ids)
        return engine

    def _build_stack(self, node: SimNode) -> None:
        # One construction path shared with the asyncio runtime: the
        # declarative stack registry (repro.protocols.registry) owns the
        # membership/broadcast factory pair for each protocol name and
        # resolves declared capabilities (``needs_roster``) itself — the
        # harness only supplies the roster, it never special-cases stacks.
        spec = get_stack(self.protocol)
        membership, broadcast = spec.build(
            node.host("membership"),
            node.host("gossip"),
            self.params,
            self.tracker,
            roster=self.node_ids,
        )
        node.wire("membership", membership)
        node.wire("gossip", broadcast)
        if self._delivery_recorder is not None:
            broadcast._on_deliver = _RecorderCallback(
                self._delivery_recorder, node.node_id
            )

    def set_delivery_recorder(self, recorder) -> None:
        """Route every broadcast delivery to ``recorder.note(node_id,
        message_id, payload)`` — including deliveries on stacks rebuilt by
        later ``revive_node`` calls.

        The tracker sees message *ids*; measurements that must judge
        delivered *values* (Byzantine mutation/equivocation runs) need the
        payloads.  ``None`` detaches.  Recorders are installed post-thaw
        on measurement checkouts, never frozen into snapshots.
        """
        self._delivery_recorder = recorder
        for node_id in self.node_ids:
            layer = self.broadcast_layer(node_id)
            layer._on_deliver = (
                _RecorderCallback(recorder, node_id) if recorder is not None else None
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def membership(self, node_id: NodeId) -> PeerSamplingService:
        return self.nodes[node_id].protocol("membership")

    def broadcast_layer(self, node_id: NodeId):
        return self.nodes[node_id].protocol("gossip")

    def alive_ids(self) -> list[NodeId]:
        return self.network.alive_ids()

    def drain(self) -> int:
        """Process every pending event (one lock-step phase)."""
        return self.engine.run_until_idle(self.params.max_events_per_drain)

    # ------------------------------------------------------------------
    # Overlay construction (Section 5: join one by one, no cycles between)
    # ------------------------------------------------------------------
    def build_overlay(self) -> None:
        if self._overlay_built:
            raise SimulationError("overlay already built")
        self._overlay_built = True
        joined = [self.node_ids[0]]
        for node_id in self.node_ids[1:]:
            contact = self._contact_for(node_id, joined)
            self.membership(node_id).join(contact)
            self.drain()
            joined.append(node_id)

    def _contact_for(self, node_id: NodeId, joined: list[NodeId]) -> NodeId:
        if self.protocol == "scamp":
            # Scamp joins through a random node already in the overlay.
            return self._rng.choice(joined)
        # HyParView and Cyclon use a single contact node (Section 5).
        return joined[0]

    def run_cycles(self, cycles: int = 1) -> None:
        """Membership cycles in PeerSim's cycle-driven style: every live
        node runs one cycle in random order, and each node's exchange
        completes before the next node starts.  (Initiating all exchanges
        simultaneously would let nodes sample each other's views mid-
        exchange, which cycle-driven PeerSim — the paper's setup — never
        does.)"""
        for _ in range(cycles):
            order = self.alive_ids()
            self._rng.shuffle(order)
            for node_id in order:
                if self.network.is_alive(node_id):
                    self.membership(node_id).cycle()
                    self.drain()

    def stabilize(self) -> None:
        self.run_cycles(self.params.stabilization_cycles)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_fraction(self, fraction: float) -> list[NodeId]:
        """Crash a random ``fraction`` of the currently live nodes."""
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(f"failure fraction must be in [0, 1): {fraction}")
        alive = self.alive_ids()
        count = int(round(fraction * len(alive)))
        victims = self._rng.sample(alive, count) if count else []
        self.fail_nodes(victims)
        return victims

    def fail_nodes(self, victims: list[NodeId]) -> None:
        self.network.fail_many(victims)
        self.population = frozenset(self.alive_ids())

    def leave_gracefully(self, node_id: NodeId) -> None:
        """A node announces departure (DISCONNECT / unsubscription) and then
        stops; protocols without a leave primitive just crash."""
        membership = self.membership(node_id)
        leave = getattr(membership, "leave", None)
        if callable(leave):
            leave()
            self.drain()
        self.fail_nodes([node_id])
        self.drain()

    def revive_node(
        self,
        node_id: NodeId,
        contact: Optional[NodeId] = None,
        *,
        drain: bool = True,
    ) -> None:
        """Restart a crashed node as a fresh process and re-join it.

        The old protocol state is discarded (a restarted process has none);
        a new stack is wired and joined through ``contact`` (default: a
        random live node), exactly like the initial joins.  ``drain=False``
        leaves the join traffic queued — fault-plan callbacks use it for
        *concurrent* mass rejoins (flash crowds), and because they run
        inside the engine loop a nested drain would be re-entrant.
        """
        if self.network.is_alive(node_id):
            raise SimulationError(f"node is not dead: {node_id}")
        alive = self.alive_ids()
        if contact is None:
            if not alive:
                raise SimulationError("no live contact to rejoin through")
            contact = self._rng.choice(alive)
        node = self.nodes[node_id]
        node.reset()
        self.network.recover(node_id)
        self._build_stack(node)
        self.membership(node_id).join(contact)
        if drain:
            self.drain()
        self.population = frozenset(self.alive_ids())

    # ------------------------------------------------------------------
    # Broadcasting and measurement
    # ------------------------------------------------------------------
    def send_broadcast(
        self, origin: Optional[NodeId] = None, payload=None
    ) -> BroadcastSummary:
        """Broadcast from ``origin`` (default: a random correct node), run
        the dissemination to completion and return its summary."""
        if origin is None:
            origin = self._rng.choice(self.alive_ids())
        elif not self.network.is_alive(origin):
            raise SimulationError(f"broadcast origin is not alive: {origin}")
        message_id = self.broadcast_layer(origin).broadcast(payload)
        self.drain()
        return self.tracker.finalize(message_id, self.population)

    def send_broadcasts(self, count: int) -> list[BroadcastSummary]:
        return [self.send_broadcast() for _ in range(count)]

    def send_paced_broadcasts(
        self, count: int, interval: Optional[float] = None
    ) -> list[BroadcastSummary]:
        """Broadcast ``count`` messages at a fixed application rate.

        Unlike :meth:`send_broadcasts` (which drains the network between
        messages), paced sending lets dissemination, failure detection and
        repair proceed *concurrently* with the message stream — the paper's
        Figure 3 setting, where early post-failure messages observe the
        overlay mid-repair.  ``interval`` defaults to five network delays.
        """
        if interval is None:
            interval = 5 * self.params.latency_seconds
        message_ids = []
        start = self.engine.now
        for index in range(count):
            self.engine.run_until(start + index * interval)
            origin = self._rng.choice(self.alive_ids())
            message_ids.append(self.broadcast_layer(origin).broadcast(None))
        self.drain()
        return [self.tracker.finalize(mid, self.population) for mid in message_ids]

    # ------------------------------------------------------------------
    # Graph analytics
    # ------------------------------------------------------------------
    def snapshot(self, *, alive_only: bool = True) -> OverlaySnapshot:
        views = {
            node_id: self.membership(node_id).out_neighbors() for node_id in self.node_ids
        }
        restrict = frozenset(self.alive_ids()) if alive_only else None
        return OverlaySnapshot.from_out_neighbors(views, restrict_to=restrict)

    # ------------------------------------------------------------------
    # Freezing (stabilise once, fork per failure level)
    # ------------------------------------------------------------------
    def freeze(self) -> bytes:
        """Snapshot the whole scenario as bytes (``pickle``).

        Requires a drained engine: freezing live pending events would
        duplicate in-flight messages in every rehydrated copy.  Lazily
        cancelled timers still parked in the queue are *not* pending work —
        they are compacted away rather than blocking the freeze (and would
        otherwise bloat the blob).

        Blobs are compact: every RNG stream pickles as its ``(seed,
        words_consumed)`` pair (see :class:`~repro.common.rng.
        StreamRandom`) rather than the full Mersenne-Twister state, which
        shrinks paper-scale snapshots by roughly an order of magnitude.
        Thawed streams fast-forward lazily on first draw, so rehydration
        cost is paid only for the nodes a measurement actually touches.

        The kernel serialises itself in kernel-appropriate sections: the
        single-shard engine as its canonical bucket/wheel state (blob
        bytes unchanged from before the sharded kernel existed), the
        sharded kernel as one sorted live-entry section per shard.  A
        sharded kernel caught mid-window (buffered cross-shard handoffs)
        refuses to freeze with a clear error — impossible here because
        the drained-engine check above already guarantees empty outboxes.
        """
        if self.engine.live_pending:
            raise SimulationError("cannot freeze a scenario with pending events")
        self.engine.compact()
        # Trace sinks are observers of one scenario lifetime, never part of
        # the frozen state (same discipline as delivery recorders): strip
        # around the dump, thaw attaches a fresh segment.
        trace = self.network.trace
        self.network.trace = None
        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            self.network.trace = trace

    @staticmethod
    def thaw(frozen: bytes) -> "Scenario":
        """Rehydrate a :meth:`frozen <freeze>` scenario.

        The copy shares nothing with the original; finalized broadcast
        summaries are dropped so each fork measures only its own traffic.
        """
        scenario: Scenario = pickle.loads(frozen)
        scenario.tracker.drop_summaries()
        collector = current_collector()
        if collector is not None:
            scenario.network.trace = collector.new_segment()
        return scenario

    def clone(self) -> "Scenario":
        """A private copy sharing nothing with the original.

        ``thaw(freeze())``; callers forking one base many times should
        freeze once and thaw per fork instead of cloning repeatedly.
        """
        return Scenario.thaw(self.freeze())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Scenario {self.protocol} n={self.params.n} alive={len(self.alive_ids())} "
            f"built={self._overlay_built}>"
        )
