"""Message overhead accounting (paper future work, Section 6).

The paper planned to "measure the packet overhead of our approach due to
the use of TCP" on PlanetLab.  The simulator's per-type message counters
give the protocol-level half of that answer: how many *control* messages
(membership maintenance) each protocol spends per node per cycle, and how
many *data* copies each broadcast costs, on identical overlays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .failures import stabilized_scenario
from .params import ExperimentParams
from .scenario import Scenario

#: Message types that carry broadcast payloads; everything else is control.
DATA_TYPES = frozenset({"GossipData", "PlumtreeGossip"})


@dataclass(frozen=True, slots=True)
class OverheadResult:
    """Control/data traffic of one protocol on a stable overlay."""

    protocol: str
    n: int
    cycles: int
    messages: int
    #: membership maintenance messages per node per cycle
    control_per_node_cycle: float
    #: payload-carrying copies per broadcast
    data_per_broadcast: float
    #: non-payload messages sent during the broadcast batch (acks, IHAVEs,
    #: repair traffic; ~0 for a stable flood)
    broadcast_control_per_broadcast: float
    #: full per-type breakdown of the cycle phase
    control_breakdown: dict[str, int]


def run_overhead_experiment(
    protocol: str,
    params: ExperimentParams,
    *,
    cycles: int = 10,
    messages: int = 20,
    base: Optional[Scenario] = None,
) -> OverheadResult:
    """Count control vs data messages for ``protocol`` on a stable overlay."""
    scenario = base.clone() if base is not None else stabilized_scenario(protocol, params)

    before = dict(scenario.network.stats.messages_by_type)
    scenario.run_cycles(cycles)
    after_cycles = dict(scenario.network.stats.messages_by_type)
    cycle_delta = {
        key: after_cycles.get(key, 0) - before.get(key, 0)
        for key in after_cycles
        if after_cycles.get(key, 0) != before.get(key, 0)
    }
    control_total = sum(
        count for key, count in cycle_delta.items() if key not in DATA_TYPES
    )

    scenario.send_broadcasts(messages)
    after_broadcasts = dict(scenario.network.stats.messages_by_type)
    broadcast_delta = {
        key: after_broadcasts.get(key, 0) - after_cycles.get(key, 0)
        for key in after_broadcasts
    }
    data_total = sum(broadcast_delta.get(key, 0) for key in DATA_TYPES)
    broadcast_control = sum(
        count for key, count in broadcast_delta.items() if key not in DATA_TYPES
    )

    return OverheadResult(
        protocol=protocol,
        n=params.n,
        cycles=cycles,
        messages=messages,
        control_per_node_cycle=control_total / (params.n * cycles),
        data_per_broadcast=data_total / messages,
        broadcast_control_per_broadcast=broadcast_control / messages,
        control_breakdown=cycle_delta,
    )
