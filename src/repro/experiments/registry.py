"""Tiered scenario registry — every experiment of the evaluation, by id.

One :class:`ScenarioSpec` per table/figure/ablation unifies what used to be
scattered across ``benchmarks/bench_*.py`` and the driver modules in this
package.  A spec names the experiment, configures it per **tier** and binds
three functions:

* ``run(ctx)``   — execute one replicate, return a JSON-safe dict;
* ``render(result, n)`` — the plain-text report the paper-style harness
  prints (tables, series, histograms);
* ``check(result, n)``  — shape assertions.  Sanity invariants always run;
  the paper's qualitative shapes (protocol orderings, thresholds) only
  assert at bench scale (``n >= SHAPE_CHECK_MIN_N``) where they hold.

Tiers:

* ``smoke`` — minutes on two CI cores; tiny systems, thinned sweeps.  CI
  runs this on every push, so the benchmark trajectory is recorded from
  the first green commit.
* ``paper`` — the DSN'07 configuration (10 000 nodes, Section 5.1 view
  sizes, full grids).  Hours of CPU; reproduces Figures 1–5 and Table 1.
* ``full``  — a laptop-scale sweep (1 000 nodes) with several replicates
  per scenario, for trend tracking with error bars.

Adding a scenario is one :func:`register` call; the orchestrator
(:mod:`repro.experiments.runner`), the ``repro bench`` CLI and the
benchmark harness all pick it up from :data:`REGISTRY`.

**Cells.**  Grid scenarios (protocol x failure-fraction sweeps, fanout
sweeps, per-protocol collections) additionally expose their inner grid as
independent **cells** via three optional hooks — ``cells`` (enumerate the
grid), ``run_cell`` (execute one cell) and ``merge_cells`` (assemble the
replicate result) — so the orchestrator can shard a single replicate's
grid across worker processes.  A cell's result depends only on
``(scenario, tier config, replicate seed, cell key)``, never on which
worker runs it or which cells ran before, and ``merge_cells`` reproduces
*exactly* the dict the monolithic ``run`` returns; artifacts are therefore
byte-identical whether a replicate ran whole, cell-by-cell in one process,
or sharded over many.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional

from ..common.errors import ConfigurationError
from .ablations import (
    RESEND_VARIANTS,
    default_passive_sizes,
    measure_passive_size_point,
    measure_plumtree_point,
    measure_resend_point,
    measure_shuffle_ttl_point,
    passive_size_params,
    shuffle_ttl_params,
)
from .churn import run_churn_experiment
from .failures import (
    FIGURE2_FRACTIONS,
    FIGURE3_FRACTIONS,
    PAPER_PROTOCOLS,
    measure_failure,
    stabilized_scenario,
)
from .fanout import FIGURE1_FANOUTS, hyparview_reference_point, measure_fanout_point
from .graphprops import TABLE1_PROTOCOLS, run_graph_properties
from .healing import FIGURE4_FRACTIONS, FIGURE4_PROTOCOLS, measure_healing
from .overhead import run_overhead_experiment
from .params import ExperimentParams
from .reporting import (
    format_histogram,
    format_series,
    format_table,
    json_safe,
    sparkline,
)
from .scenario import Scenario
from .snapshots import SnapshotCache

#: A cell's identity inside one replicate: a flat tuple of primitives
#: (protocol names, fractions, fanouts ...) — picklable, hashable, and
#: stable across processes.
CellKey = tuple

#: The orchestrator's tiers, cheapest first.
TIER_NAMES = ("smoke", "paper", "full")

#: Below this system size the paper's qualitative shapes are too noisy to
#: assert on; ``check`` functions fall back to sanity invariants only.
SHAPE_CHECK_MIN_N = 400


@dataclass(frozen=True, slots=True)
class TierConfig:
    """How one scenario runs at one tier."""

    n: int
    messages: int = 50
    replicates: int = 1
    stabilization_cycles: int = 50
    paper_params: bool = False
    #: Simulation kernel the replicates run on (``"single"``/``"sharded"``).
    #: Not part of the artifact: the kernels fire identical event orders,
    #: so artifacts stay byte-identical across this knob — which is
    #: exactly what the sharded determinism pins check.
    kernel: str = "single"
    #: Shard count when ``kernel == "sharded"``.
    kernel_shards: int = 2
    #: scenario-specific knobs (sweep grids, step counts, ...).
    extra: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"system size must be >= 2: {self.n}")
        if self.messages < 1:
            raise ConfigurationError(f"messages must be >= 1: {self.messages}")
        if self.replicates < 1:
            raise ConfigurationError(f"replicates must be >= 1: {self.replicates}")
        if self.kernel not in ("single", "sharded"):
            raise ConfigurationError(f"unknown kernel: {self.kernel!r}")
        if self.kernel_shards < 1:
            raise ConfigurationError(f"shard count must be >= 1: {self.kernel_shards}")

    def option(self, key: str, default: object) -> object:
        return self.extra.get(key, default)


@dataclass(frozen=True, slots=True)
class RunContext:
    """Everything one replicate needs: identity, tier config and its seed.

    The seed is derived by the orchestrator from
    ``SeedSequence(root_seed).derive_seed("bench/<scenario>/replicate/<i>")``
    so it depends only on ``(root_seed, scenario_id, replicate)`` — never on
    which worker process executes the replicate.
    """

    scenario_id: str
    tier: str
    config: TierConfig
    replicate: int
    seed: int
    #: per-worker cache of frozen stabilised bases; ``None`` disables
    #: caching (every base is rebuilt from scratch).  Never part of the
    #: replicate's identity — results are independent of cache occupancy.
    snapshots: Optional[SnapshotCache] = None

    def params(self) -> ExperimentParams:
        if self.config.paper_params:
            return ExperimentParams.paper(
                n=self.config.n,
                seed=self.seed,
                kernel=self.config.kernel,
                kernel_shards=self.config.kernel_shards,
            )
        return ExperimentParams.scaled(
            self.config.n,
            seed=self.seed,
            stabilization_cycles=self.config.stabilization_cycles,
            kernel=self.config.kernel,
            kernel_shards=self.config.kernel_shards,
        )

    def option(self, key: str, default: object) -> object:
        return self.config.option(key, default)

    def ensure_snapshots(self) -> "RunContext":
        """This context, guaranteed to carry a snapshot cache.

        Monolithic runs (no orchestrator attached) get a private transient
        cache so a grid still stabilises each protocol once, not once per
        cell.
        """
        if self.snapshots is not None:
            return self
        return replace(self, snapshots=SnapshotCache())

    def frozen_base(
        self, protocol: str, params: Optional[ExperimentParams] = None
    ) -> bytes:
        """The frozen stabilised base overlay for ``protocol``.

        Served from the snapshot cache when one is attached; always the
        same bytes for the same ``(protocol, params)``.  ``params``
        overrides the tier-derived defaults — ablation cells use this to
        stabilise per-point configurations (e.g. a swept passive-view
        capacity) through the same cache.
        """
        if params is None:
            params = self.params()
        if self.snapshots is None:
            return stabilized_scenario(protocol, params).freeze()
        return self.snapshots.frozen(protocol, params)

    def stabilized(
        self, protocol: str, params: Optional[ExperimentParams] = None
    ) -> Scenario:
        """A private, ready-to-mutate stabilised scenario for ``protocol``.

        Every checkout — cached or not — passes through exactly one
        freeze/thaw round trip since stabilisation, so measured results
        never depend on where the base came from.
        """
        return Scenario.thaw(self.frozen_base(protocol, params))


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One registered experiment."""

    id: str
    group: str
    title: str
    description: str
    tiers: Mapping[str, TierConfig]
    run: Callable[[RunContext], dict]
    render: Callable[[dict, int], str]
    check: Optional[Callable[[dict, int], None]] = None
    #: Optional cell decomposition (see the module docstring): enumerate
    #: one replicate's independent grid cells, execute one, and merge the
    #: per-cell results back into exactly what ``run`` would have returned.
    cells: Optional[Callable[[RunContext], tuple[CellKey, ...]]] = None
    run_cell: Optional[Callable[[RunContext, CellKey], dict]] = None
    merge_cells: Optional[Callable[[RunContext, Mapping[CellKey, dict]], dict]] = None
    #: Maps a cell key to the identity of the stabilised base it reuses
    #: (orchestrator scheduling hint; default: the key's first component).
    cell_affinity: Optional[Callable[[CellKey], object]] = None

    @property
    def supports_cells(self) -> bool:
        return self.cells is not None

    def tier(self, name: str) -> TierConfig:
        if name not in self.tiers:
            raise ConfigurationError(
                f"scenario {self.id!r} has no {name!r} tier; available: "
                f"{sorted(self.tiers)}"
            )
        return self.tiers[name]


REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    if spec.id in REGISTRY:
        raise ConfigurationError(f"duplicate scenario id: {spec.id}")
    unknown = set(spec.tiers) - set(TIER_NAMES)
    if unknown:
        raise ConfigurationError(f"unknown tiers on {spec.id!r}: {sorted(unknown)}")
    hooks = (spec.cells, spec.run_cell, spec.merge_cells)
    if any(hook is not None for hook in hooks) and None in hooks:
        raise ConfigurationError(
            f"scenario {spec.id!r} must define cells, run_cell and "
            f"merge_cells together (or none of them)"
        )
    REGISTRY[spec.id] = spec
    return spec


def celled_run(
    cells: Callable[[RunContext], tuple[CellKey, ...]],
    run_cell: Callable[[RunContext, CellKey], dict],
    merge_cells: Callable[[RunContext, Mapping[CellKey, dict]], dict],
) -> Callable[[RunContext], dict]:
    """A monolithic ``run`` derived from a cell decomposition.

    Executes every cell in enumeration order in-process and merges — the
    single-process reference semantics the sharded orchestrator must (and
    is tested to) reproduce byte-for-byte.  A transient snapshot cache is
    attached so grids still stabilise each base once per run, not once per
    cell, even outside the orchestrator.
    """

    def run(ctx: RunContext) -> dict:
        ctx = ctx.ensure_snapshots()
        return merge_cells(ctx, {key: run_cell(ctx, key) for key in cells(ctx)})

    return run


def get_scenario(scenario_id: str) -> ScenarioSpec:
    try:
        return REGISTRY[scenario_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario_id!r}; run `repro bench --list` "
            f"(available: {', '.join(sorted(REGISTRY))})"
        ) from None


def scenario_ids() -> tuple[str, ...]:
    return tuple(sorted(REGISTRY))


def _tiers(
    smoke: TierConfig, paper: TierConfig, full: Optional[TierConfig] = None
) -> dict[str, TierConfig]:
    if full is None:
        full = replace(paper, n=1_000, paper_params=False, replicates=3)
    return {"smoke": smoke, "paper": paper, "full": full}


def _cell_hooks(cells, run_cell, merge_cells) -> dict:
    """The four ScenarioSpec fields a cell decomposition defines at once."""
    return {
        "run": celled_run(cells, run_cell, merge_cells),
        "cells": cells,
        "run_cell": run_cell,
        "merge_cells": merge_cells,
    }


# ----------------------------------------------------------------------
# Figure 1a/1b — fanout vs reliability (+ the HyParView reference point)
# ----------------------------------------------------------------------
def _fanout_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    fanouts = tuple(ctx.option("fanouts", FIGURE1_FANOUTS))  # type: ignore[arg-type]
    return tuple((int(fanout),) for fanout in fanouts)


def _run_fanout_cell(ctx: RunContext, protocol: str, key: CellKey) -> dict:
    point = measure_fanout_point(ctx.stabilized(protocol), int(key[0]), ctx.config.messages)
    return json_safe(point)  # type: ignore[return-value]


def _merge_fanout(ctx: RunContext, protocol: str, cells: Mapping[CellKey, dict]) -> dict:
    fanouts = tuple(ctx.option("fanouts", FIGURE1_FANOUTS))  # type: ignore[arg-type]
    return {"protocol": protocol, "points": [cells[(int(f),)] for f in fanouts]}


def _render_fanout(result: dict, n: int) -> str:
    protocol = result["protocol"]
    rows = [
        [p["fanout"], p["average_reliability"], p["min_reliability"], p["atomic_fraction"]]
        for p in result["points"]
    ]
    return format_table(
        ["fanout", "avg reliability", "min reliability", "atomic fraction"],
        rows,
        title=f"Figure 1 — {protocol} fanout sweep (n={n})",
    )


def _check_fanout(result: dict, n: int, *, threshold: float) -> None:
    by_fanout = {p["fanout"]: p["average_reliability"] for p in result["points"]}
    for value in by_fanout.values():
        assert 0.0 <= value <= 1.0
    if n < SHAPE_CHECK_MIN_N or {1, 4, 6} - set(by_fanout):
        return
    # Paper shape: reliability grows with fanout and is high by fanout ~6.
    assert by_fanout[1] < by_fanout[4]
    assert by_fanout[6] > threshold


register(
    ScenarioSpec(
        id="fig1a_cyclon_fanout",
        group="figure1",
        title="Figure 1a — Cyclon fanout sweep",
        description="Reliability vs gossip fanout for Cyclon (no failures).",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=6, stabilization_cycles=15,
                             extra={"fanouts": (1, 4, 6)}),
            paper=TierConfig(n=10_000, messages=50, paper_params=True),
        ),
        render=_render_fanout,
        check=lambda result, n: _check_fanout(result, n, threshold=0.99),
        # Every fanout cell floods the same stabilised Cyclon base.
        cell_affinity=lambda key: "base",
        **_cell_hooks(
            _fanout_cells,
            lambda ctx, key: _run_fanout_cell(ctx, "cyclon", key),
            lambda ctx, cells: _merge_fanout(ctx, "cyclon", cells),
        ),
    )
)

register(
    ScenarioSpec(
        id="fig1b_scamp_fanout",
        group="figure1",
        title="Figure 1b — Scamp fanout sweep",
        description="Reliability vs gossip fanout for Scamp (no failures).",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=6, stabilization_cycles=15,
                             extra={"fanouts": (1, 4, 6)}),
            paper=TierConfig(n=10_000, messages=50, paper_params=True),
        ),
        render=_render_fanout,
        check=lambda result, n: _check_fanout(result, n, threshold=0.95),
        # Every fanout cell floods the same stabilised Scamp base.
        cell_affinity=lambda key: "base",
        **_cell_hooks(
            _fanout_cells,
            lambda ctx, key: _run_fanout_cell(ctx, "scamp", key),
            lambda ctx, cells: _merge_fanout(ctx, "scamp", cells),
        ),
    )
)


def _run_hyparview_reference(ctx: RunContext) -> dict:
    point = hyparview_reference_point(ctx.params(), messages=ctx.config.messages)
    return {"point": json_safe(point)}


def _render_hyparview_reference(result: dict, n: int) -> str:
    p = result["point"]
    return format_table(
        ["protocol", "fanout", "avg reliability", "atomic fraction"],
        [[p["protocol"], p["fanout"], p["average_reliability"], p["atomic_fraction"]]],
        title=f"Figure 1 reference — HyParView flood on a stable overlay (n={n})",
    )


def _check_hyparview_reference(result: dict, n: int) -> None:
    # The paper's headline holds at any scale: deterministic flooding of a
    # stable, connected overlay is atomic.
    assert result["point"]["average_reliability"] == 1.0
    assert result["point"]["atomic_fraction"] == 1.0


register(
    ScenarioSpec(
        id="fig1_hyparview_reference",
        group="figure1",
        title="Figure 1 — HyParView reference point",
        description="HyParView's flood delivers atomically on a stable overlay.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=6, stabilization_cycles=15),
            paper=TierConfig(n=10_000, messages=50, paper_params=True),
        ),
        run=_run_hyparview_reference,
        render=_render_hyparview_reference,
        check=_check_hyparview_reference,
    )
)


# ----------------------------------------------------------------------
# Figure 1c — baselines after 50% failures
# ----------------------------------------------------------------------
_FIG1C_PROTOCOLS = ("cyclon", "scamp")


def _fig1c_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    protocols = tuple(ctx.option("protocols", _FIG1C_PROTOCOLS))  # type: ignore[arg-type]
    return tuple((protocol,) for protocol in protocols)


def _run_fig1c_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol = str(key[0])
    result = measure_failure(ctx.stabilized(protocol), 0.5, ctx.config.messages)
    return json_safe(result)  # type: ignore[return-value]


def _merge_fig1c(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    protocols = tuple(ctx.option("protocols", _FIG1C_PROTOCOLS))  # type: ignore[arg-type]
    return {protocol: cells[(protocol,)] for protocol in protocols}


def _render_fig1c(result: dict, n: int) -> str:
    blocks = [
        format_table(
            ["protocol", "avg reliability", "max msg reliability", "atomic fraction"],
            [
                [r["protocol"], r["average"], max(r["series"]), r["atomic"]]
                for r in result.values()
            ],
            title=f"Figure 1c — messages after 50% failures (n={n})",
        )
    ]
    for r in result.values():
        blocks.append(f"\n{r['protocol']} series:  {sparkline(r['series'])}")
        blocks.append(format_series(r["series"]))
    return "\n".join(blocks)


def _check_fig1c(result: dict, n: int) -> None:
    for r in result.values():
        assert 0.0 <= r["average"] <= 1.0
    if n < SHAPE_CHECK_MIN_N:
        return
    # Paper shape: reliability is lost — neither baseline approaches 1.0.
    for r in result.values():
        assert max(r["series"]) < 0.999
        assert r["atomic"] == 0.0
        assert min(r["series"]) < 0.5


register(
    ScenarioSpec(
        id="fig1c_failure50",
        group="figure1",
        title="Figure 1c — baselines after 50% failures",
        description="Per-message reliability of Cyclon/Scamp right after a "
        "50% simultaneous crash, without membership cycles.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=10, stabilization_cycles=15),
            paper=TierConfig(n=10_000, messages=100, paper_params=True),
        ),
        render=_render_fig1c,
        check=_check_fig1c,
        **_cell_hooks(_fig1c_cells, _run_fig1c_cell, _merge_fig1c),
    )
)


# ----------------------------------------------------------------------
# Figure 2 — average reliability vs failure percentage (the headline)
# ----------------------------------------------------------------------
def _failure_grid(ctx: RunContext, default_fractions) -> tuple[tuple[str, ...], tuple[float, ...]]:
    protocols = tuple(ctx.option("protocols", PAPER_PROTOCOLS))  # type: ignore[arg-type]
    fractions = tuple(ctx.option("fractions", default_fractions))  # type: ignore[arg-type]
    return protocols, fractions


def _failure_grid_cells(ctx: RunContext, default_fractions) -> tuple[CellKey, ...]:
    protocols, fractions = _failure_grid(ctx, default_fractions)
    return tuple(
        (protocol, float(fraction)) for protocol in protocols for fraction in fractions
    )


def _run_failure_grid_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol, fraction = str(key[0]), float(key[1])
    result = measure_failure(ctx.stabilized(protocol), fraction, ctx.config.messages)
    return json_safe(result)  # type: ignore[return-value]


def _merge_failure_grid(
    ctx: RunContext, cells: Mapping[CellKey, dict], default_fractions
) -> dict:
    protocols, fractions = _failure_grid(ctx, default_fractions)
    return {
        "protocols": list(protocols),
        "fractions": list(fractions),
        "cells": {
            protocol: {
                f"{fraction:.2f}": cells[(protocol, float(fraction))]
                for fraction in fractions
            }
            for protocol in protocols
        },
    }


def _render_fig2(result: dict, n: int) -> str:
    protocols = result["protocols"]
    rows = []
    for fraction in result["fractions"]:
        key = f"{fraction:.2f}"
        rows.append(
            [f"{fraction:.0%}"]
            + [result["cells"][protocol][key]["average"] for protocol in protocols]
        )
    return format_table(
        ["failure %"] + list(protocols),
        rows,
        title=f"Figure 2 — avg reliability vs failure % (n={n})",
    )


def _check_fig2(result: dict, n: int) -> None:
    def get(protocol: str, fraction: float) -> float:
        return result["cells"][protocol][f"{fraction:.2f}"]["average"]

    for protocol in result["protocols"]:
        for fraction in result["fractions"]:
            assert 0.0 <= get(protocol, fraction) <= 1.0
    fractions = set(result["fractions"])
    if n < SHAPE_CHECK_MIN_N or not {0.5, 0.7, 0.8, 0.9}.issubset(fractions):
        return
    # Paper shape 1: HyParView is essentially unaffected below 90%.
    for fraction in (0.5, 0.7, 0.8):
        assert get("hyparview", fraction) > 0.95
    assert get("hyparview", 0.9) > 0.8
    # Paper shape 2: protocol ordering after heavy failures.
    assert get("hyparview", 0.7) >= get("cyclon-acked", 0.7) - 0.02
    assert get("cyclon-acked", 0.7) > get("cyclon", 0.7)
    # Paper shape 3: baselines collapse above 50% while HyParView holds.
    assert get("cyclon", 0.7) < 0.5
    assert get("scamp", 0.7) < 0.5
    assert get("hyparview", 0.8) - get("cyclon-acked", 0.8) > 0.2


register(
    ScenarioSpec(
        id="fig2_reliability",
        group="figure2",
        title="Figure 2 — reliability vs failure percentage",
        description="Average reliability of a message batch sent right "
        "after simultaneous crashes, for every protocol and failure level.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=6, stabilization_cycles=15,
                             extra={"fractions": (0.3, 0.7)}),
            paper=TierConfig(n=10_000, messages=1_000, paper_params=True),
        ),
        render=_render_fig2,
        check=_check_fig2,
        **_cell_hooks(
            lambda ctx: _failure_grid_cells(ctx, FIGURE2_FRACTIONS),
            _run_failure_grid_cell,
            lambda ctx, cells: _merge_failure_grid(ctx, cells, FIGURE2_FRACTIONS),
        ),
    )
)


# ----------------------------------------------------------------------
# Figure 3 — per-message recovery curves
# ----------------------------------------------------------------------
def _render_fig3(result: dict, n: int) -> str:
    blocks = [f"Figure 3 — reliability per message after failures (n={n})"]
    for fraction in result["fractions"]:
        key = f"{fraction:.2f}"
        blocks.append(f"\n--- panel: {fraction:.0%} failures ---")
        for protocol in result["protocols"]:
            r = result["cells"][protocol][key]
            blocks.append(
                f"{protocol:13s} avg={r['average']:.3f}  {sparkline(r['series'])}"
            )
    return "\n".join(blocks)


def _check_fig3(result: dict, n: int) -> None:
    for protocol in result["protocols"]:
        for cell in result["cells"][protocol].values():
            assert len(cell["series"]) == cell["messages"]
    if n < SHAPE_CHECK_MIN_N:
        return

    def tail(cell: dict, k: int = 10) -> float:
        window = cell["series"][-k:]
        return sum(window) / len(window) if window else 0.0

    for fraction in (0.6, 0.7, 0.8):
        if f"{fraction:.2f}" in result["cells"]["hyparview"]:
            # Paper shape: HyParView's healed tail is ~100% for panels <= 80%.
            assert tail(result["cells"]["hyparview"][f"{fraction:.2f}"]) > 0.95
    if "0.60" in result["cells"].get("cyclon", {}):
        # Plain Cyclon does not recover within the batch at 60%+.
        assert tail(result["cells"]["cyclon"]["0.60"]) < 0.9


register(
    ScenarioSpec(
        id="fig3_recovery",
        group="figure3",
        title="Figure 3 — post-failure recovery curves",
        description="Per-message reliability evolution after massive "
        "failures; HyParView recovers within a handful of broadcasts.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=10, stabilization_cycles=15,
                             extra={"fractions": (0.4, 0.7)}),
            paper=TierConfig(n=10_000, messages=1_000, paper_params=True),
        ),
        render=_render_fig3,
        check=_check_fig3,
        **_cell_hooks(
            lambda ctx: _failure_grid_cells(ctx, FIGURE3_FRACTIONS),
            _run_failure_grid_cell,
            lambda ctx, cells: _merge_failure_grid(ctx, cells, FIGURE3_FRACTIONS),
        ),
    )
)


# ----------------------------------------------------------------------
# Figure 4 — healing time in membership cycles
# ----------------------------------------------------------------------
def _fig4_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    protocols = tuple(ctx.option("protocols", FIGURE4_PROTOCOLS))  # type: ignore[arg-type]
    fractions = tuple(ctx.option("fractions", FIGURE4_FRACTIONS))  # type: ignore[arg-type]
    return tuple(
        (protocol, float(fraction)) for protocol in protocols for fraction in fractions
    )


def _run_fig4_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol, fraction = str(key[0]), float(key[1])
    params = ctx.params()
    max_cycles = int(ctx.option("max_cycles", 30))  # type: ignore[arg-type]
    # At laptop scale a couple of orphaned survivors would dominate
    # a strict tolerance; allow two stragglers (see bench history).
    survivors = max(1, round(params.n * (1 - fraction)))
    tolerance = max(0.01, 2.0 / survivors)
    result = measure_healing(
        ctx.stabilized(protocol), fraction, max_cycles=max_cycles, tolerance=tolerance
    )
    return json_safe(result)  # type: ignore[return-value]


def _merge_fig4(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    protocols = tuple(ctx.option("protocols", FIGURE4_PROTOCOLS))  # type: ignore[arg-type]
    fractions = tuple(ctx.option("fractions", FIGURE4_FRACTIONS))  # type: ignore[arg-type]
    return {
        "protocols": list(protocols),
        "fractions": list(fractions),
        "max_cycles": int(ctx.option("max_cycles", 30)),  # type: ignore[arg-type]
        "cells": {
            protocol: {
                f"{fraction:.2f}": cells[(protocol, float(fraction))]
                for fraction in fractions
            }
            for protocol in protocols
        },
    }


def _render_fig4(result: dict, n: int) -> str:
    rows = []
    for fraction in result["fractions"]:
        key = f"{fraction:.2f}"
        row = [f"{fraction:.0%}"]
        for protocol in result["protocols"]:
            healed = result["cells"][protocol][key]["cycles_to_heal"]
            row.append(str(healed) if healed is not None else f">{result['max_cycles']}")
        rows.append(row)
    return format_table(
        ["failure %"] + [f"{p} (cycles)" for p in result["protocols"]],
        rows,
        title=f"Figure 4 — healing time in membership cycles (n={n})",
    )


def _check_fig4(result: dict, n: int) -> None:
    for protocol in result["protocols"]:
        for cell in result["cells"][protocol].values():
            healed = cell["cycles_to_heal"]
            assert healed is None or 1 <= healed <= result["max_cycles"]
    if n < SHAPE_CHECK_MIN_N:
        return
    # Paper shape: HyParView heals, and in only a few cycles, below 80%
    # failures — never healing (None) is the regression to catch.
    for fraction, cell in result["cells"]["hyparview"].items():
        if float(fraction) <= 0.8:
            healed = cell["cycles_to_heal"]
            assert healed is not None and healed <= 5


register(
    ScenarioSpec(
        id="fig4_healing",
        group="figure4",
        title="Figure 4 — healing time",
        description="Membership cycles until reliability returns to the "
        "protocol's own pre-failure baseline.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=6, stabilization_cycles=15,
                             extra={"fractions": (0.3, 0.6), "max_cycles": 10}),
            paper=TierConfig(n=10_000, messages=10, paper_params=True),
        ),
        render=_render_fig4,
        check=_check_fig4,
        **_cell_hooks(_fig4_cells, _run_fig4_cell, _merge_fig4),
    )
)


# ----------------------------------------------------------------------
# Figure 5 / Table 1 — overlay graph properties
# ----------------------------------------------------------------------
def _graphprops_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    protocols = tuple(ctx.option("protocols", TABLE1_PROTOCOLS))  # type: ignore[arg-type]
    return tuple((protocol,) for protocol in protocols)


def _run_graphprops_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol = str(key[0])
    sources = ctx.option("path_sample_sources", 100)
    result = run_graph_properties(
        protocol, ctx.params(),
        messages=ctx.config.messages,
        path_sample_sources=None if sources is None else int(sources),  # type: ignore[arg-type]
    )
    return json_safe(result)  # type: ignore[return-value]


def _merge_graphprops(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    protocols = tuple(ctx.option("protocols", TABLE1_PROTOCOLS))  # type: ignore[arg-type]
    return {
        # The symmetric-view bound checks need the configured capacity.
        "active_view_capacity": ctx.params().hyparview.active_view_capacity,
        "protocols": {protocol: cells[(protocol,)] for protocol in protocols},
    }


_GRAPHPROPS_HOOKS = _cell_hooks(_graphprops_cells, _run_graphprops_cell, _merge_graphprops)


def _render_fig5(result: dict, n: int) -> str:
    blocks = [f"Figure 5 — in-degree distribution after stabilisation (n={n})"]
    for protocol, r in result["protocols"].items():
        histogram = {int(k): v for k, v in r["in_degree_histogram"].items()}
        blocks.append("")
        blocks.append(format_histogram(histogram, title=f"{protocol}:"))
    return "\n".join(blocks)


def _check_fig5(result: dict, n: int) -> None:
    for r in result["protocols"].values():
        assert sum(r["in_degree_histogram"].values()) <= n
    hv = result["protocols"].get("hyparview")
    if hv is None:
        return
    # Symmetric active views bound the in-degree at any scale.
    capacity = result["active_view_capacity"]
    hv_histogram = {int(k): v for k, v in hv["in_degree_histogram"].items()}
    assert max(hv_histogram, default=0) <= capacity
    if n < SHAPE_CHECK_MIN_N:
        return
    # Paper shape: HyParView concentrates at the active-view size while
    # the baselines spread in-degrees far wider.
    assert hv_histogram.get(capacity, 0) / n > 0.75
    cy = result["protocols"].get("cyclon")
    sc = result["protocols"].get("scamp")
    if cy and sc:
        assert cy["in_degree_stats"]["stddev"] > 3 * hv["in_degree_stats"]["stddev"]
        assert sc["in_degree_stats"]["stddev"] > 3 * hv["in_degree_stats"]["stddev"]


register(
    ScenarioSpec(
        id="fig5_indegree",
        group="figure5",
        title="Figure 5 — in-degree distribution",
        description="In-degree histograms of the stabilised overlays; "
        "HyParView concentrates at the active-view size.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=3, stabilization_cycles=15,
                             extra={"path_sample_sources": 20}),
            paper=TierConfig(n=10_000, messages=5, paper_params=True),
        ),
        render=_render_fig5,
        check=_check_fig5,
        **_GRAPHPROPS_HOOKS,
    )
)


def _render_table1(result: dict, n: int) -> str:
    rows = [
        [
            protocol,
            f"{r['average_clustering']:.6f}",
            f"{r['path_stats']['average']:.5f}",
            f"{r['max_hops_to_delivery']:.1f}",
        ]
        for protocol, r in result["protocols"].items()
    ]
    return format_table(
        ["protocol", "avg clustering", "avg shortest path", "max hops"],
        rows,
        title=f"Table 1 — graph properties after stabilisation (n={n})",
    )


def _check_table1(result: dict, n: int) -> None:
    protocols = result["protocols"]
    for r in protocols.values():
        assert 0.0 <= r["average_clustering"] <= 1.0
        assert r["connected"] in (True, False)
    hv = protocols.get("hyparview")
    if hv is not None:
        # The symmetric active view holds at any scale.
        assert hv["symmetry_fraction"] == 1.0
    if n < SHAPE_CHECK_MIN_N or hv is None:
        return
    for protocol in ("cyclon", "scamp"):
        if protocol in protocols:
            baseline = protocols[protocol]
            # Paper shapes: HyParView's clustering is far below the
            # baselines', its shortest path is the longest (tiny active
            # view) yet its delivery hop count is the smallest.
            assert hv["average_clustering"] < baseline["average_clustering"]
            assert hv["path_stats"]["average"] > baseline["path_stats"]["average"]
            assert hv["max_hops_to_delivery"] < baseline["max_hops_to_delivery"]


register(
    ScenarioSpec(
        id="table1_graph",
        group="table1",
        title="Table 1 — overlay graph properties",
        description="Clustering coefficient, shortest path and delivery "
        "hop count of the stabilised overlays.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=3, stabilization_cycles=15,
                             extra={"path_sample_sources": 20}),
            paper=TierConfig(n=10_000, messages=50, paper_params=True),
        ),
        render=_render_table1,
        check=_check_table1,
        **_GRAPHPROPS_HOOKS,
    )
)


# ----------------------------------------------------------------------
# Extensions — overhead accounting and continuous churn
# ----------------------------------------------------------------------
_OVERHEAD_PROTOCOLS = ("hyparview", "plumtree", "cyclon", "cyclon-acked", "scamp")


def _overhead_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    protocols = tuple(ctx.option("protocols", _OVERHEAD_PROTOCOLS))  # type: ignore[arg-type]
    return tuple((protocol,) for protocol in protocols)


def _run_overhead_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol = str(key[0])
    cycles = int(ctx.option("cycles", 10))  # type: ignore[arg-type]
    result = run_overhead_experiment(
        protocol, ctx.params(), cycles=cycles, messages=ctx.config.messages
    )
    return json_safe(result)  # type: ignore[return-value]


def _merge_overhead(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    protocols = tuple(ctx.option("protocols", _OVERHEAD_PROTOCOLS))  # type: ignore[arg-type]
    return {protocol: cells[(protocol,)] for protocol in protocols}


def _render_overhead(result: dict, n: int) -> str:
    rows = [
        [
            protocol,
            r["control_per_node_cycle"],
            r["data_per_broadcast"],
            r["broadcast_control_per_broadcast"],
        ]
        for protocol, r in result.items()
    ]
    return format_table(
        ["protocol", "control msgs/node/cycle", "data msgs/broadcast",
         "control msgs/broadcast"],
        rows,
        title=f"Message overhead on a stable overlay (n={n})",
    )


def _check_overhead(result: dict, n: int) -> None:
    for r in result.values():
        assert r["control_per_node_cycle"] >= 0.0
        assert r["data_per_broadcast"] >= 0.0
    if "cyclon" in result:
        # Cyclon's cycle is one request + one reply at any scale.
        assert result["cyclon"]["control_per_node_cycle"] <= 2.5


register(
    ScenarioSpec(
        id="overhead",
        group="extension",
        title="Extension — message overhead accounting",
        description="Control vs payload traffic per protocol on identical "
        "stable overlays (the paper's Section 6 future-work question).",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=5, stabilization_cycles=15,
                             extra={"cycles": 3}),
            paper=TierConfig(n=10_000, messages=20, paper_params=True),
        ),
        render=_render_overhead,
        check=_check_overhead,
        **_cell_hooks(_overhead_cells, _run_overhead_cell, _merge_overhead),
    )
)


_CHURN_PROTOCOLS = ("hyparview", "cyclon-acked")


def _churn_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    protocols = tuple(ctx.option("protocols", _CHURN_PROTOCOLS))  # type: ignore[arg-type]
    return tuple((protocol,) for protocol in protocols)


def _run_churn_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol = str(key[0])
    steps = int(ctx.option("steps", 60))  # type: ignore[arg-type]
    result = run_churn_experiment(protocol, ctx.params(), steps=steps)
    return json_safe(result)  # type: ignore[return-value]


def _merge_churn(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    protocols = tuple(ctx.option("protocols", _CHURN_PROTOCOLS))  # type: ignore[arg-type]
    return {protocol: cells[(protocol,)] for protocol in protocols}


def _render_churn(result: dict, n: int) -> str:
    rows = [
        [
            protocol,
            r["average"],
            r["crashes"],
            r["leaves"],
            r["revives"],
            r["final_largest_component"],
            r["stale_active_entries"],
        ]
        for protocol, r in result.items()
    ]
    blocks = [
        format_table(
            ["protocol", "avg reliability", "crashes", "leaves", "revives",
             "largest component", "stale entries"],
            rows,
            title=f"Churn — probe reliability under continuous churn (n={n})",
        )
    ]
    for protocol, r in result.items():
        blocks.append(f"{protocol:13s} {sparkline(r['series'])}")
    return "\n".join(blocks)


def _check_churn(result: dict, n: int) -> None:
    for r in result.values():
        assert r["crashes"] + r["leaves"] + r["revives"] <= r["steps"]
        assert 0.0 <= r["average"] <= 1.0
    if n < SHAPE_CHECK_MIN_N:
        return
    hv = result.get("hyparview")
    if hv:
        # Paper-motivated shape: HyParView stays essentially flat, keeps
        # its active views free of dead entries, and matches CyclonAcked.
        assert hv["average"] > 0.95
        assert hv["final_largest_component"] > 0.95
        assert hv["stale_active_entries"] <= 3
        acked = result.get("cyclon-acked")
        if acked:
            assert hv["average"] >= acked["average"] - 0.01


register(
    ScenarioSpec(
        id="churn",
        group="extension",
        title="Extension — continuous churn",
        description="Crashes, graceful leaves and fresh-process revivals "
        "interleaved with probe broadcasts.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=1, stabilization_cycles=15,
                             extra={"steps": 12}),
            paper=TierConfig(n=10_000, messages=1, paper_params=True,
                             extra={"steps": 200}),
        ),
        render=_render_churn,
        check=_check_churn,
        **_cell_hooks(_churn_cells, _run_churn_cell, _merge_churn),
    )
)


# ----------------------------------------------------------------------
# Ablations — every sweep point is one cell
# ----------------------------------------------------------------------
def _passive_sizes(ctx: RunContext) -> tuple[int, ...]:
    sizes = ctx.option("passive_sizes", None)
    if sizes is not None:
        return tuple(int(v) for v in sizes)  # type: ignore[union-attr]
    return default_passive_sizes(ctx.params().hyparview)


def _passive_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    return tuple((size,) for size in _passive_sizes(ctx))


def _run_passive_cell(ctx: RunContext, key: CellKey) -> dict:
    capacity = int(key[0])
    failure = float(ctx.option("failure", 0.8))  # type: ignore[arg-type]
    scenario = ctx.stabilized("hyparview", passive_size_params(ctx.params(), capacity))
    point = measure_passive_size_point(
        scenario, failure_fraction=failure, messages=ctx.config.messages
    )
    return json_safe(point)  # type: ignore[return-value]


def _merge_passive(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    failure = float(ctx.option("failure", 0.8))  # type: ignore[arg-type]
    return {"failure": failure, "points": [cells[(size,)] for size in _passive_sizes(ctx)]}


def _render_ablation_passive(result: dict, n: int) -> str:
    return format_table(
        ["passive capacity", "avg reliability", "tail reliability", "largest component"],
        [
            [p["passive_capacity"], p["average_reliability"], p["tail_reliability"],
             p["largest_component_fraction"]]
            for p in result["points"]
        ],
        title=(
            f"Ablation — passive view size vs resilience at "
            f"{result['failure']:.0%} failures (n={n})"
        ),
    )


def _check_ablation_passive(result: dict, n: int) -> None:
    points = result["points"]
    assert points == sorted(points, key=lambda p: p["passive_capacity"])
    if n < SHAPE_CHECK_MIN_N:
        return
    # Larger passive views must not hurt resilience.
    smallest, largest = points[0], points[-1]
    assert largest.get("tail_reliability", 0) >= smallest.get("tail_reliability", 0) - 0.02


register(
    ScenarioSpec(
        id="ablation_passive_size",
        group="ablation",
        title="Ablation — passive view size vs resilience",
        description="The paper's future-work sweep: passive capacity vs "
        "recovered reliability and connectivity at heavy failure levels.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=6, stabilization_cycles=15,
                             extra={"passive_sizes": (3, 8), "failure": 0.6}),
            paper=TierConfig(n=10_000, messages=50, paper_params=True),
        ),
        render=_render_ablation_passive,
        check=_check_ablation_passive,
        **_cell_hooks(_passive_cells, _run_passive_cell, _merge_passive),
    )
)


def _shuffle_ttls(ctx: RunContext) -> tuple[int, ...]:
    return tuple(int(v) for v in ctx.option("ttls", (1, 3, 6, 9)))  # type: ignore[union-attr]


def _shuffle_ttl_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    return tuple((ttl,) for ttl in _shuffle_ttls(ctx))


def _run_shuffle_ttl_cell(ctx: RunContext, key: CellKey) -> dict:
    ttl = int(key[0])
    failure = float(ctx.option("failure", 0.6))  # type: ignore[arg-type]
    scenario = ctx.stabilized("hyparview", shuffle_ttl_params(ctx.params(), ttl))
    point = measure_shuffle_ttl_point(
        scenario, failure_fraction=failure, messages=ctx.config.messages
    )
    return json_safe(point)  # type: ignore[return-value]


def _merge_shuffle_ttl(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    failure = float(ctx.option("failure", 0.6))  # type: ignore[arg-type]
    return {"failure": failure, "points": [cells[(ttl,)] for ttl in _shuffle_ttls(ctx)]}


def _render_ablation_shuffle_ttl(result: dict, n: int) -> str:
    return format_table(
        ["shuffle TTL", "avg clustering", "passive in-degree CV", "recovery avg"],
        [
            [p["shuffle_ttl"], p["average_clustering"], p["passive_balance"],
             p["recovery_average"]]
            for p in result["points"]
        ],
        title=f"Ablation — shuffle walk TTL (n={n}, {result['failure']:.0%} failures)",
    )


def _check_ablation_shuffle_ttl(result: dict, n: int) -> None:
    for p in result["points"]:
        assert 0.0 <= p["recovery_average"] <= 1.0
    if n < SHAPE_CHECK_MIN_N:
        return
    for p in result["points"]:
        assert p["recovery_average"] > 0.5
        assert p["passive_balance"] < 2.0


register(
    ScenarioSpec(
        id="ablation_shuffle_ttl",
        group="ablation",
        title="Ablation — shuffle walk TTL",
        description="The unspecified shuffle TTL: walk length vs passive "
        "view balance, clustering and recovery.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=6, stabilization_cycles=15,
                             extra={"ttls": (1, 6)}),
            paper=TierConfig(n=10_000, messages=30, paper_params=True),
        ),
        render=_render_ablation_shuffle_ttl,
        check=_check_ablation_shuffle_ttl,
        **_cell_hooks(_shuffle_ttl_cells, _run_shuffle_ttl_cell, _merge_shuffle_ttl),
    )
)


def _resend_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    return tuple((resend,) for resend in RESEND_VARIANTS)


def _run_resend_cell(ctx: RunContext, key: CellKey) -> dict:
    resend = bool(key[0])
    failure = float(ctx.option("failure", 0.8))  # type: ignore[arg-type]
    point = measure_resend_point(
        ctx.stabilized("hyparview"), resend,
        failure_fraction=failure, messages=ctx.config.messages,
    )
    return json_safe(point)  # type: ignore[return-value]


def _merge_resend(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    failure = float(ctx.option("failure", 0.8))  # type: ignore[arg-type]
    return {
        "failure": failure,
        "points": [cells[(resend,)] for resend in RESEND_VARIANTS],
    }


def _render_ablation_resend(result: dict, n: int) -> str:
    return format_table(
        ["resend on repair", "avg reliability", "first-10 avg", "payload transmissions"],
        [
            [str(p["resend_on_repair"]), p["average_reliability"], p["first10_average"],
             p["data_transmissions"]]
            for p in result["points"]
        ],
        title=(
            f"Ablation — flood resend extension at {result['failure']:.0%} "
            f"failures (n={n})"
        ),
    )


def _check_ablation_resend(result: dict, n: int) -> None:
    baseline = next(p for p in result["points"] if not p["resend_on_repair"])
    resend = next(p for p in result["points"] if p["resend_on_repair"])
    assert baseline["data_transmissions"] >= 0
    if n < SHAPE_CHECK_MIN_N:
        return
    # The extension trades extra payload traffic for early reliability.
    assert resend["average_reliability"] >= baseline["average_reliability"] - 0.02
    assert resend["data_transmissions"] >= baseline["data_transmissions"]


register(
    ScenarioSpec(
        id="ablation_flood_resend",
        group="ablation",
        title="Ablation — flood resend-on-repair",
        description="Retransmitting failed flood copies towards the "
        "repaired active view: reliability gained vs extra traffic.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=8, stabilization_cycles=15,
                             extra={"failure": 0.6}),
            paper=TierConfig(n=10_000, messages=50, paper_params=True),
        ),
        render=_render_ablation_resend,
        check=_check_ablation_resend,
        # Both arms fork one stabilised HyParView base.
        cell_affinity=lambda key: "base",
        **_cell_hooks(_resend_cells, _run_resend_cell, _merge_resend),
    )
)


_PLUMTREE_LAYERS = ("hyparview", "plumtree")


def _plumtree_cells(ctx: RunContext) -> tuple[CellKey, ...]:
    return tuple((protocol,) for protocol in _PLUMTREE_LAYERS)


def _run_plumtree_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol = str(key[0])
    warmup = int(ctx.option("warmup", 5))  # type: ignore[arg-type]
    return measure_plumtree_point(
        ctx.stabilized(protocol), warmup=warmup, messages=ctx.config.messages
    )


def _merge_plumtree(ctx: RunContext, cells: Mapping[CellKey, dict]) -> dict:
    return {protocol: cells[(protocol,)] for protocol in _PLUMTREE_LAYERS}


def _render_ablation_plumtree(result: dict, n: int) -> str:
    return format_table(
        ["layer", "avg reliability", "payload msgs / broadcast"],
        [
            ["flood", result["hyparview"]["reliability"],
             result["hyparview"]["payloads_per_broadcast"]],
            ["plumtree", result["plumtree"]["reliability"],
             result["plumtree"]["payloads_per_broadcast"]],
        ],
        title=f"Ablation — Plumtree payload savings vs flood (n={n})",
    )


def _check_ablation_plumtree(result: dict, n: int) -> None:
    # Both layers are atomic on a stable overlay at any scale, and the
    # tree never sends more payloads than the flood.
    assert result["hyparview"]["reliability"] == 1.0
    assert result["plumtree"]["reliability"] == 1.0
    assert (
        result["plumtree"]["payloads_per_broadcast"]
        <= result["hyparview"]["payloads_per_broadcast"]
    )
    if n < SHAPE_CHECK_MIN_N:
        return
    # A converged tree sends ~n-1 payloads vs the flood's ~n*(capacity-1):
    # a material saving, not mere parity.
    assert (
        result["plumtree"]["payloads_per_broadcast"]
        < 0.6 * result["hyparview"]["payloads_per_broadcast"]
    )


register(
    ScenarioSpec(
        id="ablation_plumtree",
        group="ablation",
        title="Ablation — Plumtree vs flood",
        description="Payload copies per broadcast for tree dissemination "
        "vs flooding over the same HyParView overlay.",
        tiers=_tiers(
            smoke=TierConfig(n=64, messages=5, stabilization_cycles=15,
                             extra={"warmup": 3}),
            paper=TierConfig(n=10_000, messages=20, paper_params=True),
        ),
        render=_render_ablation_plumtree,
        check=_check_ablation_plumtree,
        **_cell_hooks(_plumtree_cells, _run_plumtree_cell, _merge_plumtree),
    )
)


# ----------------------------------------------------------------------
# Fault-injection scenario family (repro.faults) — registered on import
# so the CLI, the orchestrator and CI pick the ``faults_*`` scenarios up
# from REGISTRY like any other experiment.  Imported last: the module
# registers through the machinery defined above.
# ----------------------------------------------------------------------
from ..faults import scenarios as _fault_scenarios  # noqa: E402,F401  (registration side effect)
from ..faults import byzantine as _byz_scenarios  # noqa: E402,F401  (registration side effect)
from . import topology as _topo_scenarios  # noqa: E402,F401  (registration side effect)
