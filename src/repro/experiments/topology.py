"""The ``topo_*`` scenario family: topology-aware overlay optimisation.

Both scenarios run on the planetary RTT world model
(:class:`~repro.sim.latency.ZonedLatency`, ``latency_model="zoned"``) and
compare ``hyparview-xbot`` — HyParView plus X-BOT optimisation swaps
(:mod:`repro.protocols.xbot`) — against plain ``hyparview``:

* ``topo_convergence`` — the link-cost distribution of active-view edges
  *before, during and after* optimisation (sampled along stabilisation),
  then the existing WAN-jitter fault plan on the optimised overlay:
  topology bias must not cost reliability under degraded links;
* ``topo_latency`` — time-to-full-delivery and per-hop latency of a paced
  broadcast stream over the optimised vs the unoptimised overlay, plus
  the churn-trace fault plan as the reliability envelope: the unbiased
  slots must keep healing intact while the biased slots buy speed.

Link costs are priced by the world model's jitter-free ``base_delay`` (the
same pure function the X-BOT oracle reads), so every reported number is
deterministic and the artifacts pin byte-for-byte like every other
scenario.  Both run the engine in quantised-tick mode: the zone matrix
plus per-message jitter is exactly the continuous-timestamp workload the
tick bucketing exists for.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from ..faults.measure import measure_fault_plan
from ..faults.scenarios import _churn_trace_factory, _phase, _sanity, _wan_factory
from .params import ExperimentParams
from .registry import (
    CellKey,
    RunContext,
    ScenarioSpec,
    TierConfig,
    _cell_hooks,
    _tiers,
    register,
)
from .reporting import format_phases, json_safe, sparkline
from .scenario import Scenario

#: The comparison the family makes: the optimiser and its baseline.
TOPO_PROTOCOLS = ("hyparview-xbot", "hyparview")


def _protocols(ctx: RunContext) -> tuple[str, ...]:
    return tuple(ctx.option("protocols", TOPO_PROTOCOLS))  # type: ignore[arg-type]


def _topo_params(ctx: RunContext) -> ExperimentParams:
    """Tier params moved onto the zoned RTT world model."""
    params = ctx.params()
    params = replace(
        params,
        latency_model="zoned",
        latency_zones=int(ctx.option("zones", 8)),  # type: ignore[arg-type]
    )
    tick = ctx.option("engine_tick", None)
    if tick is not None:
        params = replace(params, engine_tick=float(tick))  # type: ignore[arg-type]
    return params


def _settle(ctx: RunContext) -> float:
    """Post-stream settle time for fault measurements.  The default ten
    network delays assume the constant 0.01 s model; cross-continent links
    here run ~0.15 s per hop, so the tail needs real room."""
    return float(ctx.option("settle", 2.0))  # type: ignore[arg-type]


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (no interpolation —
    keeps artifact floats exactly equal to observed values)."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _edge_cost_stats(scenario: Scenario) -> dict:
    """Distribution of ``base_delay`` over the distinct undirected
    active-view edges between live nodes."""
    model = scenario.latency
    seen: set[tuple] = set()
    costs: list[float] = []
    alive = set(scenario.alive_ids())
    for node_id in scenario.alive_ids():
        for peer in scenario.membership(node_id).out_neighbors():
            if peer not in alive:
                continue
            key = (
                (node_id, peer)
                if (node_id.host, node_id.port) <= (peer.host, peer.port)
                else (peer, node_id)
            )
            if key in seen:
                continue
            seen.add(key)
            costs.append(model.base_delay(key[0], key[1]))
    costs.sort()
    if not costs:
        return {"edges": 0, "mean": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0}
    return {
        "edges": len(costs),
        "mean": sum(costs) / len(costs),
        "median": _quantile(costs, 0.5),
        "p90": _quantile(costs, 0.9),
        "max": costs[-1],
    }


def _optimizer_stats(scenario: Scenario) -> dict:
    """Summed X-BOT counters across live nodes (zeros for plain stacks)."""
    totals = {
        "rounds_initiated": 0,
        "swaps_completed": 0,
        "swaps_rejected": 0,
        "swap_timeouts": 0,
        "optimization_removals": 0,
        "unbiased_protected": 0,
        "edges_declined": 0,
    }
    for node_id in scenario.alive_ids():
        stats = getattr(scenario.membership(node_id), "xbot_stats", None)
        if stats is None:
            continue
        for field in totals:
            totals[field] += getattr(stats, field)
    return totals


# ----------------------------------------------------------------------
# topo_convergence
# ----------------------------------------------------------------------
def _run_convergence_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol = str(key[0])
    params = _topo_params(ctx)
    samples = max(1, int(ctx.option("samples", 3)))  # type: ignore[arg-type]
    # Built by hand (not ctx.stabilized): the point is the link-cost
    # trajectory *across* stabilisation, which a cached stabilised base
    # has already fast-forwarded past.
    scenario = Scenario(protocol, params)
    scenario.build_overlay()
    trajectory = [_edge_cost_stats(scenario)]
    remaining = params.stabilization_cycles
    chunk = max(1, params.stabilization_cycles // samples)
    while remaining > 0:
        step = min(chunk, remaining)
        scenario.run_cycles(step)
        remaining -= step
        trajectory.append(_edge_cost_stats(scenario))
    plan, phases, end = _wan_factory(ctx)
    interval = end / (ctx.config.messages - 1) if ctx.config.messages > 1 else None
    result = measure_fault_plan(
        scenario, plan,
        messages=ctx.config.messages, interval=interval,
        settle=_settle(ctx), phases=phases,
    )
    result["link_cost"] = {
        "trajectory": trajectory,
        "final": _edge_cost_stats(scenario),
    }
    result["optimizer"] = _optimizer_stats(scenario)
    return json_safe(result)  # type: ignore[return-value]


def _check_topo_convergence(result: dict, n: int) -> None:
    _sanity(result)
    xb = result.get("hyparview-xbot")
    hv = result.get("hyparview")
    if xb:
        trajectory = xb["link_cost"]["trajectory"]
        # Optimisation is real and strictly decreases the summed edge cost.
        assert xb["optimizer"]["swaps_completed"] > 0
        assert trajectory[-1]["mean"] < trajectory[0]["mean"]
    if xb and hv:
        # ...and beats the cost-blind baseline on the same world model.
        assert xb["link_cost"]["final"]["mean"] < hv["link_cost"]["final"]["mean"]
        # Topology bias must not cost reliability under the WAN window.
        assert xb["average"] >= hv["average"] - 0.05


def _render_topo_convergence(result: dict, n: int) -> str:
    blocks = [f"Topology — link-cost convergence under optimisation (n={n})"]
    for protocol, cell in result.items():
        cost = cell["link_cost"]
        means = [point["mean"] for point in cost["trajectory"]]
        optimizer = cell["optimizer"]
        blocks.append("")
        blocks.append(
            format_phases(cell["phases"], title=f"{protocol} — plan: "
                          f"{'; '.join(cell['plan']) or '(none)'}")
        )
        blocks.append(
            f"{protocol:15s} edge-cost mean {means[0]:.4f} -> {means[-1]:.4f}  "
            f"{sparkline(means, high=max(means))}  "
            f"(median {cost['final']['median']:.4f}, "
            f"p90 {cost['final']['p90']:.4f})"
        )
        blocks.append(
            f"  swaps: completed={optimizer['swaps_completed']} "
            f"rejected={optimizer['swaps_rejected']} "
            f"timeouts={optimizer['swap_timeouts']} "
            f"unbiased-protected={optimizer['unbiased_protected']}  "
            f"wan reliability avg={cell['average']:.3f}"
        )
    return "\n".join(blocks)


# ----------------------------------------------------------------------
# topo_latency
# ----------------------------------------------------------------------
def _broadcast_latency_stats(summaries) -> dict:
    pairs = [
        (summary.last_delivery_at - summary.sent_at, summary.max_hops)
        for summary in summaries
        if summary.delivered
    ]
    t_full = sorted(t for t, _ in pairs)
    per_hop = sorted(t / hops for t, hops in pairs if hops > 0)
    hops = sorted(hops for _, hops in pairs)
    reliability = [summary.reliability for summary in summaries]
    return {
        "messages": len(summaries),
        "atomic": sum(1 for r in reliability if r >= 1.0),
        "reliability_mean": (
            sum(reliability) / len(reliability) if reliability else 0.0
        ),
        "t_full": {
            "mean": sum(t_full) / len(t_full) if t_full else 0.0,
            "median": _quantile(t_full, 0.5),
            "p90": _quantile(t_full, 0.9),
            "max": t_full[-1] if t_full else 0.0,
        },
        "per_hop_mean": sum(per_hop) / len(per_hop) if per_hop else 0.0,
        "hops_median": _quantile([float(h) for h in hops], 0.5),
        "hops_max": hops[-1] if hops else 0,
    }


def _run_latency_cell(ctx: RunContext, key: CellKey) -> dict:
    protocol = str(key[0])
    params = _topo_params(ctx)
    # Clean-phase measurement: the broadcast stream over the stabilised
    # (optimised, for X-BOT) overlay with no faults.
    scenario = ctx.stabilized(protocol, params)
    link_cost = _edge_cost_stats(scenario)
    optimizer = _optimizer_stats(scenario)
    summaries = scenario.send_paced_broadcasts(ctx.config.messages)
    latency = _broadcast_latency_stats(summaries)
    # Reliability envelope: the same churn-trace plan the faults family
    # replays, on a fresh checkout of the same stabilised base.  The
    # unbiased slots must keep X-BOT's healing inside HyParView's envelope.
    churn_scenario = ctx.stabilized(protocol, params)
    plan, phases, end = _churn_trace_factory(ctx)
    interval = end / (ctx.config.messages - 1) if ctx.config.messages > 1 else None
    churn = measure_fault_plan(
        churn_scenario, plan,
        messages=ctx.config.messages, interval=interval,
        settle=_settle(ctx), phases=phases,
    )
    return json_safe(  # type: ignore[return-value]
        {
            "protocol": protocol,
            "n": params.n,
            "link_cost": link_cost,
            "optimizer": optimizer,
            "latency": latency,
            "churn": churn,
        }
    )


def _check_topo_latency(result: dict, n: int) -> None:
    for cell in result.values():
        latency = cell["latency"]
        assert latency["messages"] >= 1
        assert latency["t_full"]["median"] >= 0.0
        churn = cell["churn"]
        assert len(churn["series"]) == churn["messages"]
        for value in churn["series"]:
            assert 0.0 <= value <= 1.0
    xb = result.get("hyparview-xbot")
    hv = result.get("hyparview")
    if xb and hv:
        # The headline claim, asserted at every tier: X-BOT strictly
        # lowers both median time-to-full-delivery and active-view link
        # cost on the zoned world model...
        assert xb["latency"]["t_full"]["median"] < hv["latency"]["t_full"]["median"]
        assert xb["link_cost"]["median"] < hv["link_cost"]["median"]
        assert xb["link_cost"]["mean"] < hv["link_cost"]["mean"]
        # ...while the unbiased slots keep churn reliability within the
        # plain-HyParView envelope.
        assert xb["churn"]["average"] >= hv["churn"]["average"] - 0.05
        assert xb["optimizer"]["swaps_completed"] > 0


def _render_topo_latency(result: dict, n: int) -> str:
    blocks = [f"Topology — broadcast latency, X-BOT vs HyParView (n={n})"]
    for protocol, cell in result.items():
        latency = cell["latency"]
        t_full = latency["t_full"]
        churn = cell["churn"]
        blocks.append("")
        blocks.append(
            f"{protocol:15s} t-full median={t_full['median']:.3f}s "
            f"p90={t_full['p90']:.3f}s  per-hop={latency['per_hop_mean']*1000:.1f}ms  "
            f"hops<= {latency['hops_max']}  edge-cost mean={cell['link_cost']['mean']:.4f}"
        )
        blocks.append(
            f"  clean reliability={latency['reliability_mean']:.3f} "
            f"({latency['atomic']}/{latency['messages']} atomic)  "
            f"churn avg={churn['average']:.3f}  {sparkline(churn['series'])}"
        )
        late = _phase(churn, "late")
        if late["messages"]:
            blocks.append(f"  churn late-phase avg={late['average']:.3f}")
    return "\n".join(blocks)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def _register_topo_scenario(
    *,
    scenario_id: str,
    title: str,
    description: str,
    run_cell,
    render,
    check,
    smoke: TierConfig,
    paper: TierConfig,
) -> None:
    def cells(ctx: RunContext) -> tuple[CellKey, ...]:
        return tuple((protocol,) for protocol in _protocols(ctx))

    def merge(ctx: RunContext, cell_results: Mapping[CellKey, dict]) -> dict:
        return {protocol: cell_results[(protocol,)] for protocol in _protocols(ctx)}

    register(
        ScenarioSpec(
            id=scenario_id,
            group="topology",
            title=title,
            description=description,
            tiers=_tiers(smoke=smoke, paper=paper),
            render=render,
            check=check,
            **_cell_hooks(cells, run_cell, merge),
        )
    )


_register_topo_scenario(
    scenario_id="topo_convergence",
    title="Topology — link-cost convergence under optimisation",
    description="Link-cost distribution of active-view edges before/during/"
    "after X-BOT optimisation on the zoned RTT world model, then the WAN-"
    "jitter fault window on the optimised overlay.",
    run_cell=_run_convergence_cell,
    render=_render_topo_convergence,
    check=_check_topo_convergence,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15,
                     extra={"engine_tick": 0.002}),
    paper=TierConfig(n=10_000, messages=100, paper_params=True,
                     extra={"engine_tick": 0.002}),
)

_register_topo_scenario(
    scenario_id="topo_latency",
    title="Topology — broadcast latency, X-BOT vs HyParView",
    description="Time-to-full-delivery and per-hop latency of a paced "
    "broadcast stream, X-BOT vs plain HyParView on the zoned RTT world "
    "model, with the churn-trace plan as the reliability envelope.",
    run_cell=_run_latency_cell,
    render=_render_topo_latency,
    check=_check_topo_latency,
    smoke=TierConfig(n=64, messages=12, stabilization_cycles=15,
                     extra={"engine_tick": 0.002}),
    paper=TierConfig(n=10_000, messages=100, paper_params=True,
                     extra={"engine_tick": 0.002}),
)


__all__ = ["TOPO_PROTOCOLS"]
