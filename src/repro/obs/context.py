"""Process-local activation point for dissemination tracing.

A :class:`~repro.obs.trace.TraceCollector` is *activated* around a unit of
work (the runner does this per :class:`~repro.experiments.runner.WorkUnit`
when ``--trace`` is on).  While active, every
:class:`~repro.experiments.scenario.Scenario` built or thawed attaches a
fresh trace segment to its network; with no active collector, construction
is bit-for-bit what it was before tracing existed.

The lookup happens once per scenario construction — never on the
per-message hot path — so the pay-for-what-you-use budget of tracing-off
runs is a single module-global read at scenario-build time.
"""

from __future__ import annotations

from typing import Optional

from .trace import TraceCollector

_active: Optional[TraceCollector] = None


def activate_collector(collector: TraceCollector) -> None:
    """Make ``collector`` the process-wide trace sink for new scenarios."""
    global _active
    _active = collector


def deactivate_collector() -> None:
    """Clear the active collector (idempotent)."""
    global _active
    _active = None


def current_collector() -> Optional[TraceCollector]:
    """The active collector, or ``None`` when tracing is off."""
    return _active
