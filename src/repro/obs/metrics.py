"""Typed metric instruments and the unified registry.

One registry per node/cluster absorbs the scattered stats the codebase
grew organically (``Network`` drop counters, kernel ``events_fired_total``,
``ShardSyncStats``, transport epoch/staleness audits, service breaker and
token-bucket counters, ``LatencyHistogram``): sources register *collector*
callbacks that refresh instrument values at snapshot/scrape time, so the
hot paths keep their existing plain-int counters and pay nothing for the
registry's existence.

Two output surfaces:

* :meth:`MetricsRegistry.snapshot` — a deterministic, sorted, JSON-safe
  dict for simulation artifacts (``METRICS_*.json``).
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (version 0.0.4), dependency-free, served by
  :mod:`repro.obs.http` on the live service.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds, in seconds (latency-oriented).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared labelled-value storage for counters and gauges."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def clear(self) -> None:
        self._values.clear()

    def samples(self) -> list[tuple[str, LabelKey, float]]:
        return [(self.name, key, value) for key, value in sorted(self._values.items())]


class Counter(_Instrument):
    """Monotonically increasing count.

    ``set_total`` exists for collectors that mirror an externally-owned
    plain-int counter (the common case here); ``inc`` is for code that
    owns its count in the registry.
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)


class Gauge(_Instrument):
    """A value that can go up and down (queue depths, breaker state)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def clear(self) -> None:
        self._counts.clear()
        self._sums.clear()
        self._totals.clear()

    def samples(self) -> list[tuple[str, LabelKey, float]]:
        out: list[tuple[str, LabelKey, float]] = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            for bound, count in zip(self.buckets, counts):
                le = (("le", _format_value(bound)),)
                out.append((f"{self.name}_bucket", tuple(sorted(key + le)), float(count)))
            inf = (("le", "+Inf"),)
            out.append(
                (f"{self.name}_bucket", tuple(sorted(key + inf)), float(self._totals[key]))
            )
            out.append((f"{self.name}_sum", key, self._sums[key]))
            out.append((f"{self.name}_count", key, float(self._totals[key])))
        return out


class MetricsRegistry:
    """A named set of instruments plus collect-on-demand callbacks."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._collectors: list[Callable[[], None]] = []

    def _get(self, name: str, factory: Callable[[], object]) -> object:
        instrument = self._metrics.get(name)
        if instrument is None:
            instrument = factory()
            self._metrics[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._get(name, lambda: Counter(name, help))
        if not isinstance(instrument, Counter):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._get(name, lambda: Gauge(name, help))
        if not isinstance(instrument, Gauge):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._get(
            name, lambda: Histogram(name, help, buckets or DEFAULT_BUCKETS)
        )
        if not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def register_collector(self, collect: Callable[[], None]) -> None:
        """``collect`` runs before every snapshot/exposition, refreshing values."""
        self._collectors.append(collect)

    def collect(self) -> None:
        for collect in self._collectors:
            collect()

    def snapshot(self) -> dict:
        """Deterministic JSON-safe view: ``{metric: {label-string: value}}``."""
        self.collect()
        out: dict[str, dict[str, float]] = {}
        for name in sorted(self._metrics):
            instrument = self._metrics[name]
            series = {
                sample_name + _format_labels(key): value
                for sample_name, key, value in instrument.samples()
            }
            out[name] = dict(sorted(series.items()))
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4)."""
        self.collect()
        lines: list[str] = []
        for name in sorted(self._metrics):
            instrument = self._metrics[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for sample_name, key, value in instrument.samples():
                lines.append(f"{sample_name}{_format_labels(key)} {_format_value(value)}")
        return "\n".join(lines) + "\n"
