"""Causal dissemination tracing and broadcast-tree reconstruction.

The simulator's :class:`~repro.sim.network.Network` (and the live
:class:`~repro.runtime.transport.AsyncioTransport`) accept a trace sink
with a ``record(time, kind, src, dst, message)`` method.
:class:`TraceSegment` is that sink: it keeps only events that carry a
gossip ``message_id`` (membership and overlay-maintenance traffic records
nothing, which is what keeps traces identical whether a run rebuilds its
stabilized base or thaws it from the snapshot cache) and stores them as
compact tuples.

A :class:`TraceCollector` hands out one segment per scenario
construction/thaw — thawed copies restart per-origin sequence counters,
so the same ``MessageId`` legitimately recurs across grid cells and the
segment boundary is what keeps them apart.

:class:`DisseminationTrace` consumes the collected segments (or a
``TRACE_*.json`` artifact) and reconstructs, per message, the broadcast
tree: parent/child edges with hop depth, per-hop latency, fan-out,
time-to-full-delivery and the redundancy/ack/drop overlay.  It also
exports a single message as Chrome trace-event JSON (load it in
``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

#: Message types that carry the broadcast payload: their first delivery at a
#: node is that node's position in the broadcast tree.
PAYLOAD_TYPES = frozenset({"GossipData", "PlumtreeGossip", "BRBSend"})

#: Acknowledgement overlay (reliable-delivery and BRB phase acks).
ACK_TYPES = frozenset({"GossipAck", "BRBAck"})

#: Default cap on records kept per segment.  When full, *new* records are
#: counted in ``dropped`` and discarded (the tree prefix stays intact);
#: the runner surfaces the drop count on stderr so truncation is visible.
DEFAULT_SEGMENT_LIMIT = 500_000


class TraceSegment:
    """Network trace sink for one scenario lifetime.

    Records are ``(time, kind, type, src, dst, message_id, depth)`` tuples
    with stringified endpoints/ids; ``depth`` is the message's own hop
    counter (``hops`` for flood/reliable gossip, ``round`` for Plumtree)
    or ``None`` for messages that do not carry one.
    """

    __slots__ = ("records", "dropped", "_limit")

    def __init__(self, limit: int = DEFAULT_SEGMENT_LIMIT) -> None:
        self.records: list[tuple] = []
        self.dropped = 0
        self._limit = limit

    def record(self, time: float, kind: str, src: Any, dst: Any, message: Any) -> None:
        """Trace-sink entry point (same signature as ``EventTrace.record``)."""
        if getattr(message, "message_id", None) is None:
            return
        if len(self.records) >= self._limit:
            self.dropped += 1
            return
        depth = getattr(message, "hops", None)
        if depth is None:
            depth = getattr(message, "round", None)
        self.records.append(
            (time, kind, type(message).__name__, str(src), str(dst), str(message.message_id), depth)
        )

    def export(self) -> dict:
        """JSON-safe form of this segment (tuples become lists downstream)."""
        return {"records": [list(r) for r in self.records], "dropped": self.dropped}


class TraceCollector:
    """Hands out trace segments, one per scenario construction/thaw.

    Empty segments (stabilization builds, frozen bases) are dropped at
    export so the collected trace is identical whether intermediate bases
    were rebuilt or served from the snapshot cache.
    """

    def __init__(self, segment_limit: int = DEFAULT_SEGMENT_LIMIT) -> None:
        self._segments: list[TraceSegment] = []
        self._segment_limit = segment_limit

    def new_segment(self) -> TraceSegment:
        segment = TraceSegment(self._segment_limit)
        self._segments.append(segment)
        return segment

    def export(self) -> list[dict]:
        """JSON-safe list of the non-empty segments, in creation order."""
        return [s.export() for s in self._segments if s.records]


@dataclass(frozen=True, slots=True)
class HopEdge:
    """One edge of a reconstructed broadcast tree."""

    parent: str
    child: str
    depth: int
    send_time: Optional[float]
    deliver_time: float

    @property
    def latency(self) -> Optional[float]:
        if self.send_time is None:
            return None
        return self.deliver_time - self.send_time


class MessageView:
    """The reconstructed dissemination record of one message in one segment."""

    def __init__(self, segment: int, mid: str, records: Sequence[tuple]) -> None:
        self.segment = segment
        self.mid = mid
        self.origin = mid.rsplit("#", 1)[0]
        self.counts: dict[str, int] = {}
        self.edges: list[HopEdge] = []
        self.redundant = 0
        self.acks = 0
        self.control = 0
        self.drops = 0
        self.first_time: Optional[float] = None
        self.last_delivery: Optional[float] = None
        self._build(records)

    def _build(self, records: Sequence[tuple]) -> None:
        pending: dict[tuple[str, str], list[float]] = {}
        delivered: set[str] = set()
        depth_of: dict[str, int] = {self.origin: 0}
        for time, kind, type_name, src, dst, _mid, depth in records:
            if self.first_time is None:
                self.first_time = time
            self.counts[kind] = self.counts.get(kind, 0) + 1
            payload = type_name in PAYLOAD_TYPES
            if kind == "send" and payload:
                pending.setdefault((src, dst), []).append(time)
            elif kind == "deliver":
                if payload:
                    sends = pending.get((src, dst))
                    send_time = sends.pop(0) if sends else None
                    if dst in delivered:
                        self.redundant += 1
                        continue
                    delivered.add(dst)
                    if depth is None:
                        depth = depth_of.get(src, 0) + 1
                    depth_of[dst] = depth
                    self.edges.append(HopEdge(src, dst, depth, send_time, time))
                    self.last_delivery = time
                elif type_name in ACK_TYPES:
                    self.acks += 1
                else:
                    self.control += 1
            elif kind.startswith("drop-"):
                self.drops += 1

    @property
    def key(self) -> str:
        return f"{self.segment}/{self.mid}"

    @property
    def deliveries(self) -> int:
        return len(self.edges)

    @property
    def depth(self) -> int:
        return max((e.depth for e in self.edges), default=0)

    @property
    def time_to_full_delivery(self) -> Optional[float]:
        if self.last_delivery is None or self.first_time is None:
            return None
        return self.last_delivery - self.first_time

    def fanout(self) -> dict[str, int]:
        """Children count per internal node of the broadcast tree."""
        out: dict[str, int] = {}
        for edge in self.edges:
            out[edge.parent] = out.get(edge.parent, 0) + 1
        return out

    @property
    def max_fanout(self) -> int:
        return max(self.fanout().values(), default=0)

    @property
    def mean_fanout(self) -> float:
        fanout = self.fanout()
        if not fanout:
            return 0.0
        return sum(fanout.values()) / len(fanout)

    def hop_latencies(self) -> list[float]:
        return [e.latency for e in self.edges if e.latency is not None]

    def summary(self) -> dict:
        """JSON-safe per-message summary (deterministic key order)."""
        latencies = self.hop_latencies()
        return {
            "message": self.key,
            "origin": self.origin,
            "deliveries": self.deliveries,
            "depth": self.depth,
            "max_fanout": self.max_fanout,
            "mean_fanout": self.mean_fanout,
            "redundant": self.redundant,
            "acks": self.acks,
            "control": self.control,
            "drops": self.drops,
            "time_to_full_delivery": self.time_to_full_delivery,
            "hop_latency_min": min(latencies) if latencies else None,
            "hop_latency_max": max(latencies) if latencies else None,
            "hop_latency_mean": (sum(latencies) / len(latencies)) if latencies else None,
        }

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON for this message's broadcast tree.

        Each hop is a complete ("X") event on the receiving node's track,
        spanning send → deliver; redundant deliveries show as instant
        events.  Times are microseconds of simulated (or wall) time.
        """
        nodes = sorted({self.origin} | {e.child for e in self.edges} | {e.parent for e in self.edges})
        tid_of = {node: i for i, node in enumerate(nodes)}
        events: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.segment,
                "tid": tid,
                "args": {"name": node},
            }
            for node, tid in tid_of.items()
        ]
        for edge in self.edges:
            start = edge.send_time if edge.send_time is not None else edge.deliver_time
            events.append(
                {
                    "name": f"hop depth={edge.depth}",
                    "cat": "dissemination",
                    "ph": "X",
                    "pid": self.segment,
                    "tid": tid_of[edge.child],
                    "ts": start * 1e6,
                    "dur": (edge.deliver_time - start) * 1e6,
                    "args": {
                        "message": self.mid,
                        "parent": edge.parent,
                        "child": edge.child,
                        "depth": edge.depth,
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"message": self.key, "summary": self.summary()},
        }


class DisseminationTrace:
    """Query surface over collected trace segments.

    Accepts the JSON-safe segment dicts produced by
    :meth:`TraceCollector.export` (which is also the shape stored in
    ``TRACE_*.json`` artifacts), so post-hoc analysis of a written
    artifact and in-process analysis share one code path.
    """

    def __init__(self, segments: Iterable[dict]) -> None:
        self._segments = [
            {"records": [tuple(r) for r in seg.get("records", ())], "dropped": seg.get("dropped", 0)}
            for seg in segments
        ]

    @classmethod
    def from_artifact(cls, artifact: dict, replicate: int = 0) -> "DisseminationTrace":
        """Build from a ``repro-trace/1`` artifact, selecting one replicate."""
        for entry in artifact.get("replicates", ()):
            if entry.get("replicate") == replicate:
                return cls(entry.get("segments", ()))
        raise KeyError(f"replicate {replicate} not present in trace artifact")

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def record_count(self) -> int:
        return sum(len(s["records"]) for s in self._segments)

    @property
    def dropped_records(self) -> int:
        return sum(s["dropped"] for s in self._segments)

    def message_keys(self) -> list[str]:
        """``segment/message-id`` keys in order of first appearance."""
        keys: list[str] = []
        for index, segment in enumerate(self._segments):
            seen: set[str] = set()
            for record in segment["records"]:
                mid = record[5]
                if mid not in seen:
                    seen.add(mid)
                    keys.append(f"{index}/{mid}")
        return keys

    def message(self, key: str) -> MessageView:
        """Resolve ``key`` (``segment/mid`` or a bare unique ``mid``).

        Raises :class:`KeyError` for unknown ids and bare ids that occur
        in more than one segment.
        """
        segment_index: Optional[int] = None
        mid = key
        head, sep, tail = key.partition("/")
        if sep and head.isdigit():
            segment_index, mid = int(head), tail
        if segment_index is None:
            matches = [
                i
                for i, seg in enumerate(self._segments)
                if any(r[5] == mid for r in seg["records"])
            ]
            if not matches:
                raise KeyError(f"unknown message id: {key!r}")
            if len(matches) > 1:
                raise KeyError(
                    f"message id {key!r} occurs in segments {matches}; "
                    f"qualify it as '<segment>/{mid}'"
                )
            segment_index = matches[0]
        if not 0 <= segment_index < len(self._segments):
            raise KeyError(f"unknown trace segment in message key: {key!r}")
        records = [r for r in self._segments[segment_index]["records"] if r[5] == mid]
        if not records:
            raise KeyError(f"unknown message id: {key!r}")
        return MessageView(segment_index, mid, records)

    def messages(self) -> list[MessageView]:
        return [self.message(key) for key in self.message_keys()]

    def kind_counts(self) -> dict[str, int]:
        """Total records per ``kind/type`` across all segments (deterministic)."""
        counts: dict[str, int] = {}
        for segment in self._segments:
            for record in segment["records"]:
                key = f"{record[1]}/{record[2]}"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def summary_rows(self) -> list[list]:
        """One row per message for the CLI summary table."""
        rows = []
        for view in self.messages():
            summary = view.summary()
            rows.append(
                [
                    summary["message"],
                    summary["deliveries"],
                    summary["depth"],
                    summary["max_fanout"],
                    summary["redundant"],
                    summary["acks"],
                    summary["drops"],
                    summary["time_to_full_delivery"],
                ]
            )
        return rows
