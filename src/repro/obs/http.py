"""Dependency-free Prometheus exposition endpoint (asyncio).

A minimal HTTP/1.0-ish server that answers ``GET /metrics`` with the
registry's text exposition.  It exists so the live service layer can be
scraped without pulling in an HTTP framework; it is not a general web
server and deliberately supports nothing else.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from .metrics import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve ``registry.render_prometheus()`` over a local TCP socket."""

    def __init__(
        self, registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("metrics server is not running")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> "MetricsServer":
        self._server = await asyncio.start_server(self._handle, self._host, self._port)
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers until the blank line; we never need their values.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if parts and parts[0] != "GET":
                await self._respond(writer, 405, "method not allowed\n", "text/plain")
            elif path in ("/metrics", "/"):
                await self._respond(writer, 200, self._registry.render_prometheus(), CONTENT_TYPE)
            else:
                await self._respond(writer, 404, "not found\n", "text/plain")
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, body: str, content_type: str
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(status, "OK")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


async def scrape(host: str, port: int, path: str = "/metrics") -> str:
    """Fetch one exposition document from a :class:`MetricsServer`."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1"))
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    text = raw.decode("utf-8", "replace")
    head, _, body = text.partition("\r\n\r\n")
    status = head.split(" ", 2)[1] if " " in head else "?"
    if status != "200":
        raise RuntimeError(f"metrics scrape failed: HTTP {status}")
    return body
