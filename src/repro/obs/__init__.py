"""Observability plane shared by the simulator and the live runtime.

Two halves, both strictly pay-for-what-you-use:

* **Causal dissemination tracing** (:mod:`repro.obs.trace`,
  :mod:`repro.obs.context`) — per-message trace records (message id, hop
  depth, parent node) captured at the network seam, from which
  :class:`~repro.obs.trace.DisseminationTrace` reconstructs the broadcast
  tree of any message: depth, fan-out, per-hop latency, time-to-full
  delivery and the redundancy/ack overlay.  Tracing off means the hot
  path pays one ``if`` check and zero RNG draws; the pinned ``BENCH_*``
  artifacts stay byte-identical either way.
* **A unified metrics registry** (:mod:`repro.obs.metrics`,
  :mod:`repro.obs.collectors`, :mod:`repro.obs.http`) — typed
  ``Counter``/``Gauge``/``Histogram`` instruments with a deterministic
  snapshot surface for simulation artifacts and a dependency-free
  Prometheus text exposition endpoint for the live service layer.
"""

from .context import activate_collector, current_collector, deactivate_collector
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import DisseminationTrace, TraceCollector, TraceSegment

__all__ = [
    "Counter",
    "DisseminationTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceCollector",
    "TraceSegment",
    "activate_collector",
    "current_collector",
    "deactivate_collector",
]
