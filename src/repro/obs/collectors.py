"""Bind existing stat sources to a :class:`MetricsRegistry`.

Each ``bind_*`` helper registers a collect-on-demand callback that mirrors
a source's plain-int counters into typed instruments at snapshot/scrape
time.  The sources keep their hot-path representation untouched — the
registry costs nothing until someone asks for a snapshot.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .metrics import MetricsRegistry


def bind_network(registry: MetricsRegistry, network: Any, **labels: str) -> None:
    """Mirror a simulation ``Network``'s ``NetworkStats`` counters."""
    totals = registry.counter("repro_net_events_total", "Simulated network events by outcome")
    by_type = registry.counter("repro_net_messages_total", "Delivered messages by type")

    def collect() -> None:
        snapshot = network.stats.snapshot()
        for outcome, value in snapshot.items():
            if outcome == "messages_by_type":
                for type_name, count in value.items():
                    by_type.set_total(count, type=type_name, **labels)
            else:
                totals.set_total(value, outcome=outcome, **labels)

    registry.register_collector(collect)


def bind_kernel(registry: MetricsRegistry) -> None:
    """Mirror the process-wide simulation kernel event counter."""
    from ..sim.engine import events_fired_total

    fired = registry.counter(
        "repro_kernel_events_fired_total", "Events fired by the simulation kernel"
    )
    registry.register_collector(lambda: fired.set_total(events_fired_total()))


def bind_shard_sync(registry: MetricsRegistry, engine: Any, **labels: str) -> None:
    """Mirror a ``ShardedEngine``'s :class:`ShardSyncStats`."""
    sync = registry.counter(
        "repro_shard_sync_total", "Sharded-kernel synchronisation events by kind"
    )

    def collect() -> None:
        for kind, value in engine.sync.snapshot().items():
            sync.set_total(value, kind=kind, **labels)

    registry.register_collector(collect)


def bind_latency(
    registry: MetricsRegistry,
    name: str,
    supplier: Callable[[], Optional[Any]],
    **labels: str,
) -> None:
    """Expose a ``LatencyHistogram`` (via its ``summary()``) as gauges.

    ``supplier`` is called at scrape time so a histogram that is rebuilt
    per phase keeps working; returning ``None`` skips the refresh.
    """
    quantiles = registry.gauge(name, "Latency quantiles in seconds")
    count = registry.gauge(f"{name}_count", "Samples behind the latency quantiles")

    def collect() -> None:
        histogram = supplier()
        if histogram is None:
            return
        summary = histogram.summary()
        count.set(summary["count"], **labels)
        for quantile, key in (("0.5", "p50"), ("0.99", "p99"), ("0.999", "p999")):
            quantiles.set(summary[key], quantile=quantile, **labels)
        quantiles.set(summary["mean"], quantile="mean", **labels)
        quantiles.set(summary["max"], quantile="max", **labels)

    registry.register_collector(collect)


_TRANSPORT_COUNTERS = (
    "frames_sent",
    "frames_received",
    "frames_stale",
    "stale_handshakes",
    "frames_overflow",
    "frames_rejected",
    "frames_faulted",
)


def bind_transport(registry: MetricsRegistry, transport: Any, **labels: str) -> None:
    """Mirror an ``AsyncioTransport``'s frame counters and epoch audits."""
    frames = registry.counter(
        "repro_transport_frames_total", "Transport frames by outcome (staleness included)"
    )
    epoch = registry.gauge("repro_transport_epoch", "Current transport incarnation epoch")

    def collect() -> None:
        for counter_name in _TRANSPORT_COUNTERS:
            frames.set_total(
                getattr(transport, counter_name), outcome=counter_name, **labels
            )
        epoch.set(transport.epoch, **labels)

    registry.register_collector(collect)


def bind_pubsub_cluster(registry: MetricsRegistry, service: Any) -> None:
    """Mirror every facade of a ``PubSubCluster``: service counters,
    breaker state, token-bucket denials and transport epoch/staleness.

    The facade list is read at collect time, so facades swapped in by a
    node restart are picked up without re-binding.
    """
    published = registry.counter("repro_service_published_total", "Messages published")
    delivered = registry.counter("repro_service_delivered_total", "Messages delivered to subscribers")
    dropped = registry.counter("repro_service_dropped_total", "Subscriber-queue overflow sheds")
    ignored = registry.counter("repro_service_ignored_total", "Deliveries without a topic envelope")
    topic_limited = registry.counter(
        "repro_service_topic_rate_limited_total", "Publishes refused by per-topic budgets"
    )
    client_limited = registry.counter(
        "repro_service_client_rate_limited_total", "Publishes refused by per-client buckets"
    )
    trips = registry.counter("repro_breaker_trips_total", "Circuit-breaker trips")
    rejected = registry.counter("repro_breaker_rejected_total", "Sends rejected by open breakers")
    open_breakers = registry.gauge("repro_breaker_open", "Peers currently behind an open breaker")
    frames = registry.counter(
        "repro_transport_frames_total", "Transport frames by outcome (staleness included)"
    )
    epoch = registry.gauge("repro_transport_epoch", "Current transport incarnation epoch")

    def collect() -> None:
        for facade in service.facades:
            node = str(facade.node.node_id)
            published.set_total(facade.messages_published, node=node)
            delivered.set_total(facade.messages_delivered, node=node)
            dropped.set_total(facade.messages_dropped, node=node)
            ignored.set_total(facade.messages_ignored, node=node)
            topic_limited.set_total(facade.topic_rate_limited, node=node)
            client_limited.set_total(
                sum(client.rate_limited for client in facade.clients.values()), node=node
            )
            trips.set_total(facade.guard.trips(), node=node)
            rejected.set_total(facade.guard.rejected, node=node)
            open_breakers.set(len(facade.guard.open_peers()), node=node)
            transport = facade.node.transport
            for counter_name in _TRANSPORT_COUNTERS:
                frames.set_total(
                    getattr(transport, counter_name), outcome=counter_name, node=node
                )
            epoch.set(transport.epoch, node=node)

    registry.register_collector(collect)
