"""Deterministic flood over the HyParView active view (Section 4.1).

"When a node receives a message for the first time, it broadcasts the
message to all nodes of its active view (except, obviously, to the node
that has sent the message)."  Every copy travels over the reliable
transport, so each broadcast implicitly tests every overlay link — the
fast-failure-detection property the paper's recovery results rest on.

The optional ``resend_on_repair`` flag is an *extension* (off by default,
matching the paper): when a copy fails, the flood retries towards the
repaired active view after the membership layer has had a moment to promote
a replacement, trading extra traffic for reliability during the repair
window.  The ablation benchmark quantifies the trade.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from ..common.errors import ConfigurationError
from ..common.ids import MessageId, NodeId
from ..common.interfaces import Host
from ..common.messages import Message
from ..protocols.base import PeerSamplingService
from .base import BroadcastLayer, DeliverCallback
from .messages import GossipData
from .tracker import BroadcastTracker


class FloodBroadcast(BroadcastLayer):
    """Flooding broadcast for symmetric-active-view membership."""

    name = "flood"

    def __init__(
        self,
        host: Host,
        membership: PeerSamplingService,
        tracker: Optional[BroadcastTracker] = None,
        *,
        on_deliver: Optional[DeliverCallback] = None,
        seen_capacity: Optional[int] = None,
        resend_on_repair: bool = False,
        resend_delay: float = 0.1,
        resend_memory: int = 128,
    ) -> None:
        if resend_delay <= 0:
            raise ConfigurationError(f"resend delay must be positive: {resend_delay}")
        if resend_memory < 1:
            raise ConfigurationError(f"resend memory must be >= 1: {resend_memory}")
        super().__init__(
            host, membership, tracker, on_deliver=on_deliver, seen_capacity=seen_capacity
        )
        self.resend_on_repair = resend_on_repair
        self._resend_delay = resend_delay
        self._resend_memory = resend_memory
        # message id -> (payload, hops, peers already sent to); only
        # maintained when the resend extension is enabled.
        self._sent: OrderedDict[MessageId, tuple[Any, int, set[NodeId]]] = OrderedDict()

    def _forward(
        self,
        message_id: MessageId,
        payload: Any,
        hops: int,
        exclude: tuple[NodeId, ...],
    ) -> None:
        # fanout is irrelevant: HyParView returns its whole active view.
        targets = self._membership.gossip_targets(0, exclude)
        if self.resend_on_repair:
            self._remember_sent(message_id, payload, hops, targets)
        if not targets:
            return
        message = GossipData(message_id, payload, hops, self.address)
        for target in targets:
            self._host.send(target, message, on_failure=self._on_send_failure)
        self._record_transmissions(message_id, len(targets))

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_send_failure(self, peer: NodeId, message: Message) -> None:
        """A flood copy hit a dead peer: this *is* the failure detector."""
        self._membership.report_failure(peer)
        if self.resend_on_repair and isinstance(message, GossipData):
            self._host.schedule(
                self._resend_delay, lambda: self._resend(message.message_id)
            )

    def _remember_sent(
        self, message_id: MessageId, payload: Any, hops: int, targets: list[NodeId]
    ) -> None:
        entry = self._sent.get(message_id)
        if entry is None:
            self._sent[message_id] = (payload, hops, set(targets))
            if len(self._sent) > self._resend_memory:
                self._sent.popitem(last=False)
        else:
            entry[2].update(targets)

    def _resend(self, message_id: MessageId) -> None:
        """Push the payload towards newly promoted neighbours (extension)."""
        entry = self._sent.get(message_id)
        if entry is None:
            return
        payload, hops, already = entry
        fresh = [peer for peer in self._membership.gossip_targets(0) if peer not in already]
        if not fresh:
            return
        already.update(fresh)
        message = GossipData(message_id, payload, hops, self.address)
        for target in fresh:
            self._host.send(target, message, on_failure=self._on_send_failure)
        self._record_transmissions(message_id, len(fresh))
