"""Broadcast delivery tracking.

Every gossip layer reports broadcasts, deliveries, duplicates and
transmissions to a shared :class:`BroadcastTracker`.  The tracker is the
measurement substrate for the paper's evaluation:

* **reliability** (Section 2.5) — "the percentage of active nodes that
  deliver a gossip broadcast";
* **hops to delivery** (Table 1) — the per-message maximum hop count;
* **redundancy** (Section 3.1) — duplicate receptions.

Records are heavyweight while live (a dict of every delivery); experiments
call :meth:`BroadcastTracker.finalize` after measuring each message to
collapse the record into a compact :class:`BroadcastSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet

from ..common.errors import ProtocolError
from ..common.ids import MessageId, NodeId


@dataclass(slots=True)
class DeliveryRecord:
    """Live bookkeeping for one broadcast."""

    message_id: MessageId
    origin: NodeId
    sent_at: float
    #: node -> (delivery time, hop count)
    deliveries: dict[NodeId, tuple[float, int]]
    redundant: int = 0
    transmissions: int = 0

    def delivered_to(self, node: NodeId) -> bool:
        return node in self.deliveries

    @property
    def delivery_count(self) -> int:
        return len(self.deliveries)

    @property
    def max_hops(self) -> int:
        if not self.deliveries:
            return 0
        return max(hops for _time, hops in self.deliveries.values())

    def reliability(self, population: AbstractSet[NodeId]) -> float:
        """Fraction of ``population`` (the correct nodes) that delivered."""
        if not population:
            return 0.0
        delivered = sum(1 for node in self.deliveries if node in population)
        return delivered / len(population)


@dataclass(frozen=True, slots=True)
class BroadcastSummary:
    """Compact per-broadcast result kept after finalisation."""

    message_id: MessageId
    origin: NodeId
    sent_at: float
    population_size: int
    delivered: int
    reliability: float
    max_hops: int
    last_delivery_at: float
    redundant: int
    transmissions: int


class BroadcastTracker:
    """Shared sink for gossip-layer measurement events."""

    def __init__(self) -> None:
        self._records: dict[MessageId, DeliveryRecord] = {}
        self._summaries: dict[MessageId, BroadcastSummary] = {}

    # ------------------------------------------------------------------
    # Event sinks (called by gossip layers)
    # ------------------------------------------------------------------
    def on_broadcast(self, message_id: MessageId, origin: NodeId, now: float) -> None:
        if message_id in self._records or message_id in self._summaries:
            raise ProtocolError(f"duplicate broadcast id: {message_id}")
        self._records[message_id] = DeliveryRecord(message_id, origin, now, {})

    def on_deliver(self, message_id: MessageId, node: NodeId, now: float, hops: int) -> None:
        record = self._records.get(message_id)
        if record is None:
            return  # late delivery of an already finalised message
        if node in record.deliveries:
            record.redundant += 1
            return
        record.deliveries[node] = (now, hops)

    def on_redundant(self, message_id: MessageId, node: NodeId) -> None:
        record = self._records.get(message_id)
        if record is not None:
            record.redundant += 1

    def on_transmit(self, message_id: MessageId, copies: int = 1) -> None:
        record = self._records.get(message_id)
        if record is not None:
            record.transmissions += copies

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def record(self, message_id: MessageId) -> DeliveryRecord:
        try:
            return self._records[message_id]
        except KeyError:
            raise ProtocolError(f"unknown or finalised message: {message_id}") from None

    def live_records(self) -> tuple[DeliveryRecord, ...]:
        return tuple(self._records.values())

    def summary(self, message_id: MessageId) -> BroadcastSummary:
        try:
            return self._summaries[message_id]
        except KeyError:
            raise ProtocolError(f"message not finalised: {message_id}") from None

    def summaries(self) -> tuple[BroadcastSummary, ...]:
        return tuple(self._summaries.values())

    def finalize(
        self,
        message_id: MessageId,
        population: AbstractSet[NodeId],
    ) -> BroadcastSummary:
        """Collapse the live record into a :class:`BroadcastSummary`.

        ``population`` is the set of correct nodes at send time; reliability
        is measured against it (Section 2.5).
        """
        record = self._records.pop(message_id, None)
        if record is None:
            raise ProtocolError(f"unknown or already finalised message: {message_id}")
        delivered_in_population = sum(1 for node in record.deliveries if node in population)
        last_delivery = max(
            (time for time, _hops in record.deliveries.values()), default=record.sent_at
        )
        summary = BroadcastSummary(
            message_id=record.message_id,
            origin=record.origin,
            sent_at=record.sent_at,
            population_size=len(population),
            delivered=delivered_in_population,
            reliability=(delivered_in_population / len(population)) if population else 0.0,
            max_hops=record.max_hops,
            last_delivery_at=last_delivery,
            redundant=record.redundant,
            transmissions=record.transmissions,
        )
        self._summaries[message_id] = summary
        return summary

    def drop_summaries(self) -> None:
        """Forget finalised summaries (long sweeps reclaim memory)."""
        self._summaries.clear()

    def __len__(self) -> int:
        return len(self._records) + len(self._summaries)
