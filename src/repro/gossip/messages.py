"""Messages of the broadcast layers (plain gossip, flood, Plumtree)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..common.ids import MessageId, NodeId
from ..common.messages import Message, register_message


@register_message("gossip.data")
@dataclass(frozen=True, slots=True)
class GossipData(Message):
    """A broadcast payload travelling through the overlay.

    ``hops`` counts network hops from the origin (0 at the origin itself),
    feeding the "hops to delivery" column of Table 1.
    """

    message_id: MessageId
    payload: Any
    hops: int
    sender: NodeId


@register_message("gossip.ack")
@dataclass(frozen=True, slots=True)
class GossipAck(Message):
    """Per-copy acknowledgment of the reliable (ack+retransmit) layer.

    Sent for *every* received copy — duplicates included — because the
    copy being acknowledged may itself be a retransmission whose earlier
    ack was lost.
    """

    message_id: MessageId
    sender: NodeId


@register_message("brb.send")
@dataclass(frozen=True, slots=True)
class BRBSend(Message):
    """Phase 1 of Bracha broadcast: the origin's payload announcement.

    Sent point-to-point to the whole roster (both quorum modes), so a
    mutated relay can never split honest echo votes — payload corruption
    is strictly a Byzantine-*sender* behaviour, matching Bracha's model.
    """

    message_id: MessageId
    payload: Any
    sender: NodeId


@register_message("brb.echo")
@dataclass(frozen=True, slots=True)
class BRBEcho(Message):
    """Phase 2: a witness vote for one payload digest.

    Carries the digest rather than the payload, so the quadratic echo
    phase stays cheap and an equivocating origin's two payloads produce
    two disjoint vote sets that cannot both reach a quorum.
    """

    message_id: MessageId
    digest: str
    sender: NodeId


@register_message("brb.ready")
@dataclass(frozen=True, slots=True)
class BRBReady(Message):
    """Phase 3: a delivery commitment for one payload digest."""

    message_id: MessageId
    digest: str
    sender: NodeId


@register_message("brb.ack")
@dataclass(frozen=True, slots=True)
class BRBAck(Message):
    """Per-copy ack of one BRB phase message (``phase`` in send/echo/ready).

    Sent for every received copy — duplicates included — exactly like
    :class:`GossipAck`: the acked copy may be a retransmission whose
    earlier ack was lost.
    """

    message_id: MessageId
    phase: str
    sender: NodeId


@register_message("plumtree.gossip")
@dataclass(frozen=True, slots=True)
class PlumtreeGossip(Message):
    """Eager push: full payload along tree edges."""

    message_id: MessageId
    payload: Any
    round: int
    sender: NodeId


@register_message("plumtree.ihave")
@dataclass(frozen=True, slots=True)
class PlumtreeIHave(Message):
    """Lazy push: advertisement of a message id along non-tree edges."""

    message_id: MessageId
    round: int
    sender: NodeId


@register_message("plumtree.graft")
@dataclass(frozen=True, slots=True)
class PlumtreeGraft(Message):
    """Tree repair: request the payload and re-add the edge to the tree."""

    message_id: MessageId
    round: int
    sender: NodeId


@register_message("plumtree.prune")
@dataclass(frozen=True, slots=True)
class PlumtreePrune(Message):
    """Tree optimisation: remove the sender-receiver edge from the tree."""

    sender: NodeId
