"""Broadcast layers: eager gossip, HyParView flood, Plumtree, tracking."""

from .base import BroadcastLayer
from .eager import EagerGossip
from .flood import FloodBroadcast
from .messages import GossipData, PlumtreeGossip, PlumtreeGraft, PlumtreeIHave, PlumtreePrune
from .plumtree import Plumtree, PlumtreeConfig
from .tracker import BroadcastSummary, BroadcastTracker, DeliveryRecord

__all__ = [
    "BroadcastLayer",
    "BroadcastSummary",
    "BroadcastTracker",
    "DeliveryRecord",
    "EagerGossip",
    "FloodBroadcast",
    "GossipData",
    "Plumtree",
    "PlumtreeConfig",
    "PlumtreeGossip",
    "PlumtreeGraft",
    "PlumtreeIHave",
    "PlumtreePrune",
]
