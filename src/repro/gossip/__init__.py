"""Broadcast layers: eager gossip, HyParView flood, ack+retransmit
reliable gossip, Plumtree, tracking."""

from .base import BroadcastLayer
from .eager import EagerGossip
from .flood import FloodBroadcast
from .messages import (
    GossipAck,
    GossipData,
    PlumtreeGossip,
    PlumtreeGraft,
    PlumtreeIHave,
    PlumtreePrune,
)
from .plumtree import Plumtree, PlumtreeConfig
from .reliable import ReliableGossip
from .tracker import BroadcastSummary, BroadcastTracker, DeliveryRecord

__all__ = [
    "BroadcastLayer",
    "BroadcastSummary",
    "BroadcastTracker",
    "DeliveryRecord",
    "EagerGossip",
    "FloodBroadcast",
    "GossipAck",
    "GossipData",
    "Plumtree",
    "PlumtreeConfig",
    "PlumtreeGossip",
    "PlumtreeGraft",
    "PlumtreeIHave",
    "PlumtreePrune",
    "ReliableGossip",
]
