"""Plumtree — epidemic broadcast trees over HyParView (extension).

Plumtree (Leitão, Pereira & Rodrigues, SRDS 2007) is the dissemination
protocol the HyParView membership layer was designed to carry, and the
natural follow-on to this paper: it keeps the flood's reliability while
sending each payload along a spanning *tree* embedded in the active view,
advertising only message ids (IHAVE) on the remaining links.

* **eager push** — payloads travel tree edges;
* **lazy push** — ids travel non-tree edges;
* a duplicate payload PRUNEs the edge it arrived on;
* a missing payload (id seen, payload absent after a timeout) GRAFTs the
  edge it was advertised on, repairing the tree around failures.

The layer consumes HyParView's neighbour up/down events, which is exactly
the API surface the paper's Section 4.5 view-manipulation primitives feed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..common.errors import ConfigurationError
from ..common.ids import MessageId, NodeId, SequenceGenerator
from ..common.interfaces import Host, TimerHandle
from ..common.messages import Message
from ..core.protocol import HyParView
from .messages import PlumtreeGossip, PlumtreeGraft, PlumtreeIHave, PlumtreePrune
from .tracker import BroadcastTracker

DeliverCallback = Callable[[MessageId, Any], None]


@dataclass(frozen=True, slots=True)
class PlumtreeConfig:
    """Plumtree timers and caches.

    Attributes:
        missing_timeout: Wait after the first IHAVE for the eager copy
            before grafting (should exceed one network round trip).
        graft_timeout: Wait after sending a GRAFT before trying the next
            announcer.
        payload_cache: Payloads retained for answering GRAFTs (``None``
            keeps everything — fine for bounded experiments).
    """

    missing_timeout: float = 0.1
    graft_timeout: float = 0.05
    payload_cache: Optional[int] = None

    def __post_init__(self) -> None:
        if self.missing_timeout <= 0 or self.graft_timeout <= 0:
            raise ConfigurationError("plumtree timeouts must be positive")
        if self.payload_cache is not None and self.payload_cache < 1:
            raise ConfigurationError(f"payload cache must be >= 1: {self.payload_cache}")


class Plumtree:
    """One node's Plumtree instance, bound to a HyParView membership."""

    name = "plumtree"

    def __init__(
        self,
        host: Host,
        membership: HyParView,
        tracker: Optional[BroadcastTracker] = None,
        *,
        config: Optional[PlumtreeConfig] = None,
        on_deliver: Optional[DeliverCallback] = None,
    ) -> None:
        self._host = host
        self._membership = membership
        self._tracker = tracker
        self._config = config if config is not None else PlumtreeConfig()
        self._on_deliver = on_deliver
        # Sequence ranges are incarnation-scoped: a restarted process
        # must never collide with ids its predecessor minted.
        self._sequence = SequenceGenerator(host.address, start=host.incarnation << 32)
        self.eager_peers: set[NodeId] = set(membership.out_neighbors())
        self.lazy_peers: set[NodeId] = set()
        #: ids of every message ever received (deduplication; ids are tiny)
        self._seen: set[MessageId] = set()
        #: message id -> payload for answering GRAFTs (evictable cache)
        self._received: dict[MessageId, Any] = {}
        self._received_order: list[MessageId] = []
        #: message id -> announcers (peer, round) for missing messages
        self._announcements: dict[MessageId, list[tuple[NodeId, int]]] = {}
        self._timers: dict[MessageId, TimerHandle] = {}
        self.delivered_count = 0
        self.duplicate_count = 0
        self.grafts_sent = 0
        self.prunes_sent = 0
        membership.add_listener(self)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def address(self) -> NodeId:
        return self._host.address

    @property
    def config(self) -> PlumtreeConfig:
        return self._config

    def handlers(self) -> dict[type, Callable[[Message], None]]:
        return {
            PlumtreeGossip: self.handle_gossip,
            PlumtreeIHave: self.handle_ihave,
            PlumtreeGraft: self.handle_graft,
            PlumtreePrune: self.handle_prune,
        }

    def broadcast(self, payload: Any = None) -> MessageId:
        message_id = self._sequence.next_id()
        if self._tracker is not None:
            self._tracker.on_broadcast(message_id, self.address, self._host.now())
        self._store(message_id, payload)
        self._deliver(message_id, payload, hops=0)
        self._eager_push(message_id, payload, round_=1, exclude=None)
        self._lazy_push(message_id, round_=1, exclude=None)
        return message_id

    def has_delivered(self, message_id: MessageId) -> bool:
        return message_id in self._seen

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def handle_gossip(self, message: PlumtreeGossip) -> None:
        sender = message.sender
        if message.message_id in self._seen:
            # Duplicate payload: this edge is redundant — prune it.
            self.duplicate_count += 1
            if self._tracker is not None:
                self._tracker.on_redundant(message.message_id, self.address)
            self._demote_to_lazy(sender)
            self.prunes_sent += 1
            self._host.send(sender, PlumtreePrune(self.address))
            return
        self._store(message.message_id, message.payload)
        self._cancel_missing_timer(message.message_id)
        self._announcements.pop(message.message_id, None)
        self._promote_to_eager(sender)
        self._deliver(message.message_id, message.payload, hops=message.round)
        next_round = message.round + 1
        self._eager_push(message.message_id, message.payload, next_round, exclude=sender)
        self._lazy_push(message.message_id, next_round, exclude=sender)

    def handle_ihave(self, message: PlumtreeIHave) -> None:
        if message.message_id in self._seen:
            return
        self._announcements.setdefault(message.message_id, []).append(
            (message.sender, message.round)
        )
        if message.message_id not in self._timers:
            self._start_missing_timer(message.message_id, self._config.missing_timeout)

    def handle_graft(self, message: PlumtreeGraft) -> None:
        self._promote_to_eager(message.sender)
        if message.message_id in self._received:
            payload = self._received[message.message_id]
            self._host.send(
                message.sender,
                PlumtreeGossip(message.message_id, payload, message.round, self.address),
                on_failure=self._on_peer_failure,
            )

    def handle_prune(self, message: PlumtreePrune) -> None:
        self._demote_to_lazy(message.sender)

    # ------------------------------------------------------------------
    # Membership listener (HyParView neighbour events)
    # ------------------------------------------------------------------
    def on_neighbor_up(self, peer: NodeId) -> None:
        """New active-view links start as tree edges (paper's rule)."""
        self.lazy_peers.discard(peer)
        self.eager_peers.add(peer)

    def on_neighbor_down(self, peer: NodeId) -> None:
        self.eager_peers.discard(peer)
        self.lazy_peers.discard(peer)
        # Forget its announcements; pending grafts fall through to the next
        # announcer when their timer fires.
        for announcers in self._announcements.values():
            announcers[:] = [(node, round_) for node, round_ in announcers if node != peer]

    # ------------------------------------------------------------------
    # Pushing
    # ------------------------------------------------------------------
    def _eager_push(
        self, message_id: MessageId, payload: Any, round_: int, exclude: Optional[NodeId]
    ) -> None:
        targets = [peer for peer in self.eager_peers if peer != exclude]
        if not targets:
            return
        message = PlumtreeGossip(message_id, payload, round_, self.address)
        for peer in targets:
            self._host.send(peer, message, on_failure=self._on_peer_failure)
        if self._tracker is not None:
            self._tracker.on_transmit(message_id, len(targets))

    def _lazy_push(self, message_id: MessageId, round_: int, exclude: Optional[NodeId]) -> None:
        message = PlumtreeIHave(message_id, round_, self.address)
        for peer in self.lazy_peers:
            if peer != exclude:
                self._host.send(peer, message, on_failure=self._on_peer_failure)

    # ------------------------------------------------------------------
    # Tree repair
    # ------------------------------------------------------------------
    def _start_missing_timer(self, message_id: MessageId, delay: float) -> None:
        self._timers[message_id] = self._host.schedule(
            delay, lambda: self._on_missing_timeout(message_id)
        )

    def _cancel_missing_timer(self, message_id: MessageId) -> None:
        timer = self._timers.pop(message_id, None)
        if timer is not None:
            timer.cancel()

    def _on_missing_timeout(self, message_id: MessageId) -> None:
        self._timers.pop(message_id, None)
        if message_id in self._seen:
            return
        announcers = self._announcements.get(message_id)
        if not announcers:
            return  # no candidates; a future IHAVE restarts the repair
        peer, round_ = announcers.pop(0)
        self._promote_to_eager(peer)
        self.grafts_sent += 1
        self._host.send(
            peer, PlumtreeGraft(message_id, round_, self.address), on_failure=self._on_peer_failure
        )
        self._start_missing_timer(message_id, self._config.graft_timeout)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _promote_to_eager(self, peer: NodeId) -> None:
        if peer in self.lazy_peers:
            self.lazy_peers.discard(peer)
        if peer in self._membership.active:
            self.eager_peers.add(peer)

    def _demote_to_lazy(self, peer: NodeId) -> None:
        self.eager_peers.discard(peer)
        if peer in self._membership.active:
            self.lazy_peers.add(peer)

    def _store(self, message_id: MessageId, payload: Any) -> None:
        self._seen.add(message_id)
        self._received[message_id] = payload
        cache = self._config.payload_cache
        if cache is not None:
            self._received_order.append(message_id)
            while len(self._received_order) > cache:
                evicted = self._received_order.pop(0)
                self._received.pop(evicted, None)

    def _deliver(self, message_id: MessageId, payload: Any, hops: int) -> None:
        self.delivered_count += 1
        if self._tracker is not None:
            self._tracker.on_deliver(message_id, self.address, self._host.now(), hops)
        if self._on_deliver is not None:
            self._on_deliver(message_id, payload)

    def _on_peer_failure(self, peer: NodeId, _message: Message) -> None:
        self._membership.report_failure(peer)
