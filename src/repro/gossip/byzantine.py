"""Byzantine reliable broadcast: Bracha quorums over the ack discipline.

HyParView assumes crash faults and honest peers; this layer tolerates
peers that *lie*.  :class:`BRBGossip` runs the classic SEND→ECHO→READY
phase protocol (Bracha 1987) on top of :class:`~repro.gossip.reliable.
ReliableGossip`'s per-copy ack + retransmit machinery, so every phase
message travels as a datagram with its own cancellable retransmit timer —
quorum tracking multiplies the timer-wheel load the reliable layer
already generates.

Protocol, per broadcast:

* **SEND** — the origin sends ``BRBSend(payload)`` point-to-point to the
  whole roster.  Relays never forward payloads, so a Byzantine relay
  cannot corrupt dissemination; payload mutation and equivocation are
  strictly *sender* behaviours, as in Bracha's model.
* **ECHO** — on the first SEND for a message id, a node echoes the
  payload's digest to its echo group.  A node echoes **at most once per
  message id** (the first value it saw), so an equivocating origin splits
  the honest votes and no value reaches an echo quorum.
* **READY** — a node sends READY for a digest when it collects an echo
  quorum for it, or — **amplification** — when ``f + 1`` READYs vouch for
  it (at least one is honest, so the digest is safe to commit to).
* **DELIVER** — on ``2f + 1`` READYs for one digest, once the payload
  itself is known (the SEND may still be in flight; delivery waits).

Two quorum modes (:class:`BRBConfig.mode`):

* ``"bracha"`` — deterministic quorums over the full roster of size
  ``n``: with ``f = floor(fault_fraction * n)``, echo quorum
  ``ceil((n + f + 1) / 2)``, amplification ``f + 1``, delivery
  ``2f + 1``.  Safe and live for ``n > 3f``; per-broadcast cost O(n²).
* ``"sampled"`` — Scalable Byzantine Reliable Broadcast (Guerraoui et
  al.): each node draws *static* echo and ready samples of size
  ``k = ceil(3 * log2 n)`` (default) from the roster via its own seeded
  :class:`~repro.common.rng.StreamRandom`, and applies the same
  thresholds with ``n -> k``.  Per-node cost drops to O(log n) per
  broadcast at a (tunable) probability of per-node delivery failure;
  READY amplification pulls unlucky nodes over the line in practice.
  Samples are drawn lazily on first use and deterministically per node,
  so artifacts stay byte-identical across worker processes.

The layer inherits the reliable layer's counters (acks, retransmissions,
give-ups — ack silence still feeds ``membership.report_failure``) and
adds :meth:`BRBGossip.brb_stats` for the quorum machinery.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Optional

from ..common.errors import ConfigurationError, ProtocolError
from ..common.ids import MessageId, NodeId
from ..common.interfaces import Host
from ..protocols.base import PeerSamplingService
from .base import DeliverCallback
from .messages import BRBAck, BRBEcho, BRBReady, BRBSend
from .reliable import ReliableGossip
from .tracker import BroadcastTracker

#: Phase tags used in retransmit keys and :class:`BRBAck` frames.
PHASE_SEND = "send"
PHASE_ECHO = "echo"
PHASE_READY = "ready"


def payload_digest(payload: Any) -> str:
    """A short, stable digest of a broadcast payload.

    ``repr`` round-trips every payload the experiments send (ints, strs,
    tuples, dicts built in deterministic order); 16 hex chars keep the
    quadratic echo phase cheap on the wire.
    """
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class BRBConfig:
    """Tuning of the Byzantine broadcast layer.

    ``fault_fraction`` is the *assumed* adversary budget the quorum
    thresholds are sized for — Bracha mode is safe and live while the
    actual Byzantine fraction stays below it and ``n > 3f`` holds.
    ``sample_size=None`` uses SBRB's ``ceil(3 * log2 n)`` in sampled
    mode.  The ack/retransmit knobs mirror :class:`~repro.gossip.
    reliable.ReliableConfig`.
    """

    mode: str = "bracha"
    fault_fraction: float = 0.25
    sample_size: Optional[int] = None
    ack_timeout: float = 0.05
    backoff: float = 2.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.mode not in ("bracha", "sampled"):
            raise ConfigurationError(
                f"BRB mode must be 'bracha' or 'sampled': {self.mode!r}"
            )
        if not 0.0 <= self.fault_fraction < 0.5:
            raise ConfigurationError(
                f"fault fraction must be in [0, 0.5): {self.fault_fraction}"
            )
        if self.sample_size is not None and self.sample_size < 1:
            raise ConfigurationError(f"sample size must be >= 1: {self.sample_size}")


class _BRBState:
    """Per-message quorum bookkeeping."""

    __slots__ = (
        "payloads",
        "echoes",
        "readies",
        "echoed",
        "ready_for",
        "delivered",
        "origin",
    )

    def __init__(self) -> None:
        #: digest -> payload, learned from SENDs (delivery needs the bytes).
        self.payloads: dict[str, Any] = {}
        #: digest -> distinct voters (own votes included).
        self.echoes: dict[str, set[NodeId]] = {}
        self.readies: dict[str, set[NodeId]] = {}
        #: the one digest this node echoed (first value seen), or None.
        self.echoed: Optional[str] = None
        #: the one digest this node committed READY to, or None.
        self.ready_for: Optional[str] = None
        self.delivered = False
        #: True on the broadcasting node (delivery reports hops=0 there).
        self.origin = False


class BRBGossip(ReliableGossip):
    """SEND→ECHO→READY Byzantine reliable broadcast with acked phases."""

    name = "brb-gossip"

    def __init__(
        self,
        host: Host,
        membership: PeerSamplingService,
        tracker: Optional[BroadcastTracker] = None,
        *,
        config: Optional[BRBConfig] = None,
        on_deliver: Optional[DeliverCallback] = None,
        seen_capacity: Optional[int] = None,
    ) -> None:
        config = config if config is not None else BRBConfig()
        super().__init__(
            host,
            membership,
            tracker,
            fanout=0,
            ack_timeout=config.ack_timeout,
            backoff=config.backoff,
            max_retries=config.max_retries,
            on_deliver=on_deliver,
            seen_capacity=seen_capacity,
        )
        self.config = config
        #: full node roster; the harness injects it (see ``set_roster``).
        self._roster: tuple[NodeId, ...] = ()
        #: sampled mode: static per-node echo/ready samples, drawn lazily
        #: from the node's own RNG stream on first use.
        self._echo_sample: Optional[tuple[NodeId, ...]] = None
        self._ready_sample: Optional[tuple[NodeId, ...]] = None
        self._thresholds: Optional[tuple[int, int, int]] = None
        self._states: dict[MessageId, _BRBState] = {}
        self.echoes_sent = 0
        self.readies_sent = 0
        self.quorum_deliveries = 0

    # ------------------------------------------------------------------
    # Roster and quorum geometry
    # ------------------------------------------------------------------
    def set_roster(self, roster) -> None:
        """Install the full node roster (quorums are roster-relative).

        The scenario harness calls this right after stack construction —
        Bracha-style BRB needs the membership *set*, which the
        peer-sampling overlay deliberately does not provide.
        """
        self._roster = tuple(roster)
        self._echo_sample = None
        self._ready_sample = None
        self._thresholds = None

    @property
    def roster(self) -> tuple[NodeId, ...]:
        return self._roster

    def group_size(self) -> int:
        """Members of one quorum group (n in Bracha mode, k in sampled)."""
        n = len(self._roster)
        if self.config.mode == "bracha":
            return n
        k = self.config.sample_size
        if k is None:
            k = math.ceil(3 * math.log2(n)) if n > 1 else 1
        return min(k, n)

    def thresholds(self) -> tuple[int, int, int]:
        """``(echo_quorum, ready_amplify, ready_deliver)`` for the roster."""
        if self._thresholds is None:
            if not self._roster:
                raise ProtocolError("BRB roster not set (call set_roster first)")
            group = self.group_size()
            f = math.floor(group * self.config.fault_fraction)
            self._thresholds = (
                math.ceil((group + f + 1) / 2),  # echo quorum
                f + 1,                           # READY amplification
                2 * f + 1,                       # delivery quorum
            )
        return self._thresholds

    def _peers(self) -> list[NodeId]:
        return [peer for peer in self._roster if peer != self.address]

    def _echo_targets(self) -> tuple[NodeId, ...]:
        if self.config.mode == "bracha":
            return tuple(self._peers())
        if self._echo_sample is None:
            self._echo_sample = self._draw_sample()
        return self._echo_sample

    def _ready_targets(self) -> tuple[NodeId, ...]:
        if self.config.mode == "bracha":
            return tuple(self._peers())
        if self._ready_sample is None:
            self._ready_sample = self._draw_sample()
        return self._ready_sample

    def _draw_sample(self) -> tuple[NodeId, ...]:
        peers = self._peers()
        k = min(self.group_size(), len(peers))
        return tuple(self._host.rng.sample(peers, k)) if k else ()

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def handlers(self) -> dict:
        return {
            BRBSend: self.handle_send,
            BRBEcho: self.handle_echo,
            BRBReady: self.handle_ready,
            BRBAck: self.handle_brb_ack,
        }

    def broadcast(self, payload: Any = None) -> MessageId:
        """Broadcast ``payload``; the origin delivers via quorum like
        everyone else (no deliver-on-send — Bracha's totality argument
        needs the origin's delivery to certify the same ready quorum)."""
        if not self._roster:
            raise ProtocolError("BRB roster not set (call set_roster first)")
        message_id = self._sequence.next_id()
        if self._tracker is not None:
            self._tracker.on_broadcast(message_id, self.address, self._host.now())
        self._mark_seen(message_id)
        state = self._state(message_id)
        state.origin = True
        digest = payload_digest(payload)
        state.payloads[digest] = payload
        message = BRBSend(message_id, payload, self.address)
        peers = self._peers()
        for peer in peers:
            self._send_phase(peer, message, PHASE_SEND)
        self._record_transmissions(message_id, len(peers))
        # The origin is its own first SEND witness.
        self._maybe_echo(state, message_id, digest)
        return message_id

    def handle_send(self, message: BRBSend) -> None:
        self._ack(message.sender, message.message_id, PHASE_SEND)
        state = self._state(message.message_id)
        digest = payload_digest(message.payload)
        first_payload = digest not in state.payloads
        if first_payload:
            state.payloads[digest] = message.payload
        self._maybe_echo(state, message.message_id, digest)
        if first_payload:
            # A late SEND may complete a delivery the READY quorum already
            # authorised while the payload was still in flight.
            self._maybe_deliver(state, message.message_id)

    def handle_echo(self, message: BRBEcho) -> None:
        self._ack(message.sender, message.message_id, PHASE_ECHO)
        state = self._state(message.message_id)
        if not self._note_vote(state.echoes, message.digest, message.sender):
            return
        echo_quorum, _amplify, _deliver = self.thresholds()
        if (
            state.ready_for is None
            and len(state.echoes[message.digest]) >= echo_quorum
        ):
            self._send_ready(state, message.message_id, message.digest)

    def handle_ready(self, message: BRBReady) -> None:
        self._ack(message.sender, message.message_id, PHASE_READY)
        state = self._state(message.message_id)
        if not self._note_vote(state.readies, message.digest, message.sender):
            return
        _echo_quorum, amplify, _deliver = self.thresholds()
        if (
            state.ready_for is None
            and len(state.readies[message.digest]) >= amplify
        ):
            # Amplification: f+1 READYs contain one honest commitment.
            self._send_ready(state, message.message_id, message.digest)
        self._maybe_deliver(state, message.message_id)

    def handle_brb_ack(self, ack: BRBAck) -> None:
        handle = self._pending.pop((ack.message_id, ack.phase, ack.sender), None)
        if handle is not None:
            handle.cancel()
            self.acks_received += 1

    def has_delivered(self, message_id: MessageId) -> bool:
        state = self._states.get(message_id)
        return state is not None and state.delivered

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def _state(self, message_id: MessageId) -> _BRBState:
        state = self._states.get(message_id)
        if state is None:
            state = _BRBState()
            self._states[message_id] = state
        return state

    @staticmethod
    def _note_vote(votes: dict[str, set[NodeId]], digest: str, voter: NodeId) -> bool:
        voters = votes.get(digest)
        if voters is None:
            voters = set()
            votes[digest] = voters
        if voter in voters:
            return False
        voters.add(voter)
        return True

    def _maybe_echo(self, state: _BRBState, message_id: MessageId, digest: str) -> None:
        if state.echoed is not None:
            return  # echo at most once per id: the first value wins
        state.echoed = digest
        self.echoes_sent += 1
        self._note_vote(state.echoes, digest, self.address)
        message = BRBEcho(message_id, digest, self.address)
        targets = self._echo_targets()
        for peer in targets:
            self._send_phase(peer, message, PHASE_ECHO)
        self._record_transmissions(message_id, len(targets))

    def _send_ready(self, state: _BRBState, message_id: MessageId, digest: str) -> None:
        state.ready_for = digest
        self.readies_sent += 1
        self._note_vote(state.readies, digest, self.address)
        message = BRBReady(message_id, digest, self.address)
        targets = self._ready_targets()
        for peer in targets:
            self._send_phase(peer, message, PHASE_READY)
        self._record_transmissions(message_id, len(targets))
        # In tiny groups the local vote can complete the delivery quorum.
        self._maybe_deliver(state, message_id)

    def _maybe_deliver(self, state: _BRBState, message_id: MessageId) -> None:
        if state.delivered:
            return
        _echo_quorum, _amplify, deliver = self.thresholds()
        for digest, voters in state.readies.items():
            if len(voters) >= deliver and digest in state.payloads:
                state.delivered = True
                self.quorum_deliveries += 1
                self._mark_seen(message_id)
                hops = 0 if state.origin else 1
                self._deliver(message_id, state.payloads[digest], hops)
                return

    # ------------------------------------------------------------------
    # Acked phase transport (phase-keyed retransmit timers)
    # ------------------------------------------------------------------
    def _ack(self, peer: NodeId, message_id: MessageId, phase: str) -> None:
        # Ack before processing, duplicates included — the copy may be a
        # retransmission whose previous ack was lost.
        self._host.send(peer, BRBAck(message_id, phase, self.address))

    def _send_phase(self, peer: NodeId, message, phase: str, attempt: int = 0) -> None:
        key = (message.message_id, phase, peer)
        previous = self._pending.pop(key, None)
        if previous is not None:
            previous.cancel()
        self._host.send(peer, message)
        delay = self.ack_timeout * (self.backoff**attempt)
        self._pending[key] = self._host.schedule(
            delay, _PhaseRetransmit(self, peer, message, phase, attempt + 1)
        )

    def _phase_retransmit(self, peer: NodeId, message, phase: str, attempt: int) -> None:
        key = (message.message_id, phase, peer)
        if self._pending.pop(key, None) is None:
            return  # acked in the same instant the timer fired
        if attempt > self.max_retries:
            self.give_ups += 1
            self._membership.report_failure(peer)
            return
        self.retransmissions += 1
        self._record_transmissions(message.message_id, 1)
        self._send_phase(peer, message, phase, attempt)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def brb_stats(self) -> dict[str, int]:
        """The quorum machinery's counters (JSON-safe)."""
        return {
            "echoes_sent": self.echoes_sent,
            "readies_sent": self.readies_sent,
            "quorum_deliveries": self.quorum_deliveries,
            "undelivered": sum(
                1 for state in self._states.values() if not state.delivered
            ),
        }


class _PhaseRetransmit:
    """Picklable phase-retransmit callback (bound lambdas are not)."""

    __slots__ = ("layer", "peer", "message", "phase", "attempt")

    def __init__(
        self, layer: BRBGossip, peer: NodeId, message, phase: str, attempt: int
    ) -> None:
        self.layer = layer
        self.peer = peer
        self.message = message
        self.phase = phase
        self.attempt = attempt

    def __call__(self) -> None:
        self.layer._phase_retransmit(self.peer, self.message, self.phase, self.attempt)


__all__ = [
    "BRBConfig",
    "BRBGossip",
    "payload_digest",
    "PHASE_ECHO",
    "PHASE_READY",
    "PHASE_SEND",
]
