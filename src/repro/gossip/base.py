"""Shared machinery of the broadcast layers.

A broadcast layer sits on top of a peer-sampling service and implements the
gossip rule of the paper's evaluation: *deliver on first reception, then
forward* (there is no a-priori bound on gossip rounds — Section 5).  The
subclasses differ only in target selection and transport discipline:

* :class:`~repro.gossip.eager.EagerGossip` — ``fanout`` random view members,
  unreliable transport (plain Cyclon/Scamp style), optionally acknowledged
  (CyclonAcked);
* :class:`~repro.gossip.flood.FloodBroadcast` — the whole HyParView active
  view, reliable transport doubling as the failure detector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Optional

from ..common.ids import MessageId, NodeId, SequenceGenerator
from ..common.interfaces import Host
from ..common.messages import Message
from ..protocols.base import PeerSamplingService
from .messages import GossipData
from .tracker import BroadcastTracker

#: Application callback for delivered broadcasts.
DeliverCallback = Callable[[MessageId, Any], None]


class BroadcastLayer(ABC):
    """Deliver-once-then-forward gossip base class."""

    name = "broadcast"

    def __init__(
        self,
        host: Host,
        membership: PeerSamplingService,
        tracker: Optional[BroadcastTracker] = None,
        *,
        on_deliver: Optional[DeliverCallback] = None,
        seen_capacity: Optional[int] = None,
    ) -> None:
        self._host = host
        self._membership = membership
        self._tracker = tracker
        self._on_deliver = on_deliver
        # Sequence ranges are incarnation-scoped: a restarted process
        # must never collide with ids its predecessor minted.
        self._sequence = SequenceGenerator(host.address, start=host.incarnation << 32)
        self._seen: set[MessageId] = set()
        self._seen_order: Optional[deque[MessageId]] = (
            deque() if seen_capacity is not None else None
        )
        self._seen_capacity = seen_capacity
        self.delivered_count = 0
        self.duplicate_count = 0

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def address(self) -> NodeId:
        return self._host.address

    @property
    def membership(self) -> PeerSamplingService:
        return self._membership

    def handlers(self) -> dict[type, Callable[[Message], None]]:
        return {GossipData: self.handle_gossip}

    def broadcast(self, payload: Any = None) -> MessageId:
        """Broadcast ``payload``; returns the minted message id."""
        message_id = self._sequence.next_id()
        if self._tracker is not None:
            self._tracker.on_broadcast(message_id, self.address, self._host.now())
        self._mark_seen(message_id)
        self._deliver(message_id, payload, hops=0)
        self._forward(message_id, payload, hops=1, exclude=())
        return message_id

    def handle_gossip(self, message: GossipData) -> None:
        if message.message_id in self._seen:
            self.duplicate_count += 1
            if self._tracker is not None:
                self._tracker.on_redundant(message.message_id, self.address)
            return
        self._mark_seen(message.message_id)
        self._deliver(message.message_id, message.payload, message.hops)
        self._forward(
            message.message_id, message.payload, message.hops + 1, exclude=(message.sender,)
        )

    def has_delivered(self, message_id: MessageId) -> bool:
        return message_id in self._seen

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    @abstractmethod
    def _forward(
        self,
        message_id: MessageId,
        payload: Any,
        hops: int,
        exclude: tuple[NodeId, ...],
    ) -> None:
        """Send the payload onwards according to the layer's discipline."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver(self, message_id: MessageId, payload: Any, hops: int) -> None:
        self.delivered_count += 1
        if self._tracker is not None:
            self._tracker.on_deliver(message_id, self.address, self._host.now(), hops)
        if self._on_deliver is not None:
            self._on_deliver(message_id, payload)

    def _mark_seen(self, message_id: MessageId) -> None:
        self._seen.add(message_id)
        if self._seen_order is not None:
            self._seen_order.append(message_id)
            if len(self._seen_order) > self._seen_capacity:
                evicted = self._seen_order.popleft()
                self._seen.discard(evicted)

    def _record_transmissions(self, message_id: MessageId, copies: int) -> None:
        if self._tracker is not None and copies:
            self._tracker.on_transmit(message_id, copies)
