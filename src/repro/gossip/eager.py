"""Probabilistic eager gossip (the paper's broadcast layer for baselines).

On first reception a node forwards the payload to ``fanout`` peers drawn
uniformly from its membership view (Section 1).  Two transport disciplines
are supported:

* ``acked=False`` — plain gossip over unreliable transport: messages to
  crashed peers vanish silently.  This is how the paper runs Cyclon and
  Scamp.
* ``acked=True`` — every copy is acknowledged; a missing acknowledgment is
  reported to the membership protocol via
  :meth:`~repro.protocols.base.PeerSamplingService.report_failure`.  This
  is the CyclonAcked configuration.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.errors import ConfigurationError
from ..common.ids import MessageId, NodeId
from ..common.interfaces import Host
from ..common.messages import Message
from ..protocols.base import PeerSamplingService
from .base import BroadcastLayer, DeliverCallback
from .messages import GossipData
from .tracker import BroadcastTracker


class EagerGossip(BroadcastLayer):
    """Fanout-based gossip over a peer-sampling service."""

    name = "eager-gossip"

    def __init__(
        self,
        host: Host,
        membership: PeerSamplingService,
        tracker: Optional[BroadcastTracker] = None,
        *,
        fanout: int = 4,
        acked: bool = False,
        on_deliver: Optional[DeliverCallback] = None,
        seen_capacity: Optional[int] = None,
    ) -> None:
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1: {fanout}")
        super().__init__(
            host, membership, tracker, on_deliver=on_deliver, seen_capacity=seen_capacity
        )
        self.fanout = fanout
        self.acked = acked

    def _forward(
        self,
        message_id: MessageId,
        payload: Any,
        hops: int,
        exclude: tuple[NodeId, ...],
    ) -> None:
        targets = self._membership.gossip_targets(self.fanout, exclude)
        if not targets:
            return
        message = GossipData(message_id, payload, hops, self.address)
        on_failure = self._on_send_failure if self.acked else None
        for target in targets:
            self._host.send(target, message, on_failure=on_failure)
        self._record_transmissions(message_id, len(targets))

    def _on_send_failure(self, peer: NodeId, _message: Message) -> None:
        """Acknowledgment timed out: let the membership layer expunge the
        peer.  The copy itself is *not* retransmitted — CyclonAcked only
        cleans views; redundancy is gossip's own repair mechanism."""
        self._membership.report_failure(peer)
