"""Ack + retransmit gossip: reliability built *above* the transport.

The paper's broadcast layers either trust TCP (HyParView's flood) or
accept loss (plain Cyclon/Scamp gossip).  Reliability layers built on
peer-sampling overlays — the echo/ready phases of Scalable Byzantine
Reliable Broadcast, Snow's self-organising cloud broadcast — take a third
road: every copy travels as a datagram, the receiver acknowledges it, and
the sender keeps a **cancellable retransmit timer per (message, peer)**
with exponential backoff until the ack lands or the retry budget runs
out.  That discipline makes timers outnumber messages — the workload
class the engine's hierarchical timer wheel exists for.

Mechanics:

* :meth:`ReliableGossip._forward` sends each copy as a datagram and arms
  a retransmit timer (``ack_timeout``, doubling per attempt by
  ``backoff``);
* every received copy — duplicates included — is acknowledged with
  :class:`~repro.gossip.messages.GossipAck`, because the copy may be a
  retransmission whose earlier ack was lost;
* an ack cancels the pending timer (the overwhelmingly common case: the
  timer wheel reclaims the cancelled handle lazily);
* an expired timer resends the copy and re-arms with doubled delay; after
  ``max_retries`` resends the peer is reported to the membership layer as
  failed (ack silence is this layer's failure detector, the way TCP
  resets are the flood's).

``fanout=0`` forwards to the membership layer's whole view (HyParView's
flood discipline over unreliable transport); a positive fanout samples
peers the eager-gossip way (Cyclon-style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..common.errors import ConfigurationError
from ..common.ids import MessageId, NodeId
from ..common.interfaces import Host, TimerHandle
from ..protocols.base import PeerSamplingService
from .base import BroadcastLayer, DeliverCallback
from .messages import GossipAck, GossipData
from .tracker import BroadcastTracker


@dataclass(frozen=True, slots=True)
class ReliableConfig:
    """Tuning of the ack/retransmit discipline.

    The default timeout comfortably exceeds one simulated round trip
    (2 x 0.01 s), so a clean network retransmits nothing; with loss the
    doubling backoff gives up after ``ack_timeout * (2^(r+1) - 1)``
    seconds (~0.75 s at the defaults).
    """

    ack_timeout: float = 0.05
    backoff: float = 2.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ConfigurationError(f"ack timeout must be positive: {self.ack_timeout}")
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff factor must be >= 1: {self.backoff}")
        if self.max_retries < 0:
            raise ConfigurationError(f"max retries must be >= 0: {self.max_retries}")


class ReliableGossip(BroadcastLayer):
    """Gossip over datagrams with per-copy acks and retransmit timers."""

    name = "reliable-gossip"

    def __init__(
        self,
        host: Host,
        membership: PeerSamplingService,
        tracker: Optional[BroadcastTracker] = None,
        *,
        fanout: int = 0,
        ack_timeout: float = 0.05,
        backoff: float = 2.0,
        max_retries: int = 3,
        on_deliver: Optional[DeliverCallback] = None,
        seen_capacity: Optional[int] = None,
    ) -> None:
        if fanout < 0:
            raise ConfigurationError(f"fanout must be >= 0: {fanout}")
        if ack_timeout <= 0:
            raise ConfigurationError(f"ack timeout must be positive: {ack_timeout}")
        if backoff < 1.0:
            raise ConfigurationError(f"backoff factor must be >= 1: {backoff}")
        if max_retries < 0:
            raise ConfigurationError(f"max retries must be >= 0: {max_retries}")
        super().__init__(
            host, membership, tracker, on_deliver=on_deliver, seen_capacity=seen_capacity
        )
        self.fanout = fanout
        self.ack_timeout = ack_timeout
        self.backoff = backoff
        self.max_retries = max_retries
        #: (message id, peer) -> armed retransmit timer.  Entries leave on
        #: ack (cancel), expiry (resend or give-up), so a quiesced network
        #: leaves the map empty and scenarios freeze cleanly.
        self._pending: dict[tuple[MessageId, NodeId], TimerHandle] = {}
        self.acks_received = 0
        self.retransmissions = 0
        self.give_ups = 0

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def handlers(self) -> dict:
        return {GossipData: self.handle_gossip, GossipAck: self.handle_ack}

    def handle_gossip(self, message: GossipData) -> None:
        # Ack before processing, duplicates included: this copy may be a
        # retransmission whose previous ack was lost in the network.
        self._host.send(message.sender, GossipAck(message.message_id, self.address))
        super().handle_gossip(message)

    def handle_ack(self, ack: GossipAck) -> None:
        handle = self._pending.pop((ack.message_id, ack.sender), None)
        if handle is not None:
            handle.cancel()
            self.acks_received += 1

    # ------------------------------------------------------------------
    # Forwarding and retransmission
    # ------------------------------------------------------------------
    def _forward(
        self,
        message_id: MessageId,
        payload: Any,
        hops: int,
        exclude: tuple[NodeId, ...],
    ) -> None:
        targets = self._membership.gossip_targets(self.fanout, exclude)
        if not targets:
            return
        message = GossipData(message_id, payload, hops, self.address)
        for target in targets:
            self._send_copy(target, message, attempt=0)
        self._record_transmissions(message_id, len(targets))

    def _send_copy(self, peer: NodeId, message: GossipData, attempt: int) -> None:
        key = (message.message_id, peer)
        previous = self._pending.pop(key, None)
        if previous is not None:
            # Re-forwarding a message whose timer is still armed (e.g. a
            # duplicate arrival widened the target set): keep one timer.
            previous.cancel()
        self._host.send(peer, message)
        delay = self.ack_timeout * (self.backoff**attempt)
        self._pending[key] = self._host.schedule(
            delay, _Retransmit(self, peer, message, attempt + 1)
        )

    def _retransmit(self, peer: NodeId, message: GossipData, attempt: int) -> None:
        key = (message.message_id, peer)
        if self._pending.pop(key, None) is None:
            return  # acked in the same instant the timer fired
        if attempt > self.max_retries:
            self.give_ups += 1
            # Ack silence is this layer's failure detector: hand the peer
            # to the membership layer, like CyclonAcked's send failures.
            self._membership.report_failure(peer)
            return
        self.retransmissions += 1
        self._record_transmissions(message.message_id, 1)
        self._send_copy(peer, message, attempt)

    @property
    def pending_retransmits(self) -> int:
        """Armed (message, peer) retransmit timers right now."""
        return len(self._pending)

    def reliability_stats(self) -> dict[str, int]:
        """The layer's ack/retransmit counters (JSON-safe)."""
        return {
            "acks_received": self.acks_received,
            "retransmissions": self.retransmissions,
            "give_ups": self.give_ups,
        }


class _Retransmit:
    """Picklable retransmit-timer callback (bound lambdas are not)."""

    __slots__ = ("layer", "peer", "message", "attempt")

    def __init__(
        self, layer: ReliableGossip, peer: NodeId, message: GossipData, attempt: int
    ) -> None:
        self.layer = layer
        self.peer = peer
        self.message = message
        self.attempt = attempt

    def __call__(self) -> None:
        self.layer._retransmit(self.peer, self.message, self.attempt)
