"""Membership protocols: the peer-sampling contract and the paper's baselines."""

from .base import PeerSamplingService
from .cyclon import AgedView, Cyclon, CyclonConfig
from .cyclon_acked import CyclonAcked
from .scamp import Scamp, ScampConfig

__all__ = [
    "AgedView",
    "Cyclon",
    "CyclonAcked",
    "CyclonConfig",
    "PeerSamplingService",
    "Scamp",
    "ScampConfig",
]
