"""CyclonAcked — Cyclon plus dissemination-time failure detection.

The HyParView authors built this variant themselves (Section 5): the gossip
layer exchanges explicit acknowledgments, so gossiping to a crashed node
reveals the failure and the stale entry is expunged from the partial view.
The benchmark exists to show that HyParView's advantage "does not come only
from the use of TCP as a failure detector, but also from the clever use of
two separate partial views".

In this library the acknowledgment machinery is the reliable-send failure
callback: the gossip layer sends with acknowledgments
(``EagerGossip(acked=True)``) and routes failures to
:meth:`CyclonAcked.report_failure`.
"""

from __future__ import annotations

from ..common.ids import NodeId
from .cyclon import Cyclon


class CyclonAcked(Cyclon):
    """Cyclon whose view reacts to gossip-layer failure reports."""

    name = "cyclon-acked"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failures_detected = 0

    def report_failure(self, peer: NodeId) -> None:
        """Expunge a peer whose gossip acknowledgment timed out."""
        if self.view.discard(peer):
            self.failures_detected += 1
