"""X-BOT: topology-aware optimisation of HyParView's active view.

X-BOT (Leitão et al., "X-BOT: A Protocol for Resilient Optimization of
Unstructured Overlays") biases an unstructured overlay toward low-cost
links without giving up the reliability properties of the underlying
membership protocol.  This module layers it on :class:`HyParView`: the
active/passive views, join walks, promotion and shuffle machinery are all
inherited unchanged; X-BOT adds a periodic **4-node optimisation swap**
that trades a high-cost active edge for a low-cost one.

The four roles of one swap round:

* **initiator** ``i`` — has a full active view, samples a few passive
  candidates, and proposes replacing its worst *biased* active neighbour;
* **candidate** ``c`` — the low-cost passive peer ``i`` wants to promote;
* **old** ``o`` — ``i``'s highest-cost biased active neighbour, the edge
  being dropped;
* **disconnected** ``d`` — ``c``'s highest-cost biased neighbour, which
  ``c`` drops to make room and which adopts ``o`` so no node loses degree.

The exchange is ``Optimization`` (i→c), ``Replace`` (c→d), ``Switch``
(d→o), then replies back down the chain; the final topology replaces
edges ``i–o`` and ``c–d`` with ``i–c`` and ``d–o``.  ``d`` accepts only
under the aggregate-cost rule

    cost(i,o) + cost(c,d)  >  cost(i,c) + cost(d,o)

so every completed swap strictly decreases the total edge cost of the
overlay — the convergence argument of the paper.  Because the
:class:`CostOracle` here is a pure function of node identities (the
latency world model's jitter-free zone matrix), any participant can price
any link locally and the rule can be evaluated entirely at ``d``.

**Unbiased slots.**  The first ``unbiased_slots`` positions of a node's
active view are never chosen for removal by the optimisation (neither as
``o`` nor as ``d``), keeping a random, cost-blind core in every view —
this is what preserves HyParView's healing and connectivity properties
while the rest of the view specialises toward cheap links.  Reactive
evictions (joins, failures) are deliberately *not* constrained: admission
of starving nodes is a reliability primitive and always wins.

**Reliability first.**  Swap commits never evict an unrelated neighbour
to make room: if a view filled up mid-exchange the new edge is refused
with a ``Disconnect`` so both sides agree, and the overlay falls back to
the plain-HyParView repair path.  A node with a cost-blind oracle (the
default) initiates no swaps at all and behaves exactly like HyParView.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from ..common.errors import ConfigurationError
from ..common.ids import NodeId
from ..common.interfaces import Host, TimerHandle
from ..common.messages import Message, register_message
from ..core.config import HyParViewConfig
from ..core.messages import Disconnect
from ..core.protocol import HyParView


# ----------------------------------------------------------------------
# Link-cost oracles
# ----------------------------------------------------------------------
class CostOracle(ABC):
    """Prices a link between two nodes for the optimisation.

    Implementations must be pure functions of the node identities —
    deterministic and symmetric — so that every participant of a swap
    computes identical costs without coordination.
    """

    __slots__ = ()

    @abstractmethod
    def cost(self, a: NodeId, b: NodeId) -> float:
        """Cost of the ``a``–``b`` link (lower is better)."""


class ConstantCostOracle(CostOracle):
    """Cost-blind oracle: every link prices the same, so no swap ever
    shows a strict gain and X-BOT degrades to plain HyParView.  The safe
    default for substrates without a latency world model (live runtime)."""

    __slots__ = ()

    def cost(self, a: NodeId, b: NodeId) -> float:
        return 0.0


class LatencyCostOracle(CostOracle):
    """Reads link cost from a latency model's jitter-free ``base_delay``
    — the zone matrix of :class:`~repro.sim.latency.ZonedLatency` in the
    ``topo_*`` scenarios."""

    __slots__ = ("model",)

    def __init__(self, model) -> None:
        self.model = model

    def cost(self, a: NodeId, b: NodeId) -> float:
        return self.model.base_delay(a, b)


# ----------------------------------------------------------------------
# Configuration and counters
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class XBotConfig:
    """X-BOT tuning knobs (defaults follow the paper's small constants)."""

    #: Leading active-view positions never removed by optimisation.
    unbiased_slots: int = 1
    #: Passive candidates sampled per optimisation round (the paper's PSL).
    candidates_per_round: int = 2
    #: Seconds before a swap participant abandons an unanswered exchange.
    #: Must cover the whole 6-leg chain at the world model's worst-case
    #: link delay (~0.16 s cross-continent), with slack for queueing.
    swap_timeout: float = 2.0
    #: Minimum strict aggregate-cost improvement a swap must show.
    min_gain: float = 0.0

    def __post_init__(self) -> None:
        if self.unbiased_slots < 0:
            raise ConfigurationError(
                f"unbiased slots must be >= 0: {self.unbiased_slots}"
            )
        if self.candidates_per_round < 1:
            raise ConfigurationError(
                f"candidates per round must be >= 1: {self.candidates_per_round}"
            )
        if self.swap_timeout <= 0:
            raise ConfigurationError(f"swap timeout must be positive: {self.swap_timeout}")
        if self.min_gain < 0:
            raise ConfigurationError(f"minimum gain must be >= 0: {self.min_gain}")


@dataclass(slots=True)
class XBotStats:
    """Optimisation counters, exposed for tests and scenario reports."""

    rounds_initiated: int = 0
    swaps_completed: int = 0
    swaps_rejected: int = 0
    swap_timeouts: int = 0
    #: Active-view removals performed by swap commits (never unbiased).
    optimization_removals: int = 0
    #: Times a removal was refused because the peer sat in an unbiased slot.
    unbiased_protected: int = 0
    #: Swap edges refused because the view filled up mid-exchange.
    edges_declined: int = 0


# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------
@register_message("xbot.optimization")
@dataclass(frozen=True, slots=True)
class Optimization(Message):
    """Initiator asks candidate to take ``old``'s place in its view."""

    initiator: NodeId
    old: NodeId


@register_message("xbot.optimization_reply")
@dataclass(frozen=True, slots=True)
class OptimizationReply(Message):
    """Candidate's final answer to the initiator; ``old`` echoes the
    round so stale replies are discarded."""

    candidate: NodeId
    old: NodeId
    accepted: bool


@register_message("xbot.replace")
@dataclass(frozen=True, slots=True)
class Replace(Message):
    """Full candidate asks its worst biased neighbour ``d`` (the
    receiver) to adopt ``old`` in its place."""

    candidate: NodeId
    initiator: NodeId
    old: NodeId


@register_message("xbot.replace_reply")
@dataclass(frozen=True, slots=True)
class ReplaceReply(Message):
    """``d``'s answer to the candidate after the Switch leg resolved."""

    disconnected: NodeId
    initiator: NodeId
    old: NodeId
    accepted: bool


@register_message("xbot.switch")
@dataclass(frozen=True, slots=True)
class Switch(Message):
    """``d`` asks ``old`` (the receiver) to swap its ``initiator`` edge
    for a ``d`` edge, having verified the aggregate-cost rule."""

    disconnected: NodeId
    initiator: NodeId
    candidate: NodeId


@register_message("xbot.switch_reply")
@dataclass(frozen=True, slots=True)
class SwitchReply(Message):
    """``old``'s answer to ``d``; echoes the round's roles."""

    old: NodeId
    initiator: NodeId
    candidate: NodeId
    accepted: bool


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class XBot(HyParView):
    """HyParView plus X-BOT optimisation swaps.

    Each node holds at most one in-flight exchange *per role* (initiator,
    candidate, ``d``), each guarded by a ``swap_timeout`` timer, so lost
    messages and crashed participants can never wedge the optimiser.
    Sim mode drives rounds through :meth:`cycle`; live mode gets them for
    free through the inherited periodic shuffle, which calls ``cycle``.
    """

    name = "hyparview-xbot"

    def __init__(
        self,
        host: Host,
        config: Optional[HyParViewConfig] = None,
        *,
        oracle: Optional[CostOracle] = None,
        xbot: Optional[XBotConfig] = None,
    ) -> None:
        super().__init__(host, config)
        self.oracle = oracle if oracle is not None else ConstantCostOracle()
        self.xbot_config = xbot if xbot is not None else XBotConfig()
        self.xbot_stats = XBotStats()
        # Initiator role: the (candidate, old) pair of the open round.
        self._opt_pending: Optional[tuple[NodeId, NodeId]] = None
        self._opt_timer: Optional[TimerHandle] = None
        # Candidate role: (initiator, old, disconnected) awaiting ReplaceReply.
        self._replace_pending: Optional[tuple[NodeId, NodeId, NodeId]] = None
        self._replace_timer: Optional[TimerHandle] = None
        # Disconnected role: (initiator, candidate, old) awaiting SwitchReply.
        self._switch_pending: Optional[tuple[NodeId, NodeId, NodeId]] = None
        self._switch_timer: Optional[TimerHandle] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def handlers(self) -> dict[type, Callable[[Message], None]]:
        table = super().handlers()
        table.update(
            {
                Optimization: self.handle_optimization,
                OptimizationReply: self.handle_optimization_reply,
                Replace: self.handle_replace,
                ReplaceReply: self.handle_replace_reply,
                Switch: self.handle_switch,
                SwitchReply: self.handle_switch_reply,
            }
        )
        return table

    def cycle(self) -> None:
        super().cycle()
        self.optimize_once()

    def leave(self) -> None:
        self._clear_opt_state()
        self._clear_replace_state()
        self._clear_switch_state()
        super().leave()

    # ------------------------------------------------------------------
    # Unbiased-slot accounting
    # ------------------------------------------------------------------
    def unbiased_members(self) -> tuple[NodeId, ...]:
        """The protected head of the active view (never optimised away)."""
        return self.active.members()[: self.xbot_config.unbiased_slots]

    def _swappable(self) -> tuple[NodeId, ...]:
        return self.active.members()[self.xbot_config.unbiased_slots :]

    def _worst_swappable(self, exclude: tuple[NodeId, ...] = ()) -> Optional[NodeId]:
        """Highest-cost biased neighbour, or ``None``.  Ties resolve to the
        earliest view position — deterministic, since ``members()`` order
        is part of the simulation state."""
        me = self.address
        worst: Optional[NodeId] = None
        worst_cost = float("-inf")
        for peer in self._swappable():
            if peer in exclude:
                continue
            peer_cost = self.oracle.cost(me, peer)
            if peer_cost > worst_cost:
                worst, worst_cost = peer, peer_cost
        return worst

    # ------------------------------------------------------------------
    # Initiator role
    # ------------------------------------------------------------------
    def optimize_once(self) -> None:
        """Open one optimisation round if the view is full and a passive
        candidate strictly beats the worst biased neighbour."""
        cfg = self.xbot_config
        if self._left or self._opt_pending is not None:
            return
        if not self.active.is_full or self.passive.is_empty:
            return
        old = self._worst_swappable()
        if old is None:
            return
        me = self.address
        old_cost = self.oracle.cost(me, old)
        best: Optional[NodeId] = None
        best_cost = float("inf")
        for candidate in self.passive.sample(self._rng, cfg.candidates_per_round):
            candidate_cost = self.oracle.cost(me, candidate)
            if candidate_cost < best_cost:
                best, best_cost = candidate, candidate_cost
        if best is None or best_cost + cfg.min_gain >= old_cost:
            return
        self._opt_pending = (best, old)
        self._opt_timer = self._host.schedule(cfg.swap_timeout, self._on_opt_timeout)
        self.xbot_stats.rounds_initiated += 1
        self._host.send(best, Optimization(me, old))

    def handle_optimization_reply(self, message: OptimizationReply) -> None:
        pending = self._opt_pending
        if pending is None or (message.candidate, message.old) != pending:
            return  # stale or duplicated reply
        candidate, old = pending
        self._clear_opt_state()
        if not message.accepted:
            self.xbot_stats.swaps_rejected += 1
            if not self.active.is_full:
                self._fill_active_view()
            return
        if old in self.active:
            self._demote_for_swap(old, notify_peer=True)
        self._admit_swap_edge(candidate)
        self.xbot_stats.swaps_completed += 1

    def _on_opt_timeout(self) -> None:
        self._opt_timer = None
        if self._opt_pending is None:
            return
        self._opt_pending = None
        self.xbot_stats.swap_timeouts += 1
        if not self.active.is_full:
            self._fill_active_view()

    # ------------------------------------------------------------------
    # Candidate role
    # ------------------------------------------------------------------
    def handle_optimization(self, message: Optimization) -> None:
        initiator, old = message.initiator, message.old
        me = self.address
        if initiator == me or self._left:
            return
        if initiator in self.active or old == me:
            self._host.send(initiator, OptimizationReply(me, old, False))
            return
        if not self.active.is_full:
            # Room to spare: accept directly, no fourth node needed.
            self._admit_swap_edge(initiator)
            self._host.send(initiator, OptimizationReply(me, old, True))
            return
        if self._replace_pending is not None:
            self._host.send(initiator, OptimizationReply(me, old, False))
            return
        disconnected = self._worst_swappable(exclude=(initiator, old))
        if disconnected is None:
            self._host.send(initiator, OptimizationReply(me, old, False))
            return
        self._replace_pending = (initiator, old, disconnected)
        self._replace_timer = self._host.schedule(
            self.xbot_config.swap_timeout, self._on_replace_timeout
        )
        self._host.send(disconnected, Replace(me, initiator, old))

    def handle_replace_reply(self, message: ReplaceReply) -> None:
        pending = self._replace_pending
        if pending is None:
            return
        initiator, old, disconnected = pending
        if (message.initiator, message.old, message.disconnected) != (
            initiator,
            old,
            disconnected,
        ):
            return  # stale or duplicated reply
        self._clear_replace_state()
        if not message.accepted:
            self._host.send(initiator, OptimizationReply(self.address, old, False))
            return
        # d already dropped us and adopted old; mirror the removal (its
        # Disconnect may still be in flight) and take the initiator's edge.
        if disconnected in self.active:
            self._demote_for_swap(disconnected, notify_peer=False)
        self._admit_swap_edge(initiator)
        self._host.send(initiator, OptimizationReply(self.address, old, True))

    def _on_replace_timeout(self) -> None:
        self._replace_timer = None
        pending = self._replace_pending
        if pending is None:
            return
        self._replace_pending = None
        self.xbot_stats.swap_timeouts += 1
        # Tell the waiting initiator the round is dead rather than letting
        # both ends time out independently.
        self._host.send(pending[0], OptimizationReply(self.address, pending[1], False))

    # ------------------------------------------------------------------
    # Disconnected role (the candidate's dropped neighbour, ``d``)
    # ------------------------------------------------------------------
    def handle_replace(self, message: Replace) -> None:
        candidate, initiator, old = message.candidate, message.initiator, message.old
        me = self.address
        cfg = self.xbot_config
        acceptable = (
            not self._left
            and initiator != me
            and old != me
            and candidate in self.active
            and candidate in self._swappable()
            and old not in self.active
            and self._switch_pending is None
        )
        if acceptable:
            # The aggregate-cost rule: the swap must strictly shrink the
            # summed cost of the two edges it touches.  The shared pure
            # oracle lets d evaluate all four terms locally.
            cost = self.oracle.cost
            gain = (
                cost(initiator, old)
                + cost(candidate, me)
                - cost(initiator, candidate)
                - cost(me, old)
            )
            acceptable = gain > cfg.min_gain
        if not acceptable:
            self._host.send(candidate, ReplaceReply(me, initiator, old, False))
            return
        self._switch_pending = (initiator, candidate, old)
        self._switch_timer = self._host.schedule(cfg.swap_timeout, self._on_switch_timeout)
        self._host.send(old, Switch(me, initiator, candidate))

    def handle_switch_reply(self, message: SwitchReply) -> None:
        pending = self._switch_pending
        if pending is None:
            return
        initiator, candidate, old = pending
        if (message.initiator, message.candidate, message.old) != (
            initiator,
            candidate,
            old,
        ):
            return  # stale or duplicated reply
        self._clear_switch_state()
        if not message.accepted:
            self._host.send(candidate, ReplaceReply(self.address, initiator, old, False))
            return
        if candidate in self.active and candidate in self._swappable():
            self._demote_for_swap(candidate, notify_peer=True)
            self._admit_swap_edge(old)
            self._host.send(candidate, ReplaceReply(self.address, initiator, old, True))
            return
        # old already switched to us but the candidate edge vanished (or
        # slid into an unbiased slot) meanwhile: roll our half back so both
        # sides agree, and fail the round.
        self._host.send(old, Disconnect(self.address))
        self._host.send(candidate, ReplaceReply(self.address, initiator, old, False))

    def _on_switch_timeout(self) -> None:
        self._switch_timer = None
        pending = self._switch_pending
        if pending is None:
            return
        self._switch_pending = None
        self.xbot_stats.swap_timeouts += 1
        self._host.send(
            pending[1], ReplaceReply(self.address, pending[0], pending[2], False)
        )

    # ------------------------------------------------------------------
    # Old role (``o``)
    # ------------------------------------------------------------------
    def handle_switch(self, message: Switch) -> None:
        disconnected, initiator = message.disconnected, message.initiator
        me = self.address
        accepted = (
            not self._left
            and disconnected != me
            and initiator != me
            and disconnected not in self.active
            and initiator in self.active
            and initiator in self._swappable()
        )
        if accepted:
            # Atomic at this node: the initiator's slot frees and d takes
            # it, so degree is preserved and no refill races the commit.
            self._demote_for_swap(initiator, notify_peer=True)
            self._admit_swap_edge(disconnected)
        self._host.send(
            disconnected, SwitchReply(me, initiator, message.candidate, accepted)
        )

    # ------------------------------------------------------------------
    # Commit primitives
    # ------------------------------------------------------------------
    def _demote_for_swap(self, peer: NodeId, *, notify_peer: bool) -> bool:
        """Move an active neighbour to the passive view for a swap commit.

        Refuses unbiased slots — the optimisation never touches them, so
        the cost-blind core of the view survives any swap schedule."""
        if peer in self.unbiased_members():
            self.xbot_stats.unbiased_protected += 1
            return False
        if not self.active.discard(peer):
            return False
        self._host.unwatch(peer)
        self._listeners.notify_down(peer)
        self._add_to_passive(peer)
        self.xbot_stats.optimization_removals += 1
        if notify_peer:
            self._host.send(peer, Disconnect(self.address))
        return True

    def _admit_swap_edge(self, peer: NodeId) -> bool:
        """Take the new edge a swap grants us, never evicting for it."""
        if peer == self.address:
            return False
        if peer in self.active:
            return True
        if self.active.is_full:
            # The slot was taken by a reactive admission mid-exchange;
            # reliability wins.  Refuse the edge so views stay symmetric.
            self.xbot_stats.edges_declined += 1
            self._host.send(peer, Disconnect(self.address))
            return False
        self.passive.discard(peer)
        self.active.add(peer)
        self._host.watch(peer, self._on_link_down)
        self._listeners.notify_up(peer)
        return True

    def handle_disconnect(self, message: Disconnect) -> None:
        """A Disconnect for an edge an open swap is about to replace must
        not trigger the reactive refill — the in-flight exchange owns that
        slot (the reply or the timeout reclaims it).  Everything else goes
        through HyParView's handler unchanged."""
        peer = message.sender
        reserved = (
            self._opt_pending is not None
            and peer == self._opt_pending[1]
            or self._replace_pending is not None
            and peer == self._replace_pending[2]
        )
        if not reserved:
            super().handle_disconnect(message)
            return
        self.stats.disconnects_received += 1
        if peer in self.active:
            self.active.remove(peer)
            self._host.unwatch(peer)
            self._listeners.notify_down(peer)
            self._add_to_passive(peer)

    # ------------------------------------------------------------------
    # State hygiene
    # ------------------------------------------------------------------
    def _clear_opt_state(self) -> None:
        self._opt_pending = None
        if self._opt_timer is not None:
            self._opt_timer.cancel()
            self._opt_timer = None

    def _clear_replace_state(self) -> None:
        self._replace_pending = None
        if self._replace_timer is not None:
            self._replace_timer.cancel()
            self._replace_timer = None

    def _clear_switch_state(self) -> None:
        self._switch_pending = None
        if self._switch_timer is not None:
            self._switch_timer.cancel()
            self._switch_timer = None
