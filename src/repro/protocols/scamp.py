"""SCAMP — Scalable Membership Protocol (Ganesh, Kermarrec & Massoulié).

The paper's reactive baseline (Sections 2.2/2.4).  Nodes keep two views:

* **PartialView** — gossip targets; *unbounded*, its size self-organises
  around ``(c + 1) * log(n)`` without any node knowing ``n``;
* **InView** — nodes that gossip to us (i.e. nodes whose PartialView
  contains us).

Joining is a *subscription*: the contact forwards the subscriber's id to
every PartialView member plus ``c`` extra copies; each recipient keeps the
subscription with probability ``1 / (1 + |PartialView|)`` and otherwise
forwards it to a random neighbour.  Two periodic repair mechanisms exist —
a *lease* after which a node re-subscribes, and *heartbeats* that let an
isolated node (empty InView) detect it has been forgotten and rejoin.  The
HyParView paper configures the lease long enough that it never fires during
its failure experiments, which is part of why Scamp heals so slowly there.

Parameters follow Section 5.1: ``c = 4``, which yields PartialViews
distributed around ~34 entries at n = 10 000.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..common.errors import ConfigurationError
from ..common.ids import NodeId
from ..common.interfaces import Host, TimerHandle
from ..common.messages import Message, register_message
from .base import PeerSamplingService


@dataclass(frozen=True, slots=True)
class ScampConfig:
    """SCAMP tuning knobs.

    Attributes:
        c: Fault-tolerance/indirection parameter — extra subscription
            copies the contact creates (paper: 4).
        max_forward_hops: Safety cap on probabilistic subscription
            forwarding.  The random forwarding terminates with probability
            one; the cap bounds the tail.  On exhaustion the current node
            integrates the subscription instead of dropping it.
        lease_cycles: Membership cycles after which a node re-subscribes
            (the paper keeps this "typically high"; ``None`` disables it).
        isolation_cycles: Cycles without receiving any heartbeat after
            which a node assumes isolation and re-subscribes.
        heartbeat_period / cycle alignment: heartbeats are sent once per
            :meth:`Scamp.cycle`, matching the paper's cycle-driven runs.
    """

    c: int = 4
    max_forward_hops: int = 64
    lease_cycles: Optional[int] = None
    isolation_cycles: int = 10
    shuffle_period: float = 10.0  # period for self-driven cycles (live mode)

    def __post_init__(self) -> None:
        if self.c < 0:
            raise ConfigurationError(f"c must be >= 0: {self.c}")
        if self.max_forward_hops < 1:
            raise ConfigurationError(f"max_forward_hops must be >= 1: {self.max_forward_hops}")
        if self.lease_cycles is not None and self.lease_cycles < 1:
            raise ConfigurationError(f"lease_cycles must be >= 1: {self.lease_cycles}")
        if self.isolation_cycles < 1:
            raise ConfigurationError(f"isolation_cycles must be >= 1: {self.isolation_cycles}")
        if self.shuffle_period <= 0:
            raise ConfigurationError(f"shuffle_period must be positive: {self.shuffle_period}")


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@register_message("scamp.subscribe")
@dataclass(frozen=True, slots=True)
class ScampSubscribe(Message):
    """Subscription request sent to a contact node."""

    subscriber: NodeId


@register_message("scamp.forwarded_subscription")
@dataclass(frozen=True, slots=True)
class ScampForwardedSubscription(Message):
    """A subscription copy travelling through the overlay."""

    subscriber: NodeId
    hops: int


@register_message("scamp.subscription_kept")
@dataclass(frozen=True, slots=True)
class ScampSubscriptionKept(Message):
    """Tells the subscriber that ``keeper`` added it to its PartialView,
    so the subscriber can record the keeper in its InView."""

    keeper: NodeId


@register_message("scamp.heartbeat")
@dataclass(frozen=True, slots=True)
class ScampHeartbeat(Message):
    """Periodic liveness signal sent to PartialView members."""

    sender: NodeId


@register_message("scamp.unsubscribe")
@dataclass(frozen=True, slots=True)
class ScampUnsubscribe(Message):
    """Graceful leave: asks an InView member to replace the leaver's entry
    with ``replacement`` (or just drop it when ``replacement`` is None)."""

    leaver: NodeId
    replacement: Optional[NodeId]


class Scamp(PeerSamplingService):
    """One node's SCAMP instance."""

    name = "scamp"

    def __init__(self, host: Host, config: Optional[ScampConfig] = None) -> None:
        self._host = host
        self._config = config if config is not None else ScampConfig()
        self._rng = host.rng
        self.partial_view: list[NodeId] = []
        self._partial_set: set[NodeId] = set()
        self.in_view: set[NodeId] = set()
        self._cycles_since_heartbeat = 0
        self._cycles_since_subscribe = 0
        self._joined = False
        self._timer: Optional[TimerHandle] = None
        self._running = False
        self.subscriptions_kept = 0
        self.resubscriptions = 0

    # ------------------------------------------------------------------
    # PeerSamplingService surface
    # ------------------------------------------------------------------
    @property
    def address(self) -> NodeId:
        return self._host.address

    @property
    def config(self) -> ScampConfig:
        return self._config

    def handlers(self) -> dict[type, Callable[[Message], None]]:
        return {
            ScampSubscribe: self.handle_subscribe,
            ScampForwardedSubscription: self.handle_forwarded_subscription,
            ScampSubscriptionKept: self.handle_subscription_kept,
            ScampHeartbeat: self.handle_heartbeat,
            ScampUnsubscribe: self.handle_unsubscribe,
        }

    def join(self, contact: NodeId) -> None:
        """Subscribe through ``contact``; the new node's PartialView starts
        as just the contact (per the SCAMP paper)."""
        if contact == self.address:
            raise ConfigurationError("a node cannot join through itself")
        self._joined = True
        self._cycles_since_subscribe = 0
        self._cycles_since_heartbeat = 0
        self._add_partial(contact)
        self._host.send(contact, ScampSubscribe(self.address))

    def leave(self) -> None:
        """Graceful unsubscription (SCAMP Section 3.2-style).

        InView members are told to replace our entry with members of our
        PartialView, round-robin; ``c + 1`` of them simply drop the entry,
        which keeps view sizes tracking the shrinking system.
        """
        in_members = sorted(self.in_view)
        replacements = list(self.partial_view)
        keep_unreplaced = min(self._config.c + 1, len(in_members))
        for index, member in enumerate(in_members):
            if index < keep_unreplaced or not replacements:
                replacement = None
            else:
                replacement = replacements[(index - keep_unreplaced) % len(replacements)]
            self._host.send(member, ScampUnsubscribe(self.address, replacement))
        self.partial_view.clear()
        self._partial_set.clear()
        self.in_view.clear()
        self._joined = False

    def gossip_targets(self, fanout: int, exclude: Iterable[NodeId] = ()) -> list[NodeId]:
        exclude_set = set(exclude)
        candidates = [node for node in self.partial_view if node not in exclude_set]
        if fanout >= len(candidates):
            self._rng.shuffle(candidates)
            return candidates
        return self._rng.sample(candidates, fanout)

    def report_failure(self, peer: NodeId) -> None:
        """Expunge a peer detected as failed (only exercised when Scamp is
        paired with an acknowledged gossip layer; the paper's baseline is
        not, so plain runs never call this)."""
        self._remove_partial(peer)
        self.in_view.discard(peer)

    def cycle(self) -> None:
        """Heartbeats, lease countdown and isolation detection."""
        for member in self.partial_view:
            self._host.send(member, ScampHeartbeat(self.address))
        self._cycles_since_heartbeat += 1
        self._cycles_since_subscribe += 1
        if not self._joined:
            return
        lease = self._config.lease_cycles
        if lease is not None and self._cycles_since_subscribe >= lease:
            self._resubscribe()
            return
        if self._cycles_since_heartbeat > self._config.isolation_cycles:
            # Nobody gossips to us any more: we were forgotten.  Rejoin.
            self._resubscribe()

    def out_neighbors(self) -> tuple[NodeId, ...]:
        return tuple(self.partial_view)

    def in_neighbors(self) -> tuple[NodeId, ...]:
        return tuple(sorted(self.in_view))

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        delay = self._rng.uniform(0, self._config.shuffle_period)
        self._timer = self._host.schedule(delay, self._periodic)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Subscription machinery
    # ------------------------------------------------------------------
    def handle_subscribe(self, message: ScampSubscribe) -> None:
        subscriber = message.subscriber
        if subscriber == self.address:
            return
        if not self.partial_view:
            # Bootstrap: the very first subscription lands on a node with
            # an empty PartialView; keep it directly.
            self._keep_subscription(subscriber)
            return
        forwarded = ScampForwardedSubscription(subscriber, 0)
        for member in list(self.partial_view):
            self._host.send(member, forwarded)
        for _ in range(self._config.c):
            target = self._random_partial()
            if target is not None:
                self._host.send(target, forwarded)

    def handle_forwarded_subscription(self, message: ScampForwardedSubscription) -> None:
        subscriber = message.subscriber
        keepable = subscriber != self.address and subscriber not in self._partial_set
        if keepable:
            probability = 1.0 / (1.0 + len(self.partial_view))
            if self._rng.random() < probability:
                self._keep_subscription(subscriber)
                return
        if message.hops + 1 >= self._config.max_forward_hops:
            # Forwarding cap reached: integrate rather than lose the
            # subscription (keeps the overlay connected).
            if keepable:
                self._keep_subscription(subscriber)
            return
        target = self._random_partial(exclude=(subscriber,))
        if target is None:
            if keepable:
                self._keep_subscription(subscriber)
            return
        self._host.send(target, ScampForwardedSubscription(subscriber, message.hops + 1))

    def handle_subscription_kept(self, message: ScampSubscriptionKept) -> None:
        if message.keeper != self.address:
            self.in_view.add(message.keeper)

    def handle_heartbeat(self, message: ScampHeartbeat) -> None:
        self._cycles_since_heartbeat = 0
        self.in_view.add(message.sender)

    def handle_unsubscribe(self, message: ScampUnsubscribe) -> None:
        self._remove_partial(message.leaver)
        self.in_view.discard(message.leaver)
        replacement = message.replacement
        if replacement is not None and replacement != self.address:
            self._add_partial(replacement)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _keep_subscription(self, subscriber: NodeId) -> None:
        self._add_partial(subscriber)
        self.subscriptions_kept += 1
        self._host.send(subscriber, ScampSubscriptionKept(self.address))

    def _resubscribe(self) -> None:
        contact = self._random_partial()
        self._cycles_since_subscribe = 0
        self._cycles_since_heartbeat = 0
        if contact is None:
            return  # fully isolated with an empty view: nothing we can do
        self.resubscriptions += 1
        self._host.send(contact, ScampSubscribe(self.address))

    def _add_partial(self, node: NodeId) -> bool:
        if node == self.address or node in self._partial_set:
            return False
        self._partial_set.add(node)
        self.partial_view.append(node)
        return True

    def _remove_partial(self, node: NodeId) -> bool:
        if node not in self._partial_set:
            return False
        self._partial_set.remove(node)
        self.partial_view.remove(node)
        return True

    def _random_partial(self, exclude: Iterable[NodeId] = ()) -> Optional[NodeId]:
        exclude_set = set(exclude)
        candidates = [node for node in self.partial_view if node not in exclude_set]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _periodic(self) -> None:
        if not self._running:
            return
        self.cycle()
        self._timer = self._host.schedule(self._config.shuffle_period, self._periodic)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Scamp {self.address} partial={len(self.partial_view)} in={len(self.in_view)}>"
        )
