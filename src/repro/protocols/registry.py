"""Declarative protocol-stack registry: one construction path for sim and live.

A *stack* is a membership protocol plus a broadcast layer.  Historically the
simulator built stacks through an ``if/elif`` chain in
``Scenario._build_stack`` while the asyncio runtime hand-wired its own pair
in ``RuntimeNode.start`` — two code paths that could (and once did) drift.
This module replaces both with :class:`StackSpec`: a pair of factories keyed
by the stack's public name.

Factories receive a sans-io :class:`~repro.common.interfaces.Host` plus the
experiment parameter object, so the *same* spec builds the stack over the
discrete-event engine and over real TCP sockets.  The parameter object is
duck-typed (anything exposing ``hyparview`` / ``cyclon`` / ``scamp`` /
``fanout`` / ``reliable`` / ``plumtree`` as needed) to keep this module free
of an import cycle with :mod:`repro.experiments.params`, which derives its
``PROTOCOL_NAMES`` tuple from this registry.

Adding a protocol stack is one :func:`register_stack` call::

    register_stack(StackSpec(
        name="my-stack",
        membership=lambda host, params: MyMembership(host, params.myconfig),
        broadcast=lambda host, membership, params, tracker, on_deliver:
            EagerGossip(host, membership, tracker,
                        fanout=params.fanout, on_deliver=on_deliver),
        runtime=True,   # constructible over the asyncio runtime too
    ))

Registration order is the canonical protocol order (it defines
``PROTOCOL_NAMES``), so append new stacks after the built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..common.errors import ConfigurationError
from ..common.interfaces import Host
from ..core.protocol import HyParView
from ..gossip.byzantine import BRBGossip
from ..gossip.eager import EagerGossip
from ..gossip.flood import FloodBroadcast
from ..gossip.plumtree import Plumtree
from ..gossip.reliable import ReliableGossip
from ..sim.latency import build_latency_model
from .base import PeerSamplingService
from .cyclon import Cyclon
from .cyclon_acked import CyclonAcked
from .scamp import Scamp
from .xbot import LatencyCostOracle, XBot

#: ``(host, params) -> membership`` — the peer-sampling half of a stack.
MembershipFactory = Callable[[Host, Any], PeerSamplingService]

#: ``(host, membership, params, tracker, on_deliver) -> broadcast layer``.
BroadcastFactory = Callable[[Host, PeerSamplingService, Any, Any, Any], Any]


@dataclass(frozen=True, slots=True)
class StackSpec:
    """One named protocol stack: how to build membership and broadcast."""

    name: str
    membership: MembershipFactory
    broadcast: BroadcastFactory
    #: Whether the stack is constructible over the asyncio runtime.  The
    #: simulator can run every stack; the runtime additionally calls
    #: ``start``/``stop`` on the membership layer, which every protocol
    #: provides, so this flag mostly records what has live test coverage.
    runtime: bool = False
    #: Whether the broadcast layer needs the full membership *set* injected
    #: after construction (``broadcast.set_roster(roster)``).  Quorum
    #: layers declare this: their thresholds are roster-relative, which a
    #: partial-view overlay cannot provide by design.  The registry — not
    #: each harness — resolves the capability in :meth:`build`, so the
    #: simulator and the live runtime share one code path.
    needs_roster: bool = False

    def build(
        self,
        membership_host: Host,
        gossip_host: Host,
        params: Any,
        tracker: Any = None,
        on_deliver: Optional[Callable] = None,
        roster: Optional[Sequence[Any]] = None,
    ) -> tuple[PeerSamplingService, Any]:
        """Construct the (membership, broadcast) pair over the given hosts.

        ``roster`` is the full membership set the harness knows; it is
        consumed only by stacks that declare :attr:`needs_roster`, and
        such a stack built without one is a configuration error.
        """
        membership = self.membership(membership_host, params)
        broadcast = self.broadcast(gossip_host, membership, params, tracker, on_deliver)
        if self.needs_roster:
            if roster is None:
                raise ConfigurationError(
                    f"stack {self.name!r} needs the full membership roster; "
                    f"pass roster=... to StackSpec.build"
                )
            broadcast.set_roster(roster)
        return membership, broadcast


_REGISTRY: dict[str, StackSpec] = {}


def register_stack(spec: StackSpec) -> StackSpec:
    """Register a stack under its name; duplicate names are a config bug."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"duplicate stack name: {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_stack(name: str) -> StackSpec:
    """Look up a registered stack; raises with the available names."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown protocol {name!r}; expected one of {stack_names()}"
        )
    return spec


def stack_names() -> tuple[str, ...]:
    """All registered stack names, in registration (canonical) order."""
    return tuple(_REGISTRY)


def runtime_stack_names() -> tuple[str, ...]:
    """The stacks constructible over the asyncio runtime."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.runtime)


# ----------------------------------------------------------------------
# Built-in stacks, in the canonical order PROTOCOL_NAMES always listed.
# ----------------------------------------------------------------------
register_stack(StackSpec(
    name="hyparview",
    membership=lambda host, params: HyParView(host, params.hyparview),
    broadcast=lambda host, membership, params, tracker, on_deliver: FloodBroadcast(
        host, membership, tracker, on_deliver=on_deliver
    ),
    runtime=True,
))

register_stack(StackSpec(
    name="cyclon",
    membership=lambda host, params: Cyclon(host, params.cyclon),
    broadcast=lambda host, membership, params, tracker, on_deliver: EagerGossip(
        host, membership, tracker,
        fanout=params.fanout, acked=False, on_deliver=on_deliver,
    ),
))

register_stack(StackSpec(
    name="cyclon-acked",
    membership=lambda host, params: CyclonAcked(host, params.cyclon),
    broadcast=lambda host, membership, params, tracker, on_deliver: EagerGossip(
        host, membership, tracker,
        fanout=params.fanout, acked=True, on_deliver=on_deliver,
    ),
))

register_stack(StackSpec(
    name="scamp",
    membership=lambda host, params: Scamp(host, params.scamp),
    broadcast=lambda host, membership, params, tracker, on_deliver: EagerGossip(
        host, membership, tracker,
        fanout=params.fanout, acked=False, on_deliver=on_deliver,
    ),
))

register_stack(StackSpec(
    name="plumtree",
    membership=lambda host, params: HyParView(host, params.hyparview),
    broadcast=lambda host, membership, params, tracker, on_deliver: Plumtree(
        host, membership, tracker,
        config=getattr(params, "plumtree", None), on_deliver=on_deliver,
    ),
    runtime=True,
))

# HyParView's flood discipline (fanout 0 = whole active view) over
# *unreliable* transport, with per-copy acks and retransmit timers
# supplying the reliability and the failure signal instead of TCP.
register_stack(StackSpec(
    name="hyparview-reliable",
    membership=lambda host, params: HyParView(host, params.hyparview),
    broadcast=lambda host, membership, params, tracker, on_deliver: ReliableGossip(
        host, membership, tracker, fanout=0,
        ack_timeout=params.reliable.ack_timeout,
        backoff=params.reliable.backoff,
        max_retries=params.reliable.max_retries,
        on_deliver=on_deliver,
    ),
    runtime=True,
))

# CyclonAcked's membership (it reacts to reported failures) under fanout
# gossip with acks and retransmissions.
register_stack(StackSpec(
    name="cyclon-reliable",
    membership=lambda host, params: CyclonAcked(host, params.cyclon),
    broadcast=lambda host, membership, params, tracker, on_deliver: ReliableGossip(
        host, membership, tracker, fanout=params.fanout,
        ack_timeout=params.reliable.ack_timeout,
        backoff=params.reliable.backoff,
        max_retries=params.reliable.max_retries,
        on_deliver=on_deliver,
    ),
))


# Bracha/SBRB Byzantine reliable broadcast over the acked-datagram
# discipline, with HyParView supplying the failure-repair substrate.
# ``needs_roster`` makes the registry inject the full membership set
# post-construction — quorum thresholds are roster-relative, which a
# partial-view overlay cannot provide by design.
register_stack(StackSpec(
    name="hyparview-brb",
    membership=lambda host, params: HyParView(host, params.hyparview),
    broadcast=lambda host, membership, params, tracker, on_deliver: BRBGossip(
        host, membership, tracker,
        config=getattr(params, "brb", None),
        on_deliver=on_deliver,
    ),
    needs_roster=True,
))

register_stack(StackSpec(
    name="cyclon-brb",
    membership=lambda host, params: CyclonAcked(host, params.cyclon),
    broadcast=lambda host, membership, params, tracker, on_deliver: BRBGossip(
        host, membership, tracker,
        config=getattr(params, "brb", None),
        on_deliver=on_deliver,
    ),
    needs_roster=True,
))


# X-BOT: HyParView plus topology-aware optimisation swaps, with the link
# cost oracle reading the jitter-free base of whatever latency world model
# the parameters select.  Parameter bags without a ``latency_model`` field
# (the live runtime's) get the constant model, whose uniform costs make
# the optimiser a no-op — safe degradation to plain HyParView.
register_stack(StackSpec(
    name="hyparview-xbot",
    membership=lambda host, params: XBot(
        host, params.hyparview,
        oracle=LatencyCostOracle(build_latency_model(params)),
        xbot=getattr(params, "xbot", None),
    ),
    broadcast=lambda host, membership, params, tracker, on_deliver: FloodBroadcast(
        host, membership, tracker, on_deliver=on_deliver
    ),
    runtime=True,
))


__all__ = [
    "StackSpec",
    "get_stack",
    "register_stack",
    "runtime_stack_names",
    "stack_names",
]
