"""The peer-sampling service contract.

Section 1 of the paper frames a membership protocol as a *peer sampling
service* [8]: the layer a gossip protocol asks for targets.  Every
membership implementation in this library — HyParView itself and the
Cyclon / CyclonAcked / Scamp baselines — implements this interface, so the
gossip layers, the metrics collectors and the experiment harness are
completely protocol-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Iterable

from ..common.ids import NodeId


class PeerSamplingService(ABC):
    """Abstract membership protocol as seen by the layers above it."""

    #: Human-readable protocol name used in reports and registries.
    name: ClassVar[str] = "abstract"

    @property
    @abstractmethod
    def address(self) -> NodeId:
        """Identity of the node this instance runs on."""

    @abstractmethod
    def join(self, contact: NodeId) -> None:
        """Enter the overlay through ``contact`` (a node already inside)."""

    @abstractmethod
    def gossip_targets(self, fanout: int, exclude: Iterable[NodeId] = ()) -> list[NodeId]:
        """Peers the broadcast layer should forward a message to.

        Probabilistic protocols return ``fanout`` random members of their
        view; HyParView returns the *whole* active view (deterministic
        flooding — its fanout is fixed by the view size, Section 4.1).
        ``exclude`` carries the peer the message arrived from.
        """

    @abstractmethod
    def report_failure(self, peer: NodeId) -> None:
        """Upper-layer failure detection signal.

        Called when a reliable/acknowledged send to ``peer`` failed.  The
        protocol reacts per its semantics: HyParView replaces the peer from
        its passive view; CyclonAcked expunges it from the partial view;
        protocols without failure handling may ignore the signal.
        """

    @abstractmethod
    def cycle(self) -> None:
        """Execute one periodic membership round (shuffle, lease, ...).

        The experiment harness calls this in lock-step across all nodes,
        mirroring the paper's "membership cycles"; live deployments instead
        call :meth:`start` once.
        """

    @abstractmethod
    def out_neighbors(self) -> tuple[NodeId, ...]:
        """Current overlay out-edges (gossip-target view) for analytics."""

    def start(self) -> None:
        """Begin self-driven periodic behaviour (optional for simulations)."""

    def stop(self) -> None:
        """Stop self-driven periodic behaviour."""
