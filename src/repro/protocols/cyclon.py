"""Cyclon membership protocol (Voulgaris, Gavidia & van Steen, 2005).

The paper's primary cyclic baseline (Section 2.2/2.4): each node keeps a
fixed-length partial view of *aged* entries and periodically performs an
enhanced shuffle with the **oldest** peer in its view.  Joins are fixed
length random walks that preserve every node's in-degree.

Parameters follow Section 5.1 of the HyParView paper: view length 35
(= HyParView's active + passive sizes), shuffle length 14, random-walk
time-to-live 5.

Plain Cyclon performs no failure detection during dissemination — its only
self-healing is that a peer that is shuffled *to* and never answers has
already been removed from the initiator's view.  That is exactly the
behaviour the HyParView paper exploits in its failure experiments;
:class:`~repro.protocols.cyclon_acked.CyclonAcked` adds the
acknowledgment-based detection the authors built for comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..common.errors import ConfigurationError, ProtocolError
from ..common.ids import NodeId
from ..common.interfaces import Host, TimerHandle
from ..common.messages import Message, register_message
from .base import PeerSamplingService

#: Wire representation of a view entry: ``(node, age)``.
WireEntry = tuple[NodeId, int]


@dataclass(frozen=True, slots=True)
class CyclonConfig:
    """Cyclon tuning knobs (defaults: Section 5.1 of the HyParView paper).

    Attributes:
        view_size: Fixed partial-view length (35).
        shuffle_length: Entries exchanged per shuffle (14), including the
            initiator's own fresh entry.
        walk_ttl: Hop count of join random walks (5).
        join_walks: Walks the introducer launches per join; the Cyclon
            join fires one walk per view slot so the joiner's view fills
            to ``view_size`` (``None`` means "use ``view_size``").
        shuffle_period: Period for self-driven cycles (live mode only).
    """

    view_size: int = 35
    shuffle_length: int = 14
    walk_ttl: int = 5
    join_walks: Optional[int] = None
    shuffle_period: float = 10.0

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigurationError(f"view size must be >= 1: {self.view_size}")
        if not 1 <= self.shuffle_length <= self.view_size:
            raise ConfigurationError(
                f"shuffle length must be in [1, view size]: {self.shuffle_length}"
            )
        if self.walk_ttl < 0:
            raise ConfigurationError(f"walk TTL must be >= 0: {self.walk_ttl}")
        if self.join_walks is not None and self.join_walks < 1:
            raise ConfigurationError(f"join walks must be >= 1: {self.join_walks}")
        if self.shuffle_period <= 0:
            raise ConfigurationError(f"shuffle period must be positive: {self.shuffle_period}")

    @property
    def effective_join_walks(self) -> int:
        return self.join_walks if self.join_walks is not None else self.view_size


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@register_message("cyclon.join")
@dataclass(frozen=True, slots=True)
class CyclonJoin(Message):
    """New node announces itself to an introducer."""

    joiner: NodeId


@register_message("cyclon.join_walk")
@dataclass(frozen=True, slots=True)
class CyclonJoinWalk(Message):
    """Random walk carrying a join; ends by swapping the joiner into the
    endpoint's view and handing the displaced entry to the joiner."""

    joiner: NodeId
    ttl: int
    sender: NodeId


@register_message("cyclon.join_grant")
@dataclass(frozen=True, slots=True)
class CyclonJoinGrant(Message):
    """Walk endpoint gives the joiner an entry for its fresh view.

    ``granted`` is the displaced entry (or the endpoint itself during
    bootstrap when it had no entry to displace)."""

    sender: NodeId
    granted: NodeId
    age: int


@register_message("cyclon.shuffle_request")
@dataclass(frozen=True, slots=True)
class CyclonShuffleRequest(Message):
    """Initiator's half of the enhanced shuffle."""

    sender: NodeId
    entries: tuple[WireEntry, ...]


@register_message("cyclon.shuffle_reply")
@dataclass(frozen=True, slots=True)
class CyclonShuffleReply(Message):
    """Receiver's half of the enhanced shuffle."""

    sender: NodeId
    entries: tuple[WireEntry, ...]


# ----------------------------------------------------------------------
# Aged view container
# ----------------------------------------------------------------------
class AgedView:
    """Fixed-capacity view of ``(node, age)`` entries with O(1) sampling."""

    __slots__ = ("capacity", "_nodes", "_ages")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ProtocolError(f"view capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._nodes: list[NodeId] = []
        self._ages: dict[NodeId, int] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._ages

    def __iter__(self):
        return iter(self._nodes)

    @property
    def is_full(self) -> bool:
        return len(self._nodes) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._nodes)

    def members(self) -> tuple[NodeId, ...]:
        return tuple(self._nodes)

    def entries(self) -> tuple[WireEntry, ...]:
        return tuple((node, self._ages[node]) for node in self._nodes)

    def age_of(self, node: NodeId) -> int:
        try:
            return self._ages[node]
        except KeyError:
            raise ProtocolError(f"node not in view: {node}") from None

    def add(self, node: NodeId, age: int = 0) -> None:
        if node in self._ages:
            raise ProtocolError(f"node already in view: {node}")
        if self.is_full:
            raise ProtocolError(f"view full ({self.capacity}); evict before adding {node}")
        self._ages[node] = age
        self._nodes.append(node)

    def remove(self, node: NodeId) -> int:
        """Remove ``node``; returns the age it had."""
        age = self._ages.pop(node, None)
        if age is None:
            raise ProtocolError(f"node not in view: {node}")
        self._nodes.remove(node)
        return age

    def discard(self, node: NodeId) -> bool:
        if node not in self._ages:
            return False
        self.remove(node)
        return True

    def increment_ages(self) -> None:
        for node in self._nodes:
            self._ages[node] += 1

    def oldest(self) -> Optional[NodeId]:
        if not self._nodes:
            return None
        return max(self._nodes, key=lambda node: (self._ages[node], node))

    def random_member(self, rng: random.Random, exclude: Iterable[NodeId] = ()) -> Optional[NodeId]:
        exclude_set = set(exclude)
        candidates = [node for node in self._nodes if node not in exclude_set]
        if not candidates:
            return None
        return rng.choice(candidates)

    def sample_members(self, rng: random.Random, k: int, exclude: Iterable[NodeId] = ()) -> list[NodeId]:
        exclude_set = set(exclude)
        candidates = [node for node in self._nodes if node not in exclude_set]
        if k >= len(candidates):
            rng.shuffle(candidates)
            return candidates
        return rng.sample(candidates, k)

    def sample_entries(self, rng: random.Random, k: int, exclude: Iterable[NodeId] = ()) -> list[WireEntry]:
        return [(node, self._ages[node]) for node in self.sample_members(rng, k, exclude)]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class Cyclon(PeerSamplingService):
    """One node's Cyclon instance."""

    name = "cyclon"

    def __init__(self, host: Host, config: Optional[CyclonConfig] = None) -> None:
        self._host = host
        self._config = config if config is not None else CyclonConfig()
        self._rng = host.rng
        self.view = AgedView(self._config.view_size)
        # Entries sent in the last shuffle request, for the replacement rule.
        self._last_sent: tuple[WireEntry, ...] = ()
        self._timer: Optional[TimerHandle] = None
        self._running = False
        self.shuffles_initiated = 0
        self.shuffles_answered = 0

    # ------------------------------------------------------------------
    # PeerSamplingService surface
    # ------------------------------------------------------------------
    @property
    def address(self) -> NodeId:
        return self._host.address

    @property
    def config(self) -> CyclonConfig:
        return self._config

    def handlers(self) -> dict[type, Callable[[Message], None]]:
        return {
            CyclonJoin: self.handle_join,
            CyclonJoinWalk: self.handle_join_walk,
            CyclonJoinGrant: self.handle_join_grant,
            CyclonShuffleRequest: self.handle_shuffle_request,
            CyclonShuffleReply: self.handle_shuffle_reply,
        }

    def join(self, contact: NodeId) -> None:
        if contact == self.address:
            raise ProtocolError("a node cannot join through itself")
        self._host.send(contact, CyclonJoin(self.address))

    def gossip_targets(self, fanout: int, exclude: Iterable[NodeId] = ()) -> list[NodeId]:
        """``fanout`` members chosen uniformly from the partial view."""
        return self.view.sample_members(self._rng, fanout, exclude)

    def report_failure(self, peer: NodeId) -> None:
        """Plain Cyclon has no dissemination-time failure detection — the
        signal is deliberately ignored (see the module docstring)."""

    def cycle(self) -> None:
        """One shuffle round: age entries, swap with the oldest peer."""
        self.shuffle_once()

    def out_neighbors(self) -> tuple[NodeId, ...]:
        return self.view.members()

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        delay = self._rng.uniform(0, self._config.shuffle_period)
        self._timer = self._host.schedule(delay, self._periodic)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Join: in-degree-preserving random walks
    # ------------------------------------------------------------------
    def handle_join(self, message: CyclonJoin) -> None:
        joiner = message.joiner
        if joiner == self.address:
            return
        if len(self.view) == 0:
            # Bootstrap: the introducer is the only node the joiner can
            # link to.  Add it directly and grant ourselves back.
            if not self.view.is_full and joiner not in self.view:
                self.view.add(joiner, 0)
            self._host.send(joiner, CyclonJoinGrant(self.address, self.address, 0))
            return
        # One walk per view slot; first hops are drawn with replacement so
        # a sparsely connected introducer still launches a full set.
        walk = CyclonJoinWalk(joiner, self._config.walk_ttl, self.address)
        for _ in range(self._config.effective_join_walks):
            target = self.view.random_member(self._rng, exclude=(joiner,))
            if target is None:
                break
            self._host.send(target, walk)

    def handle_join_walk(self, message: CyclonJoinWalk) -> None:
        joiner = message.joiner
        if joiner == self.address:
            return
        if message.ttl > 0:
            target = self.view.random_member(self._rng, exclude=(joiner, message.sender))
            if target is not None:
                self._host.send(target, CyclonJoinWalk(joiner, message.ttl - 1, self.address))
                return
        # Walk ends here.  Steady state (full view): swap the joiner in and
        # hand the displaced entry to the joiner — the in-degree-preserving
        # rule of the Cyclon paper.  While this node's view still has free
        # slots (bootstrap), add the joiner without displacing and grant a
        # *copy* instead, so the young overlay gains edges rather than
        # endlessly redistributing the few it has.
        if joiner in self.view:
            granted = self.view.random_member(self._rng, exclude=(joiner,))
            if granted is not None:
                self._host.send(
                    joiner, CyclonJoinGrant(self.address, granted, self.view.age_of(granted))
                )
            return
        if not self.view.is_full:
            self.view.add(joiner, 0)
            granted = self.view.random_member(self._rng, exclude=(joiner,))
            if granted is None:
                granted = self.address
                age = 0
            else:
                age = self.view.age_of(granted)
            self._host.send(joiner, CyclonJoinGrant(self.address, granted, age))
            return
        displaced = self.view.random_member(self._rng)
        age = self.view.remove(displaced)
        self.view.add(joiner, 0)
        self._host.send(joiner, CyclonJoinGrant(self.address, displaced, age))

    def handle_join_grant(self, message: CyclonJoinGrant) -> None:
        granted = message.granted
        if granted == self.address or granted in self.view:
            return
        if self.view.is_full:
            return  # view already filled by earlier grants
        self.view.add(granted, message.age)

    # ------------------------------------------------------------------
    # Enhanced shuffle
    # ------------------------------------------------------------------
    def shuffle_once(self) -> None:
        self.view.increment_ages()
        oldest = self.view.oldest()
        if oldest is None:
            return
        # Remove the target up front: if it is dead and never answers, the
        # stale entry is gone — Cyclon's only healing mechanism.
        self.view.remove(oldest)
        sample = self.view.sample_entries(self._rng, self._config.shuffle_length - 1)
        to_send = tuple([(self.address, 0)] + sample)
        self._last_sent = to_send
        self.shuffles_initiated += 1
        self._host.send(oldest, CyclonShuffleRequest(self.address, to_send))

    def handle_shuffle_request(self, message: CyclonShuffleRequest) -> None:
        self.shuffles_answered += 1
        reply_sample = tuple(self.view.sample_entries(self._rng, self._config.shuffle_length))
        self._host.send(message.sender, CyclonShuffleReply(self.address, reply_sample))
        self._integrate(message.entries, sent=reply_sample)

    def handle_shuffle_reply(self, message: CyclonShuffleReply) -> None:
        self._integrate(message.entries, sent=self._last_sent)

    def _integrate(self, received: tuple[WireEntry, ...], sent: tuple[WireEntry, ...]) -> None:
        """Cyclon's merge rule: discard self and duplicates, fill empty
        slots first, then replace entries that were sent to the peer."""
        replaceable = [node for node, _age in sent if node != self.address]
        for node, age in received:
            if node == self.address or node in self.view:
                continue
            if self.view.is_full:
                victim = None
                while replaceable:
                    candidate = replaceable.pop()
                    if candidate in self.view:
                        victim = candidate
                        break
                if victim is None:
                    victim = self.view.random_member(self._rng)
                    if victim is None:  # pragma: no cover - full implies non-empty
                        return
                self.view.remove(victim)
            self.view.add(node, age)

    def _periodic(self) -> None:
        if not self._running:
            return
        self.cycle()
        self._timer = self._host.schedule(self._config.shuffle_period, self._periodic)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Cyclon {self.address} view={len(self.view)}/{self.view.capacity}>"
