"""Ablations — shuffle walk TTL and the flood resend extension.

* The paper never prints the shuffle walk's time-to-live; the sweep shows
  how walk length trades passive-view freshness (live entries) against
  overlay quality and post-failure recovery.
* ``resend_on_repair`` is this library's extension: when a flood copy hits
  a dead peer, the payload is retransmitted towards the repaired active
  view.  The bench quantifies reliability gained vs. extra traffic during
  the repair transient.

Registry scenarios: ``ablation_shuffle_ttl`` and ``ablation_flood_resend``.
"""


def bench_ablation_shuffle_ttl(benchmark, bench_scenario):
    bench_scenario(benchmark, "ablation_shuffle_ttl", messages=30)


def bench_ablation_flood_resend(benchmark, bench_scenario):
    bench_scenario(benchmark, "ablation_flood_resend", messages=50)
