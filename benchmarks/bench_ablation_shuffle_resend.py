"""Ablations — shuffle walk TTL and the flood resend extension.

* The paper never prints the shuffle walk's time-to-live; the sweep shows
  how walk length trades passive-view freshness (live entries) against
  overlay quality and post-failure recovery.
* ``resend_on_repair`` is this library's extension: when a flood copy hits
  a dead peer, the payload is retransmitted towards the repaired active
  view.  The bench quantifies reliability gained vs. extra traffic during
  the repair transient.
"""

from conftest import run_once

from repro.experiments.ablations import run_resend_ablation, run_shuffle_ttl_ablation
from repro.experiments.reporting import format_table

TTLS = (1, 3, 6, 9)


def bench_ablation_shuffle_ttl(benchmark, params, emit):
    def experiment():
        return run_shuffle_ttl_ablation(params, TTLS, failure_fraction=0.6, messages=30)

    points = run_once(benchmark, experiment)
    emit(
        "ablation_shuffle_ttl",
        format_table(
            ["shuffle TTL", "avg clustering", "passive in-degree CV", "recovery avg"],
            [
                [p.shuffle_ttl, p.average_clustering, p.passive_balance,
                 p.recovery_average]
                for p in points
            ],
            title=f"Ablation — shuffle walk TTL (n={params.n}, 60% failures)",
        ),
    )
    # Any TTL must keep the passive view usable enough to recover most of
    # the overlay; the sweep is reported for inspection.
    for point in points:
        assert point.recovery_average > 0.5
        assert point.passive_balance < 2.0  # representation stays bounded


def bench_ablation_flood_resend(benchmark, params, emit):
    def experiment():
        return run_resend_ablation(params, failure_fraction=0.8, messages=50)

    points = run_once(benchmark, experiment)
    baseline = next(p for p in points if not p.resend_on_repair)
    resend = next(p for p in points if p.resend_on_repair)
    emit(
        "ablation_flood_resend",
        format_table(
            ["resend on repair", "avg reliability", "first-10 avg", "payload transmissions"],
            [
                [str(p.resend_on_repair), p.average_reliability, p.first10_average,
                 p.data_transmissions]
                for p in points
            ],
            title=f"Ablation — flood resend extension at 80% failures (n={params.n})",
        ),
    )
    # The extension buys transient reliability with extra payload traffic.
    assert resend.first10_average >= baseline.first10_average - 0.02
    assert resend.data_transmissions >= baseline.data_transmissions
