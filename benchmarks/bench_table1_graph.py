"""Table 1 — overlay graph properties after 50 stabilisation cycles.

Paper (10 000 nodes):

                 avg clustering   avg shortest   max hops
                 coefficient      path           to delivery
    Cyclon       0.006836         2.60426        10.6
    Scamp        0.022476         3.35398        14.1
    HyParView    0.00092          6.38542         9.0

Shapes to reproduce: HyParView's clustering is an order of magnitude below
the baselines'; its shortest path is the *longest* (tiny active view) yet
its delivery hop count is the *smallest* (every path of the overlay is
used); HyParView numbers concern the active view.
"""

from conftest import run_once

from repro.experiments.graphprops import TABLE1_PROTOCOLS, run_graph_properties
from repro.experiments.reporting import format_table

PAPER_ROWS = {
    "cyclon": (0.006836, 2.60426, 10.6),
    "scamp": (0.022476, 3.35398, 14.1),
    "hyparview": (0.00092, 6.38542, 9.0),
}


def bench_table1_graph_properties(benchmark, cache, params, emit):
    def experiment():
        return {
            protocol: run_graph_properties(
                protocol, params, messages=50, path_sample_sources=100,
                base=cache.base(protocol),
            )
            for protocol in TABLE1_PROTOCOLS
        }

    results = run_once(benchmark, experiment)

    rows = []
    for protocol in TABLE1_PROTOCOLS:
        r = results[protocol]
        paper = PAPER_ROWS[protocol]
        rows.append(
            [
                protocol,
                f"{r.average_clustering:.6f}",
                f"{r.path_stats.average:.5f}",
                f"{r.max_hops_to_delivery:.1f}",
                f"{paper[0]:.6f} / {paper[1]:.5f} / {paper[2]:.1f}",
            ]
        )
    emit(
        "table1_graph_properties",
        format_table(
            ["protocol", "avg clustering", "avg shortest path", "max hops", "paper (10k)"],
            rows,
            title=f"Table 1 — graph properties after stabilisation (n={params.n})",
        ),
    )

    hv, cy, sc = results["hyparview"], results["cyclon"], results["scamp"]
    # Shape 1: HyParView clusters far less than both baselines.
    assert hv.average_clustering < cy.average_clustering / 2
    assert hv.average_clustering < sc.average_clustering / 2
    # Shape 2: HyParView's shortest path is the longest of the three.
    assert hv.path_stats.average > cy.path_stats.average
    assert hv.path_stats.average > sc.path_stats.average
    # Shape 3: yet HyParView delivers within the fewest hops.
    assert hv.max_hops_to_delivery <= cy.max_hops_to_delivery
    assert hv.max_hops_to_delivery <= sc.max_hops_to_delivery
    # Sanity: all overlays connected, HyParView symmetric.
    assert hv.connected and hv.symmetry_fraction == 1.0
