"""Table 1 — overlay graph properties after 50 stabilisation cycles.

Paper (10 000 nodes):

                 avg clustering   avg shortest   max hops
                 coefficient      path           to delivery
    Cyclon       0.006836         2.60426        10.6
    Scamp        0.022476         3.35398        14.1
    HyParView    0.00092          6.38542         9.0

Shapes to reproduce: HyParView's clustering is an order of magnitude below
the baselines'; its shortest path is the *longest* (tiny active view) yet
its delivery hop count is the *smallest* (every path of the overlay is
used).  Registry scenario: ``table1_graph``.
"""


def bench_table1_graph_properties(benchmark, bench_scenario):
    bench_scenario(benchmark, "table1_graph", messages=50)
