"""Figure 3 — per-message reliability evolution after massive failures.

Paper (panels a-f: 20/40/60/70/80/95%): HyParView recovers almost
immediately (every active view is tested by a single broadcast);
CyclonAcked needs ~25 messages; Cyclon and Scamp do not recover without
membership cycles.  Above 80% all curves start near 0%.
"""

from conftest import run_once

from repro.experiments.failures import (
    FIGURE3_FRACTIONS,
    PAPER_PROTOCOLS,
    run_failure_experiment,
)
from repro.experiments.reporting import format_series, sparkline


def bench_fig3_recovery_curves(benchmark, cache, params, message_count, emit):
    def experiment():
        results = {}
        for protocol in PAPER_PROTOCOLS:
            base = cache.base(protocol)
            for fraction in FIGURE3_FRACTIONS:
                results[(protocol, fraction)] = run_failure_experiment(
                    protocol, params, fraction, messages=message_count, base=base
                )
        return results

    results = run_once(benchmark, experiment)

    blocks = [
        f"Figure 3 — reliability per message after failures (n={params.n}, "
        f"{message_count} msgs per panel)"
    ]
    for fraction in FIGURE3_FRACTIONS:
        blocks.append(f"\n--- panel: {fraction:.0%} failures ---")
        for protocol in PAPER_PROTOCOLS:
            result = results[(protocol, fraction)]
            blocks.append(
                f"{protocol:13s} avg={result.average:.3f} "
                f"tail10={result.tail_average(10):.3f}  {sparkline(result.series)}"
            )
        hv = results[("hyparview", fraction)]
        blocks.append("hyparview series:")
        blocks.append(format_series(hv.series))
    emit("fig3_recovery", "\n".join(blocks))

    # Paper shape: HyParView's healed tail is ~100% for panels <= 80%.
    for fraction in (0.2, 0.4, 0.6, 0.7, 0.8):
        assert results[("hyparview", fraction)].tail_average(10) > 0.95
    # CyclonAcked recovers too (tail), but needs a few dozen messages: its
    # average trails its own tail at heavy failure levels.
    acked_80 = results[("cyclon-acked", 0.8)]
    assert acked_80.tail_average(10) > acked_80.average
    # Plain Cyclon/Scamp do not recover within the batch at 60%+.
    assert results[("cyclon", 0.6)].tail_average(10) < 0.9
    assert results[("scamp", 0.6)].tail_average(10) < 0.9
    # Above 80%: early messages near zero for every protocol.
    for protocol in PAPER_PROTOCOLS:
        assert results[(protocol, 0.95)].series[0] < 0.3
