"""Figure 3 — per-message reliability evolution after massive failures.

Paper (panels a-f: 20/40/60/70/80/95%): HyParView recovers almost
immediately (every active view is tested by a single broadcast);
CyclonAcked needs ~25 messages; Cyclon and Scamp do not recover without
membership cycles.  Above 80% all curves start near 0%.  Registry
scenario: ``fig3_recovery``.
"""


def bench_fig3_recovery_curves(benchmark, bench_scenario):
    bench_scenario(benchmark, "fig3_recovery")
