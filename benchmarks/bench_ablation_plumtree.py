"""Ablation — Plumtree over HyParView vs. plain flooding (extension).

Plumtree is the dissemination protocol HyParView was designed to carry.
After the tree converges, each broadcast sends ~n-1 payloads (tree edges)
plus id-only IHAVE advertisements, instead of the flood's ~sum-of-view-
sizes payload copies; reliability stays atomic on a stable overlay.
"""

from conftest import run_once

from repro.experiments.scenario import Scenario
from repro.experiments.reporting import format_table
from repro.metrics.reliability import average_reliability

WARMUP = 5
MEASURED = 20


def _payloads(scenario, type_name, action):
    before = scenario.network.stats.messages_by_type.get(type_name, 0)
    result = action()
    after = scenario.network.stats.messages_by_type.get(type_name, 0)
    return result, after - before


def bench_ablation_plumtree_vs_flood(benchmark, params, emit):
    def experiment():
        rows = {}
        for protocol, payload_type in (("hyparview", "GossipData"), ("plumtree", "PlumtreeGossip")):
            scenario = Scenario(protocol, params)
            scenario.build_overlay()
            scenario.stabilize()
            scenario.send_broadcasts(WARMUP)  # converge the tree / no-op for flood
            summaries, payloads = _payloads(
                scenario, payload_type, lambda s=scenario: s.send_broadcasts(MEASURED)
            )
            control = scenario.network.stats.messages_by_type.get("PlumtreeIHave", 0)
            rows[protocol] = {
                "reliability": average_reliability(summaries),
                "payloads_per_broadcast": payloads / MEASURED,
                "ihave_total": control if protocol == "plumtree" else 0,
            }
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "ablation_plumtree",
        format_table(
            ["layer", "avg reliability", "payload msgs / broadcast", "n"],
            [
                ["flood", rows["hyparview"]["reliability"],
                 rows["hyparview"]["payloads_per_broadcast"], params.n],
                ["plumtree", rows["plumtree"]["reliability"],
                 rows["plumtree"]["payloads_per_broadcast"], params.n],
            ],
            title="Ablation — Plumtree payload savings vs flood (stable overlay)",
        ),
    )
    # Both atomic on a stable overlay; Plumtree sends far fewer payloads.
    assert rows["hyparview"]["reliability"] == 1.0
    assert rows["plumtree"]["reliability"] == 1.0
    assert (
        rows["plumtree"]["payloads_per_broadcast"]
        < 0.6 * rows["hyparview"]["payloads_per_broadcast"]
    )
    # The tree converges to roughly n-1 payload transmissions.
    assert rows["plumtree"]["payloads_per_broadcast"] < 1.25 * params.n
