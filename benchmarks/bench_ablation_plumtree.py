"""Ablation — Plumtree over HyParView vs. plain flooding (extension).

Plumtree is the dissemination protocol HyParView was designed to carry.
After the tree converges, each broadcast sends ~n-1 payloads (tree edges)
plus id-only IHAVE advertisements, instead of the flood's ~sum-of-view-
sizes payload copies; reliability stays atomic on a stable overlay.
Registry scenario: ``ablation_plumtree``.
"""


def bench_ablation_plumtree_vs_flood(benchmark, bench_scenario):
    bench_scenario(benchmark, "ablation_plumtree", messages=20)
