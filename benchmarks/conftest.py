"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper.  Run:

    pytest benchmarks/ --benchmark-only -s

Scale knobs (environment):

* ``REPRO_BENCH_N``        — system size (default 500; paper: 10 000)
* ``REPRO_BENCH_MESSAGES`` — messages per measurement batch (default 100;
  paper: 1 000 for Figure 2)
* ``REPRO_BENCH_PAPER=1``  — exact paper scale (hours of CPU)
* ``REPRO_BENCH_SEED``     — root seed (default 42)

Every benchmark prints the rows/series the paper reports and appends the
same text to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
it verbatim.  Overlay construction + stabilisation is cached per protocol
for the whole session; experiments run on clones.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.failures import stabilized_scenario
from repro.experiments.params import ExperimentParams, bench_message_count, bench_params
from repro.experiments.scenario import Scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def params() -> ExperimentParams:
    return bench_params()


@pytest.fixture(scope="session")
def message_count() -> int:
    return bench_message_count()


class ScenarioCache:
    """Session cache: stabilise each protocol once, clone per experiment."""

    def __init__(self, params: ExperimentParams) -> None:
        self._params = params
        self._cache: dict[str, Scenario] = {}

    def base(self, protocol: str) -> Scenario:
        if protocol not in self._cache:
            self._cache[protocol] = stabilized_scenario(protocol, self._params)
        return self._cache[protocol]

    def fork(self, protocol: str) -> Scenario:
        return self.base(protocol).clone()


@pytest.fixture(scope="session")
def cache(params: ExperimentParams) -> ScenarioCache:
    return ScenarioCache(params)


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        block = f"\n===== {name} =====\n{text}\n"
        print(block)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
