"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper by
resolving its scenario from the tiered registry
(:mod:`repro.experiments.registry`) and running it at bench scale.  Run:

    pytest benchmarks/ --benchmark-only -s

Scale knobs (environment):

* ``REPRO_BENCH_N``        — system size (default 500; paper: 10 000)
* ``REPRO_BENCH_MESSAGES`` — messages per measurement batch (default 100;
  paper: 1 000 for Figure 2)
* ``REPRO_BENCH_PAPER=1``  — exact paper scale (hours of CPU)
* ``REPRO_BENCH_SEED``     — root seed (default 42)

Every benchmark prints the rows/series the paper reports, appends the same
text to ``benchmarks/results/<scenario>.txt`` and persists the scenario's
versioned ``BENCH_<scenario>.json`` artifact, then runs the scenario's
registered shape checks (the paper's qualitative claims).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.params import ExperimentParams, bench_message_count, bench_params
from repro.experiments.registry import RunContext, TierConfig, get_scenario
from repro.experiments.reporting import ARTIFACT_SCHEMA, write_artifact

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def params() -> ExperimentParams:
    return bench_params()


@pytest.fixture(scope="session")
def message_count() -> int:
    return bench_message_count()


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        block = f"\n===== {name} =====\n{text}\n"
        print(block)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_scenario(params, message_count, emit):
    """Run one registered scenario at bench scale, report and check it.

    The registry's ``paper`` tier supplies the experiment's grids; scale
    (``n``, messages, seed) comes from the environment knobs above, so the
    default run fits a laptop while ``REPRO_BENCH_PAPER=1`` reproduces the
    DSN'07 figures exactly.
    """

    def _run(benchmark, scenario_id: str, *, messages: int | None = None,
             extra: dict | None = None):
        spec = get_scenario(scenario_id)
        paper_tier = spec.tier("paper")
        config = TierConfig(
            n=params.n,
            messages=messages if messages is not None else message_count,
            stabilization_cycles=params.stabilization_cycles,
            paper_params=os.environ.get("REPRO_BENCH_PAPER", "") == "1",
            extra={**paper_tier.extra, **(extra or {})},
        )
        context = RunContext(
            scenario_id=scenario_id,
            tier="paper",
            config=config,
            replicate=0,
            seed=params.seed,
        )
        result = run_once(benchmark, lambda: spec.run(context))
        emit(scenario_id, spec.render(result, config.n))
        write_artifact(
            RESULTS_DIR,
            {
                "schema": ARTIFACT_SCHEMA,
                "scenario": spec.id,
                "group": spec.group,
                "title": spec.title,
                "tier": "bench",
                "root_seed": params.seed,
                "config": {
                    "n": config.n,
                    "messages": config.messages,
                    "replicates": 1,
                    "stabilization_cycles": config.stabilization_cycles,
                    "paper_params": config.paper_params,
                    "extra": dict(config.extra),
                },
                "replicates": [
                    {"replicate": 0, "seed": params.seed, "result": result}
                ],
            },
        )
        if spec.check is not None:
            spec.check(result, config.n)
        return result

    return _run
