"""Extension benchmark — protocol message overhead on identical overlays.

Answers the paper's future-work question at the protocol level: what does
HyParView's maintenance cost per node per cycle, and what does each
broadcast cost, compared with the baselines and with Plumtree?  Registry
scenario: ``overhead``.
"""


def bench_overhead_accounting(benchmark, bench_scenario):
    bench_scenario(benchmark, "overhead", messages=20)
