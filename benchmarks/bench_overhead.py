"""Extension benchmark — protocol message overhead on identical overlays.

Answers the paper's future-work question at the protocol level: what does
HyParView's maintenance cost per node per cycle, and what does each
broadcast cost, compared with the baselines and with Plumtree?
"""

from conftest import run_once

from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.reporting import format_table

PROTOCOLS = ("hyparview", "plumtree", "cyclon", "cyclon-acked", "scamp")


def bench_overhead_accounting(benchmark, cache, params, emit):
    def experiment():
        return {
            protocol: run_overhead_experiment(
                protocol, params, cycles=10, messages=20, base=cache.base(protocol)
            )
            for protocol in PROTOCOLS
        }

    results = run_once(benchmark, experiment)
    rows = [
        [
            protocol,
            r.control_per_node_cycle,
            r.data_per_broadcast,
            r.broadcast_control_per_broadcast,
        ]
        for protocol, r in results.items()
    ]
    breakdown_lines = []
    for protocol, r in results.items():
        top = sorted(r.control_breakdown.items(), key=lambda kv: -kv[1])[:4]
        rendered = ", ".join(f"{name}={count}" for name, count in top)
        breakdown_lines.append(f"  {protocol:13s} {rendered}")
    emit(
        "overhead",
        format_table(
            ["protocol", "control msgs/node/cycle", "data msgs/broadcast",
             "control msgs/broadcast"],
            rows,
            title=f"Message overhead on a stable overlay (n={params.n})",
        )
        + "\ncycle-phase control breakdown (top types):\n"
        + "\n".join(breakdown_lines),
    )

    hv = results["hyparview"]
    cy = results["cyclon"]
    pt = results["plumtree"]
    # HyParView's cycle cost is the shuffle walk (TTL hops + reply) plus a
    # small amount of promotion polling from nodes with a standing slot
    # deficit (the Section 4.3 retry loop).  Cyclon pays exactly 2.
    walk_cost = params.hyparview.effective_shuffle_ttl + 1
    assert hv.control_per_node_cycle < walk_cost + 5
    assert cy.control_per_node_cycle <= 2.5
    # Stable flood sends ~2x edges copies; Plumtree converges to ~n-1.
    assert pt.data_per_broadcast < 0.6 * hv.data_per_broadcast
    # A stable flood needs no repair traffic during broadcasts.
    assert hv.broadcast_control_per_broadcast < 1.0
