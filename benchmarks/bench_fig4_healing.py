"""Figure 4 — healing time in membership cycles.

Paper (Section 5.3): after failures, count membership cycles (each probed
by 10 broadcasts) until reliability returns to the protocol's own
pre-failure level.  HyParView needs 1-2 cycles below 80% (and "as few as
4" at 90%); Cyclon grows almost linearly with the failure percentage;
Scamp is excluded (healing depends on the lease time).  Registry
scenario: ``fig4_healing``.
"""


def bench_fig4_healing_time(benchmark, bench_scenario):
    bench_scenario(benchmark, "fig4_healing", messages=10)
