"""Figure 4 — healing time in membership cycles.

Paper (Section 5.3): after failures, count membership cycles (each probed
by 10 broadcasts) until reliability returns to the protocol's own
pre-failure level.  HyParView needs 1-2 cycles below 80% (and "as few as
4" at 90%); Cyclon grows almost linearly with the failure percentage;
Scamp is excluded (healing depends on the lease time).
"""

from conftest import run_once

from repro.experiments.healing import (
    FIGURE4_FRACTIONS,
    FIGURE4_PROTOCOLS,
    run_healing_experiment,
)
from repro.experiments.reporting import format_table

MAX_CYCLES = 30


def bench_fig4_healing_time(benchmark, cache, params, emit):
    def experiment():
        results = {}
        for protocol in FIGURE4_PROTOCOLS:
            base = cache.base(protocol)
            for fraction in FIGURE4_FRACTIONS:
                # At laptop scale a couple of survivors can end up with no
                # live passive entries and nobody holding their id — at the
                # paper's 10 000 nodes that is a <0.1% effect, here it
                # would dominate the tolerance.  Allow two such stragglers.
                survivors = max(1, round(params.n * (1 - fraction)))
                tolerance = max(0.01, 2.0 / survivors)
                results[(protocol, fraction)] = run_healing_experiment(
                    protocol,
                    params,
                    fraction,
                    probes_per_cycle=10,
                    max_cycles=MAX_CYCLES,
                    tolerance=tolerance,
                    base=base,
                )
        return results

    results = run_once(benchmark, experiment)

    headers = ["failure %"] + [
        f"{protocol} (cycles)" for protocol in FIGURE4_PROTOCOLS
    ]
    rows = []
    for fraction in FIGURE4_FRACTIONS:
        row = [f"{fraction:.0%}"]
        for protocol in FIGURE4_PROTOCOLS:
            healed = results[(protocol, fraction)].cycles_to_heal
            row.append(str(healed) if healed is not None else f">{MAX_CYCLES}")
        rows.append(row)
    emit(
        "fig4_healing",
        format_table(
            headers,
            rows,
            title=f"Figure 4 — membership cycles to regain pre-failure reliability (n={params.n})",
        ),
    )

    def healed(protocol, fraction):
        value = results[(protocol, fraction)].cycles_to_heal
        return value if value is not None else MAX_CYCLES + 1

    # Paper shape 1: HyParView heals in 1-2 cycles below 80%.
    for fraction in (0.1, 0.3, 0.5, 0.7):
        assert healed("hyparview", fraction) <= 2
    # Paper headline: ~4 cycles even at 90%.
    assert healed("hyparview", 0.9) <= 6
    # Paper shape 2: Cyclon's healing grows with the failure level and is
    # far slower than HyParView at heavy failure rates.
    assert healed("cyclon", 0.8) > healed("cyclon", 0.2)
    assert healed("cyclon", 0.8) > 4 * healed("hyparview", 0.8)
