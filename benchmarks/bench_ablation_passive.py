"""Ablation — passive view size vs. resilience (the paper's future work).

Section 6: "we would like to experiment ... the relation between the
passive view size and the resilience level of the protocol (i.e. how many
failures are supported without the overlay becoming disconnected)".

Sweep the passive capacity at a heavy failure level and measure recovered
reliability and post-repair connectivity.
"""

from conftest import run_once

from repro.experiments.ablations import default_passive_sizes, run_passive_size_ablation
from repro.experiments.reporting import format_table

FAILURE = 0.8


def bench_ablation_passive_view_size(benchmark, params, emit):
    sizes = default_passive_sizes(params.hyparview)

    def experiment():
        return run_passive_size_ablation(
            params, sizes, failure_fraction=FAILURE, messages=50
        )

    points = run_once(benchmark, experiment)
    emit(
        "ablation_passive_size",
        format_table(
            ["passive capacity", "avg reliability", "tail reliability", "largest component"],
            [
                [p.passive_capacity, p.average_reliability, p.tail_reliability,
                 p.largest_component_fraction]
                for p in points
            ],
            title=(
                f"Ablation — passive view size vs resilience at {FAILURE:.0%} failures "
                f"(n={params.n})"
            ),
        ),
    )
    # Larger passive views must not hurt, and the paper-sized view should
    # clearly beat a starved one on recovered reliability.
    smallest, largest = points[0], points[-1]
    assert largest.tail_reliability >= smallest.tail_reliability - 0.02
    assert largest.largest_component_fraction >= smallest.largest_component_fraction - 0.02
