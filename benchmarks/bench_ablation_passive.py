"""Ablation — passive view size vs. resilience (the paper's future work).

Section 6: "we would like to experiment ... the relation between the
passive view size and the resilience level of the protocol (i.e. how many
failures are supported without the overlay becoming disconnected)".
Registry scenario: ``ablation_passive_size``.
"""


def bench_ablation_passive_view_size(benchmark, bench_scenario):
    bench_scenario(benchmark, "ablation_passive_size", messages=50)
