"""Figure 1c — reliability of the first 100 messages after 50% failures.

Paper (Section 3.2, Cyclon and Scamp, no membership cycles): reliability
collapses — no message reaches more than ~85% of the survivors and many
reach far fewer.  This is the motivating plot for HyParView.  Registry
scenario: ``fig1c_failure50``.
"""


def bench_fig1c_failure50(benchmark, bench_scenario):
    bench_scenario(benchmark, "fig1c_failure50", messages=100)
