"""Figure 1c — reliability of the first 100 messages after 50% failures.

Paper (Section 3.2, Cyclon and Scamp, no membership cycles): reliability
collapses — no message reaches more than ~85% of the survivors and many
reach far fewer.  This is the motivating plot for HyParView.
"""

from conftest import run_once

from repro.experiments.failures import run_failure_experiment
from repro.experiments.reporting import format_series, format_table, sparkline


def bench_fig1c_failure50(benchmark, cache, params, emit):
    def experiment():
        return {
            protocol: run_failure_experiment(
                protocol, params, 0.5, messages=100, base=cache.base(protocol)
            )
            for protocol in ("cyclon", "scamp")
        }

    results = run_once(benchmark, experiment)
    blocks = [
        format_table(
            ["protocol", "avg reliability", "max msg reliability", "atomic fraction"],
            [
                [r.protocol, r.average, max(r.series), r.atomic]
                for r in results.values()
            ],
            title=f"Figure 1c — 100 msgs after 50% failures (n={params.n})",
        )
    ]
    for result in results.values():
        blocks.append(f"\n{result.protocol} series:  {sparkline(result.series)}")
        blocks.append(format_series(result.series))
    emit("fig1c_failure50", "\n".join(blocks))

    # Paper shape: reliability is lost — neither baseline approaches 1.0,
    # and many messages die early (min far below the mean).
    for result in results.values():
        assert max(result.series) < 0.999
        assert result.atomic == 0.0
        assert min(result.series) < 0.5
