"""Figure 1a/1b — fanout vs. reliability for Cyclon and Scamp.

Paper (Section 3.1, 10 000 nodes, 50 messages): Cyclon needs fanout 5 for
>99% and 6 for ~99.9%; Scamp needs 6 to cross 99%.  HyParView's flood over
a fanout-4-sized active view delivers 100% — its reference point is
printed for comparison.  Experiment logic and shape checks live in the
scenario registry (``repro.experiments.registry``).
"""


def bench_fig1a_cyclon_fanout(benchmark, bench_scenario):
    bench_scenario(benchmark, "fig1a_cyclon_fanout", messages=50)


def bench_fig1b_scamp_fanout(benchmark, bench_scenario):
    bench_scenario(benchmark, "fig1b_scamp_fanout", messages=50)


def bench_fig1_hyparview_reference(benchmark, bench_scenario):
    bench_scenario(benchmark, "fig1_hyparview_reference", messages=50)
