"""Figure 1a/1b — fanout vs. reliability for Cyclon and Scamp.

Paper (Section 3.1, 10 000 nodes, 50 messages): Cyclon needs fanout 5 for
>99% and 6 for ~99.9%; Scamp needs 6 to cross 99%.  HyParView's flood over
a fanout-4-sized active view delivers 100% — its reference point is
printed for comparison.
"""

from conftest import run_once

from repro.experiments.fanout import (
    FIGURE1_FANOUTS,
    hyparview_reference_point,
    run_fanout_sweep,
)
from repro.experiments.reporting import format_table


def _sweep(cache, params, protocol, messages):
    return run_fanout_sweep(
        protocol, FIGURE1_FANOUTS, params, messages=messages, base=cache.base(protocol)
    )


def bench_fig1a_cyclon_fanout(benchmark, cache, params, emit):
    points = run_once(benchmark, lambda: _sweep(cache, params, "cyclon", 50))
    rows = [
        [p.fanout, p.average_reliability, p.min_reliability, p.atomic_fraction] for p in points
    ]
    emit(
        "fig1a_cyclon_fanout",
        format_table(
            ["fanout", "avg reliability", "min reliability", "atomic fraction"],
            rows,
            title=f"Figure 1a — Cyclon fanout sweep (n={params.n}, 50 msgs)",
        ),
    )
    by_fanout = {p.fanout: p.average_reliability for p in points}
    # Shape assertions: monotone-ish growth, high reliability by fanout ~5-6.
    assert by_fanout[1] < by_fanout[4] <= by_fanout[8] + 1e-9
    assert by_fanout[6] > 0.99


def bench_fig1b_scamp_fanout(benchmark, cache, params, emit):
    points = run_once(benchmark, lambda: _sweep(cache, params, "scamp", 50))
    rows = [
        [p.fanout, p.average_reliability, p.min_reliability, p.atomic_fraction] for p in points
    ]
    emit(
        "fig1b_scamp_fanout",
        format_table(
            ["fanout", "avg reliability", "min reliability", "atomic fraction"],
            rows,
            title=f"Figure 1b — Scamp fanout sweep (n={params.n}, 50 msgs)",
        ),
    )
    by_fanout = {p.fanout: p.average_reliability for p in points}
    assert by_fanout[1] < by_fanout[4]
    assert by_fanout[6] > 0.95  # paper: Scamp crosses 99% at fanout 6 (10k)


def bench_fig1_hyparview_reference(benchmark, cache, params, emit):
    point = run_once(
        benchmark,
        lambda: hyparview_reference_point(params, messages=50, base=cache.base("hyparview")),
    )
    emit(
        "fig1_hyparview_reference",
        format_table(
            ["protocol", "fanout", "avg reliability", "atomic fraction"],
            [[point.protocol, point.fanout, point.average_reliability, point.atomic_fraction]],
            title="Figure 1 reference — HyParView flood (stable overlay)",
        ),
    )
    # The paper's headline: deterministic flooding is atomic while stable.
    assert point.average_reliability == 1.0
    assert point.atomic_fraction == 1.0
