"""Figure 5 — in-degree distribution after stabilisation.

Paper: Cyclon and Scamp spread in-degrees across a wide range (some nodes
extremely popular, others almost unknown — Scamp even has nodes known by a
single other node), while HyParView's symmetric active view concentrates
almost every node at exactly the active-view size (5).
"""

from conftest import run_once

from repro.experiments.graphprops import TABLE1_PROTOCOLS, run_graph_properties
from repro.experiments.reporting import format_histogram, format_table


def bench_fig5_indegree_distribution(benchmark, cache, params, emit):
    def experiment():
        return {
            protocol: run_graph_properties(
                protocol, params, messages=5, path_sample_sources=20,
                base=cache.base(protocol),
            )
            for protocol in TABLE1_PROTOCOLS
        }

    results = run_once(benchmark, experiment)

    blocks = [f"Figure 5 — in-degree distribution after stabilisation (n={params.n})"]
    summary_rows = []
    for protocol in TABLE1_PROTOCOLS:
        r = results[protocol]
        stats = r.in_degree_stats
        summary_rows.append(
            [protocol, stats.mean, stats.stddev, stats.minimum, stats.maximum]
        )
        blocks.append("")
        blocks.append(format_histogram(r.in_degree_histogram, title=f"{protocol}:"))
    blocks.insert(
        1,
        format_table(
            ["protocol", "mean", "stddev", "min", "max"],
            summary_rows,
            title="in-degree summary",
        ),
    )
    emit("fig5_indegree", "\n".join(blocks))

    hv, cy, sc = (results[p] for p in ("hyparview", "cyclon", "scamp"))
    capacity = params.hyparview.active_view_capacity
    # Shape 1: HyParView concentrates at the active view size.
    at_capacity = hv.in_degree_histogram.get(capacity, 0)
    assert at_capacity / params.n > 0.75
    assert hv.in_degree_stats.maximum <= capacity  # symmetric views bound it
    # Shape 2: baselines spread over a wide range.
    assert cy.in_degree_stats.stddev > 3 * hv.in_degree_stats.stddev
    assert sc.in_degree_stats.stddev > 3 * hv.in_degree_stats.stddev
    assert cy.in_degree_stats.maximum > 1.3 * cy.in_degree_stats.mean
