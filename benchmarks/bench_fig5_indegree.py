"""Figure 5 — in-degree distribution after stabilisation.

Paper: Cyclon and Scamp spread in-degrees across a wide range (some nodes
extremely popular, others almost unknown — Scamp even has nodes known by a
single other node), while HyParView's symmetric active view concentrates
almost every node at exactly the active-view size (5).  Registry
scenario: ``fig5_indegree``.
"""


def bench_fig5_indegree_distribution(benchmark, bench_scenario):
    # 20 sampled BFS sources (the harness's historical scale) — the degree
    # histogram does not need the paper tier's 100-source path analysis.
    bench_scenario(benchmark, "fig5_indegree", messages=5,
                   extra={"path_sample_sources": 20})
