"""Microbenchmark of the simulation kernel's hot loop.

Tracks events/second through :meth:`Engine.run_until_idle` for the
traffic classes the experiments generate, and compares the bucket-queue
engine against an in-bench reimplementation of the previous heapq kernel
(the PR-2 baseline) on the workload the queue redesign targets:

* **burst cascades** — ``WIDTH`` concurrent delivery chains sharing
  constant-latency timestamps, the shape of every gossip hop (one
  broadcast hop delivers to many nodes at the same instant).  This is
  where the bucket queue's O(1) append/pop pays: the acceptance target is
  >= 2x posted events/s over the heapq baseline;
* **serial chains** — a single chain of distinct timestamps, the bucket
  queue's worst case (every event opens a fresh bucket); reported so a
  regression in the degenerate shape is visible too;
* **timer events** — cancellable handles, most of which are cancelled
  before firing (ack/retransmit timers), exercising lazy removal and
  compaction;
* **retransmit mix** — the reliable-delivery shape (``gossip/reliable``):
  ``TIMER_WIDTH`` concurrent ack'd transfers, each round posting the data
  copy and the ack, arming a cancellable retransmit timer and cancelling
  it on the ack, with every tenth copy lost so its retransmit actually
  expires.  Timers ride the hierarchical timer wheel; the acceptance
  target is >= 1.5x events/s over the heapq baseline running the same
  mix (the pre-wheel engine measured ~0.6x on its timer path);
* **jittered chains, quantised tick** — the PR-8 follow-up measurement:
  ``WIDTH`` concurrent chains whose hop delays carry continuous uniform
  jitter, so every raw timestamp is distinct and the untick'd bucket
  queue degenerates to one event per bucket.  Run once on ``Engine()``
  and once on ``Engine(tick=ENGINE_TICK)`` (the tick the ``faults_*``
  and ``topo_*`` scenarios use), reporting the coalescing win as a
  ratio.  Measured ~1.0-1.1x in the dev container — the honest answer
  to the "quantify the tick speedup" follow-up is that coalescing
  roughly pays for the rounding, no more; the gate only requires ticked
  mode never be materially *slower* (>= 0.9x), since bucketing that
  loses throughput would mean the rounding path gained per-event
  overhead;
* **sharded crossings** — the scalability probe for the space-sharded
  kernel (``sim/sharded``): ``SHARD_NODES`` owners striped across two
  shards so *every* chain hop is a cross-shard handoff — the worst case
  for the coordinator's outbox/merge machinery.  Reported as an honest
  overhead ratio against the single-shard engine on the identical
  workload, with the handoff/batch/violation ledger alongside; no
  speedup gate, only the catastrophic floor — sharding buys memory
  locality and a future multi-process story, not single-process speed.

Numbers go to stdout (CI job logs) and — with ``--json PATH`` — into a
``TIMINGS_kernel_microbench.json`` record that CI folds into the timings
artifact for commit-over-commit trending.  The assertion floors are set
far below any real machine's throughput so the bench only trips on a
catastrophic kernel regression, never on a noisy runner; the 2x
burst-speedup assertion takes the best of several repeats for the same
reason.

Run directly (``python benchmarks/bench_kernel.py [--json PATH]``) or via
pytest (``pytest benchmarks/bench_kernel.py -s``; slow-marked).
"""

from __future__ import annotations

import argparse
import heapq
import json
import pathlib
import random
import time
from itertools import count

import pytest

from repro.experiments.reporting import TIMINGS_SCHEMA
from repro.sim.engine import Engine
from repro.sim.sharded import ShardedEngine

#: Events per measured batch — large enough to amortise timer noise.
BATCH = 200_000

#: Concurrent chains in the burst workload (events sharing a timestamp
#: per instant) — the magnitude of one gossip hop at bench scale.
WIDTH = 256

#: Measurement repeats; the best run is kept (noise floor, not variance).
REPEATS = 3

#: Catastrophic-regression floor (events/second).  Real hardware does
#: millions; tripping this means the hot loop gained per-event overhead.
FLOOR = 50_000

#: Required advantage of the bucket queue over the heapq baseline on the
#: burst workload (the tentpole acceptance criterion).
BURST_SPEEDUP = 2.0

#: Concurrent ack'd transfers in the retransmit mix — thousands of
#: outstanding retransmit timers, the reliable-delivery workload scale.
TIMER_WIDTH = 4_096

#: Required advantage of the timer wheel over the heapq baseline on the
#: retransmit mix (the PR-5 acceptance criterion; the pre-wheel bucket
#: queue sat at ~0.6x on its timer path).
TIMER_SPEEDUP = 1.5

#: Tick of the quantised-bucket run — the value the fault and topology
#: scenarios configure (``extra={"engine_tick": 0.002}``).
ENGINE_TICK = 0.002

#: Required ratio of the ticked engine over the untick'd engine on the
#: jittered-chain workload.  Not a speedup target (the measured win is
#: ~1.1x): a floor below 1.0 that only trips if timestamp rounding makes
#: the engine materially slower than not rounding at all.
TICK_SPEEDUP_FLOOR = 0.9

#: Owners in the sharded-kernel probe — past the n=25k scalability bar,
#: striped across two shards so every chain hop crosses the boundary.
SHARD_NODES = 25_600

#: Shards in the probe; two is the boundary-crossing worst case (every
#: handoff has exactly one possible destination queue).
SHARD_COUNT = 2


class _BaselineHandle:
    """Lazy-cancellation flag of the heapq baseline's timer entries."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True


class HeapqBaseline:
    """The PR-2 kernel's hot path, reimplemented for comparison.

    A heap of ``(time, seq, callback, args, handle)`` tuples with the
    same inlined drain loop the previous ``Engine.run_until_idle`` used;
    ``handle`` is ``None`` for posted events and a lazily-cancelled flag
    object for timers, matching how the old kernel parked cancelled
    timers in the heap until they were popped.  Kept here (not in the
    library) so the baseline stays frozen while the real engine evolves.
    """

    __slots__ = ("_now", "_queue", "_sequence")

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple] = []
        self._sequence = count()

    def post(self, delay: float, callback, *args) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), callback, args, None)
        )

    def schedule(self, delay: float, callback, *args) -> _BaselineHandle:
        handle = _BaselineHandle()
        heapq.heappush(
            self._queue,
            (self._now + delay, next(self._sequence), callback, args, handle),
        )
        return handle

    def run_until_idle(self) -> int:
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            entry = pop(queue)
            handle = entry[4]
            if handle is not None and handle._cancelled:
                continue
            self._now = entry[0]
            fired += 1
            entry[2](*entry[3])
        return fired


def _events_per_second(total_events: int, elapsed: float) -> float:
    return total_events / elapsed if elapsed > 0 else float("inf")


def _drive_posted(engine, total: int, width: int) -> None:
    """``width`` self-sustaining delivery chains at one constant latency.

    All chains share timestamps (they advance in lock step), so each
    instant carries a bucket of ``width`` events — the gossip-hop shape.
    """
    remaining = [total]

    def fire() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.post(0.001, fire)

    for _ in range(min(width, total)):
        engine.post(0.001, fire)
    engine.run_until_idle()


def _drive_jittered(engine, total: int, width: int, *, seed: int = 2026) -> None:
    """``width`` delivery chains whose hop delays carry continuous uniform
    jitter in [1ms, 2ms) — the zoned-RTT/WAN-degrade traffic shape.  Raw
    timestamps are all distinct, so without a tick every event opens its
    own bucket; with ``tick=ENGINE_TICK`` they coalesce."""
    rng = random.Random(seed)
    remaining = [total]

    def fire() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.post(0.001 * (1.0 + rng.random()), fire)

    for _ in range(min(width, total)):
        engine.post(0.001 * (1.0 + rng.random()), fire)
    engine.run_until_idle()


def _best_jittered_eps(engine_factory, total: int, width: int) -> float:
    best = 0.0
    for _ in range(REPEATS):
        engine = engine_factory()
        started = time.perf_counter()
        _drive_jittered(engine, total, width)
        best = max(best, _events_per_second(total, time.perf_counter() - started))
    return best


def _drive_timers(engine: Engine, total: int) -> None:
    """A cascade of cancellable timers; each firing also schedules a decoy
    that is immediately cancelled (the ack-timer pattern), so half of all
    scheduled events are lazily-removed garbage the engine must reclaim."""
    remaining = [total]

    def fire() -> None:
        remaining[0] -= 1
        engine.schedule(30.0, fire).cancel()
        if remaining[0] > 0:
            engine.schedule(0.001, fire)

    engine.schedule(0.001, fire)
    engine.run_until_idle()


def _drive_retransmit_mix(engine, rounds: int, width: int) -> int:
    """``width`` concurrent reliable transfers: post the data copy, post
    the ack back, arm a retransmit timer, cancel it when the ack lands.
    Every tenth copy is lost, so its retransmit timer actually expires and
    resends — the post/cancel/expire mix of ack'd gossip
    (:mod:`repro.gossip.reliable`).  Returns the number of fired events.

    Works against both the engine (timers on the wheel, messages in the
    buckets) and the heapq baseline (everything through one heap).
    """
    remaining = [rounds]

    def deliver(state) -> None:
        engine.post(0.001, ack, state)

    def ack(state) -> None:
        state[0].cancel()
        remaining[0] -= 1
        if remaining[0] > 0:
            send(state)

    def retransmit(state) -> None:
        engine.post(0.001, deliver, state)

    def send(state) -> None:
        state[1] += 1
        state[0] = engine.schedule(0.25, retransmit, state)
        if state[1] % 10:
            engine.post(0.001, deliver, state)

    for transfer in range(min(width, rounds)):
        send([None, transfer % 10])
    return engine.run_until_idle()


def _drive_crossing(kernel, total: int, width: int, nodes: int) -> None:
    """``width`` delivery chains hopping owner -> owner+1 around a ring of
    ``nodes`` owners.  With owners striped across two shards every hop is
    a cross-shard handoff on the sharded kernel; on the single-shard
    engine :meth:`post_for` degrades to a plain post, so both kernels run
    the identical event sequence."""
    remaining = [total]

    def fire(owner: int) -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            nxt = owner + 1 if owner + 1 < nodes else 0
            kernel.post_for(nxt, 0.001, fire, nxt)

    for chain in range(min(width, total)):
        kernel.post_for(chain % nodes, 0.001, fire, chain % nodes)
    kernel.run_until_idle()


def _striped_sharded_engine() -> ShardedEngine:
    engine = ShardedEngine(SHARD_COUNT, lookahead=0.001)
    for owner in range(SHARD_NODES):
        engine.assign(owner, owner % SHARD_COUNT)
    return engine


def _best_crossing_eps(engine_factory, total: int, width: int):
    """Best-of-repeats events/s plus the best run's kernel (for its
    handoff ledger; ``None`` on the single-shard engine)."""
    best = 0.0
    best_engine = None
    for _ in range(REPEATS):
        engine = engine_factory()
        started = time.perf_counter()
        _drive_crossing(engine, total, width, SHARD_NODES)
        eps = _events_per_second(total, time.perf_counter() - started)
        if eps > best:
            best = eps
            best_engine = engine
    return best, best_engine


def _best_posted_eps(engine_factory, total: int, width: int) -> float:
    best = 0.0
    for _ in range(REPEATS):
        engine = engine_factory()
        started = time.perf_counter()
        _drive_posted(engine, total, width)
        best = max(best, _events_per_second(total, time.perf_counter() - started))
    return best


def _best_retransmit_eps(engine_factory, rounds: int, width: int) -> float:
    best = 0.0
    for _ in range(REPEATS):
        engine = engine_factory()
        started = time.perf_counter()
        fired = _drive_retransmit_mix(engine, rounds, width)
        best = max(best, _events_per_second(fired, time.perf_counter() - started))
    return best


def run_kernel_bench() -> dict:
    """Measure every workload; returns the machine-readable record."""
    burst_eps = _best_posted_eps(Engine, BATCH, WIDTH)
    burst_heapq_eps = _best_posted_eps(HeapqBaseline, BATCH, WIDTH)
    serial_eps = _best_posted_eps(Engine, BATCH, 1)
    serial_heapq_eps = _best_posted_eps(HeapqBaseline, BATCH, 1)
    retransmit_eps = _best_retransmit_eps(Engine, BATCH, TIMER_WIDTH)
    retransmit_heapq_eps = _best_retransmit_eps(HeapqBaseline, BATCH, TIMER_WIDTH)
    jitter_unticked_eps = _best_jittered_eps(Engine, BATCH, WIDTH)
    jitter_ticked_eps = _best_jittered_eps(
        lambda: Engine(tick=ENGINE_TICK), BATCH, WIDTH
    )
    crossing_single_eps, _ = _best_crossing_eps(Engine, BATCH, WIDTH)
    crossing_sharded_eps, sharded_engine = _best_crossing_eps(
        _striped_sharded_engine, BATCH, WIDTH
    )

    engine = Engine()
    started = time.perf_counter()
    _drive_timers(engine, BATCH // 2)
    timer_eps = _events_per_second(BATCH // 2, time.perf_counter() - started)
    # The decoy cancellations must have been reclaimed, not accumulated.
    assert engine.pending <= 1
    assert engine.live_pending == engine.pending

    return {
        "schema": TIMINGS_SCHEMA,
        "scenario": "kernel_microbench",
        "tier": "kernel",
        "workers": 1,
        "units": [
            {
                "cell": f"posted-burst-{WIDTH}",
                "events": BATCH,
                "events_per_second": burst_eps,
                "heapq_baseline_events_per_second": burst_heapq_eps,
                "speedup_vs_heapq": burst_eps / burst_heapq_eps,
            },
            {
                "cell": "posted-serial",
                "events": BATCH,
                "events_per_second": serial_eps,
                "heapq_baseline_events_per_second": serial_heapq_eps,
                "speedup_vs_heapq": serial_eps / serial_heapq_eps,
            },
            {
                "cell": "timers-all-cancel",
                "events": BATCH // 2,
                "events_per_second": timer_eps,
            },
            {
                "cell": f"timers-retransmit-mix-{TIMER_WIDTH}",
                "events": BATCH,
                "events_per_second": retransmit_eps,
                "heapq_baseline_events_per_second": retransmit_heapq_eps,
                "speedup_vs_heapq": retransmit_eps / retransmit_heapq_eps,
                # Hard-gated ratio: perf_trend.py --enforce-kernel-gates
                # fails the build when the speedup drops below this floor.
                "speedup_floor": TIMER_SPEEDUP,
            },
            {
                "cell": f"posted-jitter-ticked-{WIDTH}",
                "events": BATCH,
                "events_per_second": jitter_ticked_eps,
                "unticked_events_per_second": jitter_unticked_eps,
                # The quantised-tick coalescing win on continuous-jitter
                # traffic (~1.1x measured); the floor < 1.0 only trips if
                # rounding makes the engine materially slower.
                "speedup_vs_unticked": jitter_ticked_eps / jitter_unticked_eps,
                "speedup_floor": TICK_SPEEDUP_FLOOR,
            },
            {
                "cell": f"sharded-crossings-{SHARD_NODES}",
                "events": BATCH,
                "events_per_second": crossing_sharded_eps,
                "single_shard_events_per_second": crossing_single_eps,
                # > 1.0 means the coordinator costs that factor of
                # throughput on all-cross-shard traffic — the honest
                # price of the outbox/merge machinery.
                "overhead_vs_single_shard": crossing_single_eps / crossing_sharded_eps,
                "sync": sharded_engine.sync.snapshot(),
            },
        ],
        "totals": {
            "units": 6,
            "events": 5 * BATCH + BATCH // 2,
            # The headline figure the perf-trend job follows.
            "events_per_second": burst_eps,
            "worker_seconds": None,
        },
    }


def report(record: dict) -> None:
    burst, serial, timers, retransmit, jitter, sharded = record["units"]
    sync = sharded["sync"]
    print(
        f"\nkernel hot loop (bucket queue + timer wheel vs heapq baseline):\n"
        f"  posted burst x{WIDTH}: {burst['events_per_second']:,.0f} ev/s "
        f"(heapq {burst['heapq_baseline_events_per_second']:,.0f}, "
        f"speedup {burst['speedup_vs_heapq']:.2f}x)\n"
        f"  posted serial:      {serial['events_per_second']:,.0f} ev/s "
        f"(heapq {serial['heapq_baseline_events_per_second']:,.0f}, "
        f"speedup {serial['speedup_vs_heapq']:.2f}x)\n"
        f"  timers (all-cancel decoys): {timers['events_per_second']:,.0f} ev/s\n"
        f"  retransmit mix x{TIMER_WIDTH}: "
        f"{retransmit['events_per_second']:,.0f} ev/s "
        f"(heapq {retransmit['heapq_baseline_events_per_second']:,.0f}, "
        f"speedup {retransmit['speedup_vs_heapq']:.2f}x)\n"
        f"  jittered chains x{WIDTH}, tick={ENGINE_TICK}: "
        f"{jitter['events_per_second']:,.0f} ev/s "
        f"(untick'd {jitter['unticked_events_per_second']:,.0f}, "
        f"coalescing win {jitter['speedup_vs_unticked']:.2f}x)\n"
        f"  sharded crossings n={SHARD_NODES}: "
        f"{sharded['events_per_second']:,.0f} ev/s "
        f"(single-shard {sharded['single_shard_events_per_second']:,.0f}, "
        f"overhead {sharded['overhead_vs_single_shard']:.2f}x; "
        f"{sync['handoffs']:,} handoffs in {sync['batches']:,} batches, "
        f"{sync['lookahead_violations']:,} lookahead violations)"
    )


@pytest.mark.slow
def bench_kernel_hot_loop() -> None:
    record = run_kernel_bench()
    report(record)
    burst, serial, timers, retransmit, jitter, sharded = record["units"]
    assert burst["events_per_second"] > FLOOR
    assert serial["events_per_second"] > FLOOR
    assert timers["events_per_second"] > FLOOR
    assert retransmit["events_per_second"] > FLOOR
    assert jitter["events_per_second"] > FLOOR
    assert sharded["events_per_second"] > FLOOR
    # All-striped traffic means every hop was a handoff, all batched.
    assert sharded["sync"]["handoffs"] == sharded["sync"]["batched_events"]
    # The tentpole claims: on gossip-burst traffic the bucket queue must
    # comfortably outrun the old mixed-tuple heap, and on the ack'd
    # retransmit mix the timer wheel must as well.
    assert burst["speedup_vs_heapq"] >= BURST_SPEEDUP
    assert retransmit["speedup_vs_heapq"] >= TIMER_SPEEDUP
    # Quantised buckets must never be materially slower than raw ones.
    assert jitter["speedup_vs_unticked"] >= TICK_SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", type=pathlib.Path, default=None, metavar="PATH",
        help="also write the machine-readable record (repro-timings/1 "
        "schema) to PATH for the CI timings artifact",
    )
    args = parser.parse_args(argv)
    record = run_kernel_bench()
    report(record)
    burst, serial, timers, retransmit, jitter, sharded = record["units"]
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
        # The sharded probe also gets a record of its own: perf_trend.py
        # trends one metric per TIMINGS_* scenario, so the coordinator's
        # throughput earns its own sparkline instead of hiding inside the
        # microbench totals (whose headline stays the burst figure).
        probe = {
            "schema": TIMINGS_SCHEMA,
            "scenario": "kernel_sharded_probe",
            "tier": "kernel",
            "workers": 1,
            "units": [sharded],
            "totals": {
                "units": 1,
                "events": sharded["events"],
                "events_per_second": sharded["events_per_second"],
                "worker_seconds": None,
            },
        }
        probe_path = args.json.with_name("TIMINGS_kernel_sharded_probe.json")
        probe_path.write_text(json.dumps(probe, indent=2, sort_keys=True) + "\n")
        print(f"wrote {probe_path}")
    # Hard gate: the catastrophic-regression floors, on every workload —
    # these are orders of magnitude below real throughput, so tripping one
    # means the kernel broke, not that the runner was busy.
    ok = all(
        unit["events_per_second"] > FLOOR
        for unit in (burst, serial, timers, retransmit, jitter, sharded)
    )
    # Hard gate: the timer-wheel speedup floor.  Unlike the absolute
    # events/s numbers this is a *ratio* of two runs on the same machine,
    # so runner load largely cancels out; measured ~2x in the dev
    # container against the 1.5x floor.
    if retransmit["speedup_vs_heapq"] < TIMER_SPEEDUP:
        print(
            f"::error title=kernel bench::retransmit-mix speedup "
            f"{retransmit['speedup_vs_heapq']:.2f}x below the "
            f"{TIMER_SPEEDUP:.1f}x timer-wheel floor"
        )
        ok = False
    # Hard gate: quantised-tick bucketing must never make the engine
    # materially slower than raw timestamps (same-machine ratio again).
    if jitter["speedup_vs_unticked"] < TICK_SPEEDUP_FLOOR:
        print(
            f"::error title=kernel bench::quantised-tick ratio "
            f"{jitter['speedup_vs_unticked']:.2f}x below the "
            f"{TICK_SPEEDUP_FLOOR:.1f}x floor (tick rounding gained "
            f"per-event overhead)"
        )
        ok = False
    print(
        f"::notice title=quantised tick::jittered chains at "
        f"tick={ENGINE_TICK}: {jitter['events_per_second']:,.0f} ev/s, "
        f"{jitter['speedup_vs_unticked']:.2f}x vs untick'd "
        f"(floor {TICK_SPEEDUP_FLOOR:.1f}x)"
    )
    # Timer-path trend line for the job summary (the perf-trend job
    # follows totals.events_per_second, which is the burst figure).
    print(
        f"::notice title=timer wheel::retransmit mix "
        f"{retransmit['events_per_second']:,.0f} ev/s, "
        f"{retransmit['speedup_vs_heapq']:.2f}x vs heapq baseline "
        f"(floor {TIMER_SPEEDUP:.1f}x); all-cancel timers "
        f"{timers['events_per_second']:,.0f} ev/s"
    )
    # Sharded-kernel trend line: overhead, never gated on — the probe
    # exists to keep the coordinator's price visible, not to cap it.
    print(
        f"::notice title=sharded kernel::crossings n={SHARD_NODES}: "
        f"{sharded['events_per_second']:,.0f} ev/s, "
        f"{sharded['overhead_vs_single_shard']:.2f}x overhead vs "
        f"single-shard ({sharded['sync']['handoffs']:,} handoffs, "
        f"{sharded['sync']['batches']:,} batches)"
    )
    # Soft gate: the 2x burst-speedup ratio is wall-clock-relative and may
    # be squeezed on a contended hosted runner; warn (GitHub annotation),
    # never fail — matching the perf-trend job's noise policy.  The
    # slow-marked pytest path still asserts it where the pin matters.
    if burst["speedup_vs_heapq"] < BURST_SPEEDUP:
        print(
            f"::warning title=kernel bench::burst speedup "
            f"{burst['speedup_vs_heapq']:.2f}x below the {BURST_SPEEDUP:.1f}x "
            f"target (noisy runner?)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
