"""Microbenchmark of the simulation kernel's hot loop.

Tracks events/second through :meth:`Engine.run_until_idle` for the two
traffic classes the experiments generate:

* **posted events** — handle-free message deliveries (the fast path that
  carries millions of gossip messages per figure);
* **timer events** — cancellable handles, most of which are cancelled
  before firing (ack/retransmit timers), exercising lazy removal and heap
  compaction.

Numbers go to stdout (CI job logs) only; the assertion floor is set far
below any real machine's throughput so the bench only trips on a
catastrophic kernel regression, never on a noisy runner.

Run directly (``python benchmarks/bench_kernel.py``) or via pytest
(``pytest benchmarks/bench_kernel.py -s``; slow-marked).
"""

from __future__ import annotations

import time

import pytest

from repro.sim.engine import Engine

#: Events per measured batch — large enough to amortise timer noise.
BATCH = 200_000

#: Catastrophic-regression floor (events/second).  Real hardware does
#: millions; tripping this means the hot loop gained per-event overhead.
FLOOR = 50_000


def _events_per_second(total_events: int, elapsed: float) -> float:
    return total_events / elapsed if elapsed > 0 else float("inf")


def _drive_posted(engine: Engine, total: int) -> None:
    """A self-sustaining cascade: each posted event posts the next."""
    remaining = [total]

    def fire() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.post(0.001, fire)

    engine.post(0.001, fire)
    engine.run_until_idle()


def _drive_timers(engine: Engine, total: int) -> None:
    """A cascade of cancellable timers; each firing also schedules a decoy
    that is immediately cancelled (the ack-timer pattern), so half of all
    scheduled events are lazily-removed garbage the engine must reclaim."""
    remaining = [total]

    def fire() -> None:
        remaining[0] -= 1
        engine.schedule(30.0, fire).cancel()
        if remaining[0] > 0:
            engine.schedule(0.001, fire)

    engine.schedule(0.001, fire)
    engine.run_until_idle()


@pytest.mark.slow
def bench_kernel_hot_loop() -> None:
    engine = Engine()
    started = time.perf_counter()
    _drive_posted(engine, BATCH)
    posted_eps = _events_per_second(BATCH, time.perf_counter() - started)

    engine = Engine()
    started = time.perf_counter()
    _drive_timers(engine, BATCH // 2)
    timer_eps = _events_per_second(BATCH // 2, time.perf_counter() - started)
    # The decoy cancellations must have been reclaimed, not accumulated.
    assert engine.pending <= 1
    assert engine.live_pending == engine.pending

    print(
        f"\nkernel hot loop: posted {posted_eps:,.0f} events/s, "
        f"timers (all-cancel decoys) {timer_eps:,.0f} events/s"
    )
    assert posted_eps > FLOOR
    assert timer_eps > FLOOR


if __name__ == "__main__":
    bench_kernel_hot_loop()
