"""Commit-over-commit perf trending from ``TIMINGS_*.json`` artifacts.

The CI ``perf-trend`` job downloads the current run's timings artifact and
the last *k* successful runs' (via ``gh api``), then calls this script to
render a markdown delta table into the GitHub job summary and emit
``::warning::`` annotations for per-scenario regressions beyond the
threshold.

The baseline is the **median of the previous runs** (pass ``--previous``
once per run directory): hosted-runner wall-clock is noisy, and a single
slow previous run used to produce both false "improvements" and missed
regressions.  With one ``--previous`` the median degenerates to the old
single-run comparison, so the interface is backwards compatible.

Soft-fail by design: a wall-clock regression warns (and is visible in the
summary trend) but never turns the build red — hosted-runner wall-clock is
noisy.  The one hard exception is ``--enforce-kernel-gates``: kernel
microbench units embed same-machine *ratio* floors (``speedup_floor``
next to a ``speedup_vs_*`` value, written by ``bench_kernel.py``), and
runner load largely cancels out of a ratio, so a floor violation is a
real kernel regression and fails the job with a ``::error`` annotation.
Otherwise the exit code is 0 unless the inputs are unusable.

**The committed history file.**  Artifact retention bounds how far back
``gh api`` can reach, so the baseline window dies with it.  The
``perf-history`` CI job therefore appends every main-branch run's
per-scenario medians to ``benchmarks/perf_history.jsonl`` (one
``repro-perf-history/1`` line per run, committed by a bot with
``[skip ci]``); when that file is present, ``--history`` makes it the
baseline window and the artifact fetch becomes the bootstrap fallback.

Usage::

    python benchmarks/perf_trend.py --current DIR
        [--previous DIR]... [--history FILE [--window K]]
        [--record-history FILE [--sha SHA] [--run-id ID]]
        [--summary FILE] [--threshold 0.30]

Every directory holds ``TIMINGS_<scenario>.json`` files in the
``repro-timings/1`` schema (written by ``repro bench`` and
``bench_kernel.py --json``).  Scenarios present on only one side are
listed as new/retired rather than compared.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
from typing import Iterable, Optional, Sequence

#: A regression is flagged when the metric worsens by more than this
#: fraction (seconds grow, or kernel events/s shrink).
DEFAULT_THRESHOLD = 0.30

#: Schema tag of one ``perf_history.jsonl`` line.
HISTORY_SCHEMA = "repro-perf-history/1"

#: Default number of trailing history entries used as the baseline window.
DEFAULT_WINDOW = 5

#: Glyph ramp for ``--sparklines`` (kept local: this script runs in CI
#: jobs that never install the repro package).
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: History entries rendered per sparkline (newest at the right edge).
SPARK_LIMIT = 30


def load_timings_dir(directory: pathlib.Path) -> dict[str, dict]:
    """All ``TIMINGS_*.json`` records under ``directory``, by scenario id.

    Unreadable or schema-less files are skipped with a note on stderr —
    a truncated artifact from a cancelled run must not kill trending.
    """
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("TIMINGS_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"perf-trend: skipping unreadable {path}: {error}", file=sys.stderr)
            continue
        scenario = data.get("scenario")
        if not scenario or not str(data.get("schema", "")).startswith("repro-timings/"):
            print(f"perf-trend: skipping non-timings file {path}", file=sys.stderr)
            continue
        records[str(scenario)] = data
    return records


def _metric(record: dict) -> tuple[Optional[float], str]:
    """The trended metric of one record: ``(value, kind)``.

    Scenario sweeps trend summed worker-seconds (lower is better); kernel
    microbenchmarks carry no wall total and trend events/s (higher is
    better).
    """
    totals = record.get("totals", {})
    seconds = totals.get("worker_seconds")
    if isinstance(seconds, (int, float)) and seconds > 0:
        return float(seconds), "seconds"
    events_per_second = totals.get("events_per_second")
    if isinstance(events_per_second, (int, float)) and events_per_second > 0:
        return float(events_per_second), "events/s"
    return None, "none"


def _format_value(value: Optional[float], kind: str) -> str:
    if value is None:
        return "-"
    if kind == "seconds":
        return f"{value:.2f}s"
    return f"{value:,.0f} ev/s"


def _history_metric(
    history: Sequence[dict[str, dict]], scenario: str, kind: str
) -> tuple[Optional[float], str, int]:
    """The baseline for one scenario: median over the history window.

    Only history records whose metric kind matches the current run's are
    aggregated (a scenario that switched from seconds to events/s restarts
    its baseline).  Returns ``(median, kind, samples)`` — the kind of the
    newest historic record when no sample matches, so callers can render
    "metric changed" vs "new".
    """
    values: list[float] = []
    last_kind = "none"
    for run in history:
        record = run.get(scenario)
        if record is None:
            continue
        value, record_kind = _metric(record)
        if value is None:
            continue
        last_kind = record_kind
        if record_kind == kind:
            values.append(value)
    if values:
        return statistics.median(values), kind, len(values)
    return None, last_kind, 0


def history_record(
    current: dict[str, dict],
    *,
    sha: Optional[str] = None,
    run_id: Optional[str] = None,
) -> dict:
    """One ``perf_history.jsonl`` line: the run's per-scenario metrics."""
    scenarios = {}
    for scenario in sorted(current):
        value, kind = _metric(current[scenario])
        if value is not None:
            scenarios[scenario] = {"kind": kind, "value": value}
    record: dict = {"schema": HISTORY_SCHEMA, "scenarios": scenarios}
    if sha:
        record["sha"] = sha
    if run_id:
        record["run_id"] = str(run_id)
    return record


def append_history(path: pathlib.Path, record: dict) -> None:
    """Append one history line (creates the file on first use)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(
    path: pathlib.Path, window: int = DEFAULT_WINDOW
) -> list[dict[str, dict]]:
    """The last ``window`` history entries as per-run record dicts.

    Each entry is converted back into the minimal ``repro-timings``
    shape :func:`compare` consumes, so the committed history plugs into
    the same median machinery as downloaded artifact directories.
    Malformed or foreign lines are skipped with a note on stderr — a
    half-written line from an interrupted bot commit must not kill
    trending.  Returns ``[]`` when the file is missing or empty.
    """
    if not path.is_file():
        return []
    runs: list[dict[str, dict]] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            print(f"perf-trend: skipping {path}:{number}: {error}", file=sys.stderr)
            continue
        if not isinstance(data, dict) or data.get("schema") != HISTORY_SCHEMA:
            print(f"perf-trend: skipping non-history line {path}:{number}", file=sys.stderr)
            continue
        run: dict[str, dict] = {}
        for scenario, metric in data.get("scenarios", {}).items():
            value = metric.get("value") if isinstance(metric, dict) else None
            kind = metric.get("kind") if isinstance(metric, dict) else None
            if not isinstance(value, (int, float)) or value <= 0:
                continue
            if kind == "seconds":
                run[str(scenario)] = {"totals": {"worker_seconds": float(value)}}
            elif kind == "events/s":
                run[str(scenario)] = {"totals": {"events_per_second": float(value)}}
        if run:
            runs.append(run)
    return runs[-window:] if window > 0 else runs


def _spark(values: Sequence[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((value - lo) / (hi - lo) * len(SPARK_CHARS)))]
        for value in values
    )


def sparkline_section(
    history: Sequence[dict[str, dict]],
    current: dict[str, dict],
    limit: int = SPARK_LIMIT,
) -> list[str]:
    """Markdown lines trending each scenario across the committed history.

    ``history`` is oldest-first (the order ``load_history`` preserves from
    ``perf_history.jsonl``); the current run lands at the right edge of
    every sparkline.  Scenarios with fewer than two comparable samples are
    skipped — one dot is not a trend.  For ``seconds`` metrics a *rising*
    sparkline means the suite got slower; for ``events/s``, faster.
    """
    runs = [run for run in history if run][-limit:] + [current]
    lines = [
        "",
        f"### Per-scenario history (last {len(runs)} runs, newest right)",
        "",
        "| scenario | trend | current | range |",
        "| --- | --- | --- | --- |",
    ]
    rendered = 0
    for scenario in sorted(set().union(*runs)):
        kind = "none"
        for run in reversed(runs):
            record = run.get(scenario)
            if record is not None:
                _value, kind = _metric(record)
                break
        values = []
        for run in runs:
            record = run.get(scenario)
            if record is None:
                continue
            value, record_kind = _metric(record)
            if value is not None and record_kind == kind:
                values.append(value)
        if len(values) < 2:
            continue
        rendered += 1
        lines.append(
            f"| {scenario} | `{_spark(values)}` "
            f"| {_format_value(values[-1], kind)} "
            f"| {_format_value(min(values), kind)} – "
            f"{_format_value(max(values), kind)} |"
        )
    if not rendered:
        return []
    return lines


def compare(
    current: dict[str, dict],
    previous: dict[str, dict] | Sequence[dict[str, dict]],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Build the summary lines and the regression warnings.

    ``previous`` is the history window — a sequence of per-run record
    dicts, newest or oldest first (the median does not care) — or a single
    dict for the legacy one-run comparison.  Returns ``(markdown_lines,
    warning_messages)``; a warning fires when a scenario is more than
    ``threshold`` slower than the median of the window.
    """
    history: list[dict[str, dict]]
    if isinstance(previous, dict):
        history = [previous] if previous else []
    else:
        history = [run for run in previous if run]
    window = len(history)
    seen_previously = set().union(*history) if history else set()
    lines = [
        "## Perf trend (TIMINGS artifacts, vs median of last "
        f"{window} run{'s' if window != 1 else ''})",
        "",
        "| scenario | previous (median) | current | delta | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    warnings: list[str] = []
    for scenario in sorted(set(current) | seen_previously):
        cur_value, cur_kind = _metric(current[scenario]) if scenario in current else (None, "none")
        prev_value, prev_kind, samples = _history_metric(history, scenario, cur_kind)
        if cur_value is None and prev_value is None and scenario not in seen_previously:
            continue
        if scenario not in seen_previously:
            lines.append(
                f"| {scenario} | - | {_format_value(cur_value, cur_kind)} | - | new |"
            )
            continue
        if cur_value is None:
            # Retired: render the median in the metric the history used.
            prev_value, prev_kind, _ = _history_metric(history, scenario, prev_kind)
            lines.append(
                f"| {scenario} | {_format_value(prev_value, prev_kind)} | - | - | retired |"
            )
            continue
        if prev_value is None:
            # Present in history but never with the current metric kind.
            lines.append(
                f"| {scenario} | - "
                f"| {_format_value(cur_value, cur_kind)} | - | metric changed |"
            )
            continue
        # "Worse" means slower: more seconds, or fewer events per second.
        if cur_kind == "seconds":
            change = (cur_value - prev_value) / prev_value
        else:
            change = (prev_value - cur_value) / prev_value
        delta = f"{change:+.1%}" if cur_kind == "seconds" else f"{-change:+.1%}"
        if change > threshold:
            status = f"⚠️ regression (> {threshold:.0%})"
            warnings.append(
                f"{scenario}: {_format_value(prev_value, prev_kind)} -> "
                f"{_format_value(cur_value, cur_kind)} "
                f"({delta}, threshold {threshold:.0%})"
            )
        elif change < -threshold:
            status = "🎉 improvement"
        else:
            status = "ok"
        lines.append(
            f"| {scenario} | {_format_value(prev_value, prev_kind)} "
            f"| {_format_value(cur_value, cur_kind)} | {delta} | {status} |"
        )
    lines.append("")
    lines.append(
        f"_Soft gate: deltas beyond ±{threshold:.0%} annotate a warning but "
        f"never fail the build (hosted-runner wall-clock is noisy)._"
    )
    return lines, warnings


def kernel_gate_failures(current: dict[str, dict]) -> list[str]:
    """Violated kernel-ratio floors in the current run's timing records.

    A *gated ratio* is any unit carrying a numeric ``speedup_floor`` next
    to one or more ``speedup_vs_*`` values — ``bench_kernel.py`` embeds
    the floor in the record it writes, so this script never hardcodes a
    threshold and new gated workloads need no change here.  Returns one
    message per violated floor; empty when no kernel timings are present
    (the enforcement flag is then a no-op, e.g. on runs that only swept
    scenarios).
    """
    failures: list[str] = []
    for scenario in sorted(current):
        units = current[scenario].get("units")
        if not isinstance(units, list):
            continue
        for unit in units:
            if not isinstance(unit, dict):
                continue
            floor = unit.get("speedup_floor")
            if not isinstance(floor, (int, float)):
                continue
            for key in sorted(unit):
                value = unit[key]
                if not key.startswith("speedup_vs_"):
                    continue
                if isinstance(value, (int, float)) and value < floor:
                    failures.append(
                        f"{scenario}/{unit.get('cell', '?')}: {key} = "
                        f"{value:.2f}x, below the {floor:.2f}x floor"
                    )
    return failures


def emit(lines: Iterable[str], summary_path: Optional[pathlib.Path]) -> None:
    text = "\n".join(lines) + "\n"
    print(text)
    if summary_path is not None:
        with summary_path.open("a") as handle:
            handle.write(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="directory with this run's TIMINGS_*.json")
    parser.add_argument("--previous", type=pathlib.Path, action="append",
                        default=[], metavar="DIR",
                        help="directory with one previous run's TIMINGS_*.json; "
                        "repeat once per run — the baseline is the median "
                        "across all given runs (omit on the first run: the "
                        "table lists current only)")
    parser.add_argument("--history", type=pathlib.Path, default=None,
                        help="committed perf_history.jsonl; when it holds "
                        "entries they are the baseline window and any "
                        "--previous directories are ignored (artifact "
                        "fetch becomes the bootstrap fallback)")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="trailing history entries to baseline "
                        f"against (default {DEFAULT_WINDOW})")
    parser.add_argument("--record-history", type=pathlib.Path, default=None,
                        metavar="FILE",
                        help="append this run's per-scenario metrics to "
                        "FILE as one repro-perf-history/1 JSONL line "
                        "(the perf-history CI job commits the result)")
    parser.add_argument("--sha", default=None,
                        help="commit sha recorded with --record-history")
    parser.add_argument("--run-id", default=None,
                        help="workflow run id recorded with --record-history")
    parser.add_argument("--sparklines", action="store_true",
                        help="append per-scenario sparkline trends rendered "
                        "from the full --history file to the summary")
    parser.add_argument("--summary", type=pathlib.Path, default=None,
                        help="file to append the markdown table to "
                        "(pass \"$GITHUB_STEP_SUMMARY\" in CI)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="warn when a scenario is this fraction slower "
                        "than the previous run (default 0.30)")
    parser.add_argument("--enforce-kernel-gates", action="store_true",
                        help="FAIL (exit 1) when a kernel microbench unit's "
                        "speedup_vs_* ratio is below the speedup_floor "
                        "embedded in its timing record; no-op when the "
                        "current run carries no kernel timings")
    args = parser.parse_args(argv)

    current = load_timings_dir(args.current)
    if not current:
        print(f"perf-trend: no TIMINGS_*.json under {args.current}", file=sys.stderr)
        return 1
    if args.record_history is not None:
        append_history(
            args.record_history,
            history_record(current, sha=args.sha, run_id=args.run_id),
        )
        print(f"perf-trend: appended history line to {args.record_history}",
              file=sys.stderr)
    history: list[dict[str, dict]] = []
    if args.history is not None:
        history = load_history(args.history, window=args.window)
        if history:
            print(
                f"perf-trend: baseline = last {len(history)} committed "
                f"history entr{'y' if len(history) == 1 else 'ies'}",
                file=sys.stderr,
            )
    if not history:
        history = [load_timings_dir(directory) for directory in args.previous]
        history = [run for run in history if run]

    lines, warnings = compare(current, history, threshold=args.threshold)
    if args.sparklines and args.history is not None:
        # Sparklines read the *whole* committed history, not the baseline
        # window — the point is the long arc, not the last few runs.
        lines.extend(sparkline_section(load_history(args.history, window=0), current))
    emit(lines, args.summary)
    for warning in warnings:
        # GitHub annotation syntax; visible on the run page and the PR.
        print(f"::warning title=perf regression::{warning}")
    if not history:
        print("perf-trend: no previous timings; baseline recorded.", file=sys.stderr)
    if args.enforce_kernel_gates:
        failures = kernel_gate_failures(current)
        for failure in failures:
            print(f"::error title=kernel gate::{failure}")
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
