"""Commit-over-commit perf trending from ``TIMINGS_*.json`` artifacts.

The CI ``perf-trend`` job downloads the current run's timings artifact and
the previous successful run's (via ``gh api``), then calls this script to
render a markdown delta table into the GitHub job summary and emit
``::warning::`` annotations for per-scenario regressions beyond the
threshold.

Soft-fail by design: wall-clock on shared hosted runners is noisy, so a
regression warns (and is visible in the summary trend) but never turns
the build red.  The exit code is always 0 unless the inputs are unusable.

Usage::

    python benchmarks/perf_trend.py --current DIR [--previous DIR]
        [--summary FILE] [--threshold 0.30]

Both directories hold ``TIMINGS_<scenario>.json`` files in the
``repro-timings/1`` schema (written by ``repro bench`` and
``bench_kernel.py --json``).  Scenarios present on only one side are
listed as new/retired rather than compared.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Iterable, Optional

#: A regression is flagged when the metric worsens by more than this
#: fraction (seconds grow, or kernel events/s shrink).
DEFAULT_THRESHOLD = 0.30


def load_timings_dir(directory: pathlib.Path) -> dict[str, dict]:
    """All ``TIMINGS_*.json`` records under ``directory``, by scenario id.

    Unreadable or schema-less files are skipped with a note on stderr —
    a truncated artifact from a cancelled run must not kill trending.
    """
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("TIMINGS_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"perf-trend: skipping unreadable {path}: {error}", file=sys.stderr)
            continue
        scenario = data.get("scenario")
        if not scenario or not str(data.get("schema", "")).startswith("repro-timings/"):
            print(f"perf-trend: skipping non-timings file {path}", file=sys.stderr)
            continue
        records[str(scenario)] = data
    return records


def _metric(record: dict) -> tuple[Optional[float], str]:
    """The trended metric of one record: ``(value, kind)``.

    Scenario sweeps trend summed worker-seconds (lower is better); kernel
    microbenchmarks carry no wall total and trend events/s (higher is
    better).
    """
    totals = record.get("totals", {})
    seconds = totals.get("worker_seconds")
    if isinstance(seconds, (int, float)) and seconds > 0:
        return float(seconds), "seconds"
    events_per_second = totals.get("events_per_second")
    if isinstance(events_per_second, (int, float)) and events_per_second > 0:
        return float(events_per_second), "events/s"
    return None, "none"


def _format_value(value: Optional[float], kind: str) -> str:
    if value is None:
        return "-"
    if kind == "seconds":
        return f"{value:.2f}s"
    return f"{value:,.0f} ev/s"


def compare(
    current: dict[str, dict],
    previous: dict[str, dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Build the summary lines and the regression warnings.

    Returns ``(markdown_lines, warning_messages)``.  The markdown renders
    a per-scenario delta table; a warning fires when a scenario got more
    than ``threshold`` slower (or, for events/s metrics, slower-throughput)
    than the previous run.
    """
    lines = [
        "## Perf trend (TIMINGS artifacts, commit-over-commit)",
        "",
        "| scenario | previous | current | delta | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    warnings: list[str] = []
    for scenario in sorted(set(current) | set(previous)):
        cur_value, cur_kind = _metric(current[scenario]) if scenario in current else (None, "none")
        prev_value, prev_kind = (
            _metric(previous[scenario]) if scenario in previous else (None, "none")
        )
        if cur_value is None and prev_value is None:
            continue
        if prev_value is None:
            lines.append(
                f"| {scenario} | - | {_format_value(cur_value, cur_kind)} | - | new |"
            )
            continue
        if cur_value is None:
            lines.append(
                f"| {scenario} | {_format_value(prev_value, prev_kind)} | - | - | retired |"
            )
            continue
        if cur_kind != prev_kind:
            lines.append(
                f"| {scenario} | {_format_value(prev_value, prev_kind)} "
                f"| {_format_value(cur_value, cur_kind)} | - | metric changed |"
            )
            continue
        # "Worse" means slower: more seconds, or fewer events per second.
        if cur_kind == "seconds":
            change = (cur_value - prev_value) / prev_value
        else:
            change = (prev_value - cur_value) / prev_value
        delta = f"{change:+.1%}" if cur_kind == "seconds" else f"{-change:+.1%}"
        if change > threshold:
            status = f"⚠️ regression (> {threshold:.0%})"
            warnings.append(
                f"{scenario}: {_format_value(prev_value, prev_kind)} -> "
                f"{_format_value(cur_value, cur_kind)} "
                f"({delta}, threshold {threshold:.0%})"
            )
        elif change < -threshold:
            status = "🎉 improvement"
        else:
            status = "ok"
        lines.append(
            f"| {scenario} | {_format_value(prev_value, prev_kind)} "
            f"| {_format_value(cur_value, cur_kind)} | {delta} | {status} |"
        )
    lines.append("")
    lines.append(
        f"_Soft gate: deltas beyond ±{threshold:.0%} annotate a warning but "
        f"never fail the build (hosted-runner wall-clock is noisy)._"
    )
    return lines, warnings


def emit(lines: Iterable[str], summary_path: Optional[pathlib.Path]) -> None:
    text = "\n".join(lines) + "\n"
    print(text)
    if summary_path is not None:
        with summary_path.open("a") as handle:
            handle.write(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="directory with this run's TIMINGS_*.json")
    parser.add_argument("--previous", type=pathlib.Path, default=None,
                        help="directory with the previous run's TIMINGS_*.json "
                        "(omit on the first run: the table lists current only)")
    parser.add_argument("--summary", type=pathlib.Path, default=None,
                        help="file to append the markdown table to "
                        "(pass \"$GITHUB_STEP_SUMMARY\" in CI)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="warn when a scenario is this fraction slower "
                        "than the previous run (default 0.30)")
    args = parser.parse_args(argv)

    current = load_timings_dir(args.current)
    if not current:
        print(f"perf-trend: no TIMINGS_*.json under {args.current}", file=sys.stderr)
        return 1
    previous = load_timings_dir(args.previous) if args.previous else {}

    lines, warnings = compare(current, previous, threshold=args.threshold)
    emit(lines, args.summary)
    for warning in warnings:
        # GitHub annotation syntax; visible on the run page and the PR.
        print(f"::warning title=perf regression::{warning}")
    if not previous:
        print("perf-trend: no previous timings; baseline recorded.", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
