"""Extension benchmark — continuous churn (beyond the paper's one-shot
failures).

Interleaves crashes, graceful leaves and fresh-process revivals with a
probe broadcast after every event.  HyParView's reactive repair plus the
passive-view candidate pool should keep reliability essentially flat —
this is the operating regime Partisan/libp2p adopted the protocol for.
"""

from conftest import run_once

from repro.experiments.churn import run_churn_experiment
from repro.experiments.reporting import format_table, sparkline

STEPS = 80


def bench_churn_hyparview_vs_acked(benchmark, cache, params, emit):
    def experiment():
        return {
            protocol: run_churn_experiment(
                protocol, params, steps=STEPS, base=cache.base(protocol)
            )
            for protocol in ("hyparview", "cyclon-acked")
        }

    results = run_once(benchmark, experiment)
    rows = []
    for protocol, result in results.items():
        rows.append(
            [
                protocol,
                result.average,
                result.crashes,
                result.leaves,
                result.revives,
                result.final_largest_component,
                result.stale_active_entries,
            ]
        )
    blocks = [
        format_table(
            ["protocol", "avg reliability", "crashes", "leaves", "revives",
             "largest component", "stale entries"],
            rows,
            title=f"Churn — {STEPS} events with probe broadcasts (n={params.n})",
        )
    ]
    for protocol, result in results.items():
        blocks.append(f"{protocol:13s} {sparkline(result.series)}")
    emit("churn", "\n".join(blocks))

    hyparview = results["hyparview"]
    assert hyparview.average > 0.97
    assert hyparview.final_largest_component > 0.97
    assert hyparview.stale_active_entries <= 3
    assert hyparview.average >= results["cyclon-acked"].average - 0.01
