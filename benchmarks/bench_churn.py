"""Extension benchmark — continuous churn (beyond the paper's one-shot
failures).

Interleaves crashes, graceful leaves and fresh-process revivals with a
probe broadcast after every event.  HyParView's reactive repair plus the
passive-view candidate pool should keep reliability essentially flat —
this is the operating regime Partisan/libp2p adopted the protocol for.
Registry scenario: ``churn``.
"""


def bench_churn_hyparview_vs_acked(benchmark, bench_scenario):
    # 80 events (the harness's historical scale); the paper tier runs 200.
    bench_scenario(benchmark, "churn", messages=1, extra={"steps": 80})
