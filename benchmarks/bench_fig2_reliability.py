"""Figure 2 — average reliability vs. failure percentage (the headline).

Paper (Section 5.2, 10 000 nodes, 1 000 messages per level): massive
failures have almost no visible impact on HyParView below 90%; at 95% it
still delivers to ~90% of survivors.  Cyclon and Scamp degrade from the
start and collapse above 50%; CyclonAcked is competitive up to ~70% but
cannot match HyParView at 80%+ because its overlay is asymmetric.
Registry scenario: ``fig2_reliability``.
"""


def bench_fig2_reliability_sweep(benchmark, bench_scenario):
    bench_scenario(benchmark, "fig2_reliability")
